#!/usr/bin/env bash
# End-to-end smoke test of the networked mode: one tracker plus three
# `dagfl peer` processes on 127.0.0.1 — the third joining late so it
# has to catch up through the snapshot protocol — must all exit with
# the same tangle digest (same transaction set on every replica).
#
# With CHAOS=1 the session is run under churn instead: peer 2 is
# SIGKILLed mid-session and restarted with the same client id, the
# survivors run with --reconnect, and the restarted process must
# recover the history it missed through the snapshot/delta protocol —
# the final three digests still have to agree.
#
# Usage: [CHAOS=1] scripts/network_smoke.sh [path-to-dagfl-binary]
set -euo pipefail

DAGFL="${1:-./target/release/dagfl}"
CHAOS="${CHAOS:-0}"
PORT="${NETWORK_SMOKE_PORT:-7979}"
TRACKER="127.0.0.1:${PORT}"
OUT="$(mktemp -d)"
PIDS=()

cleanup() {
    local pid
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$OUT"
}
trap cleanup EXIT

peer_flags=(
    --peers 3 --tracker "$TRACKER"
    --clients 3 --samples 30
)
if [ "$CHAOS" = "1" ]; then
    # A longer session (so there is a mid-session to crash into) and
    # reconnect-with-backoff on every peer.
    peer_flags+=(--activations 6 --interarrival-ms 150 --settle-ms 700 --timeout 60 --reconnect)
else
    peer_flags+=(--activations 4 --interarrival-ms 40 --settle-ms 500 --timeout 60)
fi

"$DAGFL" tracker --listen "$TRACKER" --expect 3 >"$OUT/tracker.log" 2>&1 &
PIDS+=($!)
sleep 0.3

"$DAGFL" peer --client 0 "${peer_flags[@]}" >"$OUT/peer0.log" 2>&1 &
PIDS+=($!)
"$DAGFL" peer --client 1 "${peer_flags[@]}" >"$OUT/peer1.log" 2>&1 &
PIDS+=($!)

# The late joiner: by now peers 0 and 1 have been gossiping for a
# while, so client 2 must sync their history via a snapshot.
sleep 1
"$DAGFL" peer --client 2 "${peer_flags[@]}" >"$OUT/peer2.log" 2>&1 &
PEER2_PID=$!

if [ "$CHAOS" = "1" ]; then
    # Let client 2 join, gossip and publish for a while, then crash it
    # hard (no Leave, no TCP goodbye) and bring it back under the same
    # client id. The survivors see the connection die and retry with
    # backoff; the restarted process recovers its own pre-crash
    # publications plus everything it missed via the snapshot request,
    # and resumes its transaction numbering after the recovered ones.
    sleep 0.8
    kill -9 "$PEER2_PID" 2>/dev/null || true
    wait "$PEER2_PID" 2>/dev/null || true
    echo "chaos: killed peer 2 mid-session, restarting it" >"$OUT/churn.log"
    sleep 0.5
    "$DAGFL" peer --client 2 "${peer_flags[@]}" >"$OUT/peer2b.log" 2>&1 &
    PIDS+=($!)
    FINAL_LOGS=("$OUT/peer0.log" "$OUT/peer1.log" "$OUT/peer2b.log")
else
    PIDS+=("$PEER2_PID")
    FINAL_LOGS=("$OUT/peer0.log" "$OUT/peer1.log" "$OUT/peer2.log")
fi

status=0
for pid in "${PIDS[@]}"; do
    wait "$pid" || status=$?
done
PIDS=()

echo "--- tracker ---"
cat "$OUT/tracker.log"
for log in "$OUT"/peer*.log; do
    echo "--- $(basename "$log") ---"
    cat "$log"
done

if [ "$status" -ne 0 ]; then
    echo "FAIL: a process exited with status $status" >&2
    exit "$status"
fi

digests="$(grep -h -o 'digest=[0-9a-f]*' "${FINAL_LOGS[@]}" | sort)"
count="$(echo "$digests" | wc -l)"
unique="$(echo "$digests" | sort -u | wc -l)"

if [ "$count" -ne 3 ]; then
    echo "FAIL: expected 3 digest lines, got $count" >&2
    exit 1
fi
if [ "$unique" -ne 1 ]; then
    echo "FAIL: peers disagree on the tangle digest:" >&2
    echo "$digests" >&2
    exit 1
fi

if [ "$CHAOS" = "1" ]; then
    # The restarted peer cannot have seen the full session live: a
    # matching digest proves it caught up through snapshot sync.
    received="$(grep -h -o 'received=[0-9]*' "$OUT/peer2b.log" | head -n1 | cut -d= -f2)"
    if [ -z "$received" ] || [ "$received" -eq 0 ]; then
        echo "FAIL: restarted peer 2 reports no received transactions" >&2
        exit 1
    fi
    echo "OK (chaos): peer 2 survived a kill -9, rejoined and all 3 digests agree"
else
    echo "OK: all 3 peers converged on $(echo "$digests" | head -n1)"
fi
