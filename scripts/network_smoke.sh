#!/usr/bin/env bash
# End-to-end smoke test of the networked mode: one tracker plus three
# `dagfl peer` processes on 127.0.0.1 — the third joining late so it
# has to catch up through the snapshot protocol — must all exit with
# the same tangle digest (same transaction set on every replica).
#
# Usage: scripts/network_smoke.sh [path-to-dagfl-binary]
set -euo pipefail

DAGFL="${1:-./target/release/dagfl}"
PORT="${NETWORK_SMOKE_PORT:-7979}"
TRACKER="127.0.0.1:${PORT}"
OUT="$(mktemp -d)"
PIDS=()

cleanup() {
    local pid
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$OUT"
}
trap cleanup EXIT

peer_flags=(
    --peers 3 --tracker "$TRACKER"
    --clients 3 --samples 30
    --activations 4 --interarrival-ms 40 --settle-ms 500 --timeout 60
)

"$DAGFL" tracker --listen "$TRACKER" --expect 3 >"$OUT/tracker.log" 2>&1 &
PIDS+=($!)
sleep 0.3

"$DAGFL" peer --client 0 "${peer_flags[@]}" >"$OUT/peer0.log" 2>&1 &
PIDS+=($!)
"$DAGFL" peer --client 1 "${peer_flags[@]}" >"$OUT/peer1.log" 2>&1 &
PIDS+=($!)

# The late joiner: by now peers 0 and 1 have been gossiping for a
# while, so client 2 must sync their history via a snapshot.
sleep 1
"$DAGFL" peer --client 2 "${peer_flags[@]}" >"$OUT/peer2.log" 2>&1 &
PIDS+=($!)

status=0
for pid in "${PIDS[@]}"; do
    wait "$pid" || status=$?
done
PIDS=()

echo "--- tracker ---"
cat "$OUT/tracker.log"
for i in 0 1 2; do
    echo "--- peer $i ---"
    cat "$OUT/peer$i.log"
done

if [ "$status" -ne 0 ]; then
    echo "FAIL: a process exited with status $status" >&2
    exit "$status"
fi

digests="$(grep -h -o 'digest=[0-9a-f]*' "$OUT"/peer[0-2].log | sort)"
count="$(echo "$digests" | wc -l)"
unique="$(echo "$digests" | sort -u | wc -l)"

if [ "$count" -ne 3 ]; then
    echo "FAIL: expected 3 digest lines, got $count" >&2
    exit 1
fi
if [ "$unique" -ne 1 ]; then
    echo "FAIL: peers disagree on the tangle digest:" >&2
    echo "$digests" >&2
    exit 1
fi

echo "OK: all 3 peers converged on $(echo "$digests" | head -n1)"
