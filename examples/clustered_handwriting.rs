//! The paper's headline comparison (Figure 9, FMNIST-clustered column):
//! Specializing DAG vs centralized FedAvg on strongly non-IID data.
//!
//! Three disjoint client clusters each hold a disjoint set of digit
//! classes. FedAvg trains one global model that must generalise across all
//! clusters; the DAG lets each cluster specialise implicitly. This example
//! prints both learning curves plus the per-client accuracy spread — the
//! paper's observation is faster progress and a tighter spread for the
//! DAG.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example clustered_handwriting
//! ```

use std::error::Error;

use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::tensor::Summary;
use dagfl::{DagConfig, FedConfig, FederatedServer, ModelSpec, Simulation};

const ROUNDS: usize = 30;
const CLIENTS: usize = 15;
const PER_ROUND: usize = 5;

fn dataset() -> dagfl::datasets::FederatedDataset {
    fmnist_clustered(&FmnistConfig {
        num_clients: CLIENTS,
        samples_per_client: 80,
        ..FmnistConfig::default()
    })
}

fn factory(features: usize, classes: usize) -> dagfl::dag::ModelFactory {
    ModelSpec::Mlp { hidden: vec![32] }.build_factory(features, classes)
}

fn main() -> Result<(), Box<dyn Error>> {
    let ds = dataset();
    let features = ds.feature_len();
    let classes = ds.num_classes();

    // --- Specializing DAG ---
    let dag_config = DagConfig {
        rounds: ROUNDS,
        clients_per_round: PER_ROUND,
        ..DagConfig::default()
    };
    let mut sim = Simulation::new(dag_config, ds.clone(), factory(features, classes));
    sim.run()?;

    // --- FedAvg ---
    let fed_config = FedConfig {
        rounds: ROUNDS,
        clients_per_round: PER_ROUND,
        ..FedConfig::default()
    };
    let mut server = FederatedServer::new(fed_config, ds, factory(features, classes));
    server.run()?;

    // Learning curves, grouped over 5 rounds like the paper's box plots.
    println!("rounds      DAG accuracy    FedAvg accuracy");
    for group in 0..(ROUNDS / 5) {
        let range = group * 5..(group + 1) * 5;
        let dag_accs: Vec<f32> = sim.history()[range.clone()]
            .iter()
            .flat_map(|m| m.accuracies.iter().copied())
            .collect();
        let fed_accs: Vec<f32> = server.history()[range.clone()]
            .iter()
            .flat_map(|m| m.accuracies.iter().copied())
            .collect();
        let d = Summary::of(&dag_accs);
        let f = Summary::of(&fed_accs);
        println!(
            "{:>3}-{:<3}  {:.2} (sd {:.2})  {:.2} (sd {:.2})",
            range.start + 1,
            range.end,
            d.mean,
            d.stddev,
            f.mean,
            f.stddev
        );
    }

    // Final spread over the last 5 rounds: the DAG's specialized models
    // should show less variance across clients than FedAvg's single global
    // model on this fully clustered data.
    let spec = sim.specialization_metrics();
    println!("\nDAG specialization:");
    println!(
        "  approval pureness {:.3} (random would be {:.3})",
        spec.approval_pureness,
        1.0 / 3.0
    );
    println!(
        "  modularity {:.3}, {} partitions, misclassification {:.3}",
        spec.modularity, spec.partitions, spec.misclassification
    );
    Ok(())
}
