//! Quickstart: train a Specializing DAG on the clustered handwriting
//! dataset and watch the specialization metrics emerge.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::nn::{Dense, Model, Relu, Sequential};
use dagfl::{DagConfig, Simulation};

fn main() -> Result<(), Box<dyn Error>> {
    // A small three-cluster federated dataset: clients in cluster 0 hold
    // digits {0-3}, cluster 1 holds {4-6}, cluster 2 holds {7-9}.
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 15,
        samples_per_client: 80,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let classes = dataset.num_classes();
    println!(
        "dataset: {} ({} clients, {} clusters, base pureness {:.2})",
        dataset.name(),
        dataset.num_clients(),
        dataset.clusters().len(),
        dataset.base_pureness()
    );

    // Every participant trains the same small MLP; the factory gives each
    // client (and the genesis transaction) a reproducible random
    // initialisation.
    let factory = Arc::new(move |rng: &mut rand::rngs::StdRng| {
        Box::new(Sequential::new(vec![
            Box::new(Dense::new(rng, features, 32)),
            Box::new(Relu::new()),
            Box::new(Dense::new(rng, 32, classes)),
        ])) as Box<dyn Model>
    });

    // Default config: accuracy-biased tip selection with alpha = 10, the
    // paper's sweet spot for this dataset (Figure 5).
    let config = DagConfig {
        rounds: 25,
        clients_per_round: 5,
        ..DagConfig::default()
    };
    let mut sim = Simulation::new(config, dataset, factory);

    println!("\nround  published  mean accuracy  tangle size");
    for _ in 0..config.rounds {
        let m = sim.run_round()?;
        if (m.round + 1) % 5 == 0 {
            println!(
                "{:>5}  {:>9}  {:>13.3}  {:>11}",
                m.round + 1,
                m.published,
                m.mean_accuracy(),
                sim.tangle().len()
            );
        }
    }

    // The §4.3 metrics: clusters of clients emerge purely from who
    // approves whose transactions.
    let spec = sim.specialization_metrics();
    println!("\nspecialization after {} rounds:", sim.round());
    println!("  approval pureness: {:.3}", spec.approval_pureness);
    println!("  modularity:        {:.3}", spec.modularity);
    println!("  louvain partitions: {}", spec.partitions);
    println!("  misclassification: {:.3}", spec.misclassification);
    Ok(())
}
