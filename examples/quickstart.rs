//! Quickstart: declare a Specializing-DAG experiment as a `Scenario`
//! value, run it, and read the specialization metrics off the report.
//!
//! The same experiment is equally runnable as a preset
//! (`dagfl run --preset quickstart`) or from a checked-in file
//! (`dagfl run --scenario scenarios/quickstart.toml`) — builder, preset
//! and file are three spellings of one spec.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;

use dagfl::{DatasetSpec, ModelSpec, Scenario, ScenarioRunner};

fn main() -> Result<(), Box<dyn Error>> {
    // A small three-cluster federated dataset: clients in cluster 0 hold
    // digits {0-3}, cluster 1 holds {4-6}, cluster 2 holds {7-9}. Every
    // participant trains the same small MLP; default config means
    // accuracy-biased tip selection with alpha = 10, the paper's sweet
    // spot for this dataset (Figure 5).
    let scenario = Scenario::new(
        "quickstart",
        DatasetSpec::Fmnist {
            clients: 15,
            samples: 80,
            relaxation: 0.0,
            seed: 42,
        },
    )
    .with_model(ModelSpec::Mlp { hidden: vec![32] })
    .rounds(25)
    .clients_per_round(5);

    // The scenario is plain data: it serializes to the same TOML that
    // lives in scenarios/quickstart.toml.
    println!("--- scenario ---\n{}", scenario.to_toml());

    let report = ScenarioRunner::new(scenario)?.run()?;

    println!("round  mean accuracy");
    for (round, accuracy) in report.round_accuracy.iter().enumerate() {
        if (round + 1) % 5 == 0 {
            println!("{:>5}  {:>13.3}", round + 1, accuracy);
        }
    }

    // The section 4.3 metrics: clusters of clients emerge purely from
    // who approves whose transactions.
    println!("\n--- report ---\n{}", report.summary());
    Ok(())
}
