//! Visualising implicit specialization: run a short Specializing-DAG
//! training, print the tangle's structural statistics and export the DAG
//! as Graphviz DOT with cluster-coloured transactions (the paper's
//! Figure 4, generated from a real run).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example dag_visualization
//! dot -Tsvg dag.dot -o dag.svg   # render, if graphviz is available
//! ```

use std::error::Error;

use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::{DagConfig, ModelSpec, Simulation};

fn main() -> Result<(), Box<dyn Error>> {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 9,
        samples_per_client: 60,
        ..FmnistConfig::default()
    });
    let factory = ModelSpec::Mlp { hidden: vec![24] }
        .build_factory(dataset.feature_len(), dataset.num_classes());
    let mut sim = Simulation::new(
        DagConfig {
            rounds: 10,
            clients_per_round: 4,
            local_batches: 5,
            ..DagConfig::default()
        },
        dataset,
        factory,
    );
    sim.run()?;

    let clusters = sim.dataset().cluster_labels();
    let tangle = sim.tangle().to_tangle();

    // Structural statistics of the grown DAG.
    let stats = tangle.stats();
    println!("tangle after {} rounds:", sim.round());
    println!("  transactions: {}", stats.transactions);
    println!("  tips:         {}", stats.tips);
    println!("  edges:        {}", stats.edges);
    println!("  max depth:    {}", stats.max_depth);
    println!("  mean parents: {:.2}", stats.mean_parents);

    // Export with one colour per ground-truth cluster; rendering shows
    // the same-coloured transactions chaining together (Figure 4).
    const COLORS: [&str; 3] = ["lightblue", "lightsalmon", "palegreen"];
    let dot = tangle.to_dot(|tx| match tx.issuer() {
        Some(issuer) => format!(
            "style=filled fillcolor={} ",
            COLORS[clusters[issuer as usize] % COLORS.len()]
        ),
        None => "shape=doublecircle ".to_string(),
    });
    std::fs::write("dag.dot", &dot)?;
    println!("\nwrote dag.dot ({} bytes)", dot.len());
    println!("render with: dot -Tsvg dag.dot -o dag.svg");
    Ok(())
}
