//! Poisoning containment (§5.3.4): a flipped-label attack against the
//! Specializing DAG, with the accuracy-aware tip selector compared against
//! the random baseline.
//!
//! A fraction `p` of clients has the labels 3 and 8 swapped in their local
//! data after a clean warm-up. The accuracy-biased walk isolates the
//! attackers: their updates score poorly on benign clients' test data, so
//! benign walks avoid them and the flipped predictions stay contained
//! (Figures 12–14).
//!
//! Both conditions are scenario presets from the shared registry — the
//! same runs `dagfl run --preset poisoning-p0.2` executes — here shrunk
//! with the builder so the example finishes in seconds.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example poisoning_containment
//! ```

use std::error::Error;

use dagfl::scenario::AttackSpec;
use dagfl::{Scenario, ScenarioRunner};

fn shrunk(preset: &str) -> Result<Scenario, Box<dyn Error>> {
    // Start from the registered preset and shorten the attack phases.
    let mut scenario = Scenario::preset(preset)?;
    scenario.attack = Some(AttackSpec {
        fraction: 0.25,
        clean_rounds: 10,
        attack_rounds: 10,
        measure_every: 2,
        ..AttackSpec::default()
    });
    Ok(scenario)
}

fn main() -> Result<(), Box<dyn Error>> {
    for (label, preset) in [
        ("accuracy tip selector", "poisoning-p0.2"),
        ("random tip selector", "poisoning-random-p0.2"),
    ] {
        println!("== {label} ==");
        let report = ScenarioRunner::new(shrunk(preset)?)?.run()?;
        let poisoning = report.poisoning.expect("attack scenario");
        println!("round  flipped-predictions  approved-poisoned-txs");
        for m in &poisoning.measurements {
            println!(
                "{:>5}  {:>19.3}  {:>21.2}",
                m.round, m.flipped_fraction, m.approved_poisoned
            );
        }
        println!("poisoned clients: {:?}", poisoning.poisoned_clients);
        // Figure 14: are the poisoned clients concentrated in their own
        // inferred communities?
        println!("community  benign  poisoned");
        for (community, benign, poisoned) in &poisoning.distribution {
            println!("{community:>9}  {benign:>6}  {poisoned:>8}");
        }
        println!();
    }
    println!(
        "the accuracy selector contains the attack: poisoned updates are \
         approved mostly by other poisoned clients, so benign predictions \
         flip far less than under the random selector."
    );
    Ok(())
}
