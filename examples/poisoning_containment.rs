//! Poisoning containment (§5.3.4): a flipped-label attack against the
//! Specializing DAG, with the accuracy-aware tip selector compared against
//! the random baseline.
//!
//! A fraction `p` of clients has the labels 3 and 8 swapped in their local
//! data after a clean warm-up. The accuracy-biased walk isolates the
//! attackers: their updates score poorly on benign clients' test data, so
//! benign walks avoid them and the flipped predictions stay contained
//! (Figures 12–14).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example poisoning_containment
//! ```

use std::error::Error;
use std::sync::Arc;

use dagfl::datasets::{fmnist_by_author, FmnistConfig};
use dagfl::nn::{Dense, Model, Relu, Sequential};
use dagfl::{DagConfig, PoisoningConfig, PoisoningScenario, TipSelector};

fn scenario(selector: TipSelector) -> PoisoningScenario {
    let dataset = fmnist_by_author(&FmnistConfig {
        num_clients: 12,
        samples_per_client: 100,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let factory = Arc::new(move |rng: &mut rand::rngs::StdRng| {
        Box::new(Sequential::new(vec![
            Box::new(Dense::new(rng, features, 32)),
            Box::new(Relu::new()),
            Box::new(Dense::new(rng, 32, 10)),
        ])) as Box<dyn Model>
    });
    let config = PoisoningConfig {
        dag: DagConfig {
            clients_per_round: 4,
            ..DagConfig::default()
        }
        .with_tip_selector(selector),
        clean_rounds: 10,
        attack_rounds: 10,
        poison_fraction: 0.25,
        class_a: 3,
        class_b: 8,
        measure_every: 2,
    };
    PoisoningScenario::new(config, dataset, factory)
}

fn main() -> Result<(), Box<dyn Error>> {
    for (label, selector) in [
        ("accuracy tip selector", TipSelector::default()),
        ("random tip selector", TipSelector::Random),
    ] {
        println!("== {label} ==");
        let mut s = scenario(selector);
        let measurements = s.run()?;
        println!("round  flipped-predictions  approved-poisoned-txs");
        for m in &measurements {
            println!(
                "{:>5}  {:>19.3}  {:>21.2}",
                m.round, m.flipped_fraction, m.approved_poisoned
            );
        }
        let report = s.report().expect("attack ran");
        println!("poisoned clients: {:?}", report.poisoned_clients);
        // Figure 14: are the poisoned clients concentrated in their own
        // inferred communities?
        println!("community  benign  poisoned");
        for (community, benign, poisoned) in s.poisoned_cluster_distribution() {
            println!("{community:>9}  {benign:>6}  {poisoned:>8}");
        }
        println!();
    }
    Ok(())
}
