//! Asynchronous operation: the Specializing DAG without rounds.
//!
//! The paper stresses that rounds exist purely for comparability with
//! centralized baselines (§5.3.3): a real network is asynchronous. This
//! example drives the event-driven simulator — clients activate on a
//! Poisson-style arrival process and publications propagate with delay —
//! and shows a second, non-obvious effect: some propagation delay is
//! *necessary* for specialization, because instantaneously-visible serial
//! publications collapse the DAG into a chain with a single tip.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example asynchronous_network
//! ```

use std::error::Error;
use std::sync::Arc;

use dagfl::dag::{AsyncConfig, AsyncSimulation};
use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::nn::{Dense, Model, Relu, Sequential};
use dagfl::DagConfig;

fn main() -> Result<(), Box<dyn Error>> {
    for delay in [0.0, 2.0, 10.0] {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 12,
            samples_per_client: 60,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory = Arc::new(move |rng: &mut rand::rngs::StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 24)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 24, 10)),
            ])) as Box<dyn Model>
        });
        let mut sim = AsyncSimulation::new(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 5,
                    ..DagConfig::default()
                },
                total_activations: 120,
                mean_interarrival: 1.0,
                visibility_delay: delay,
            },
            dataset,
            factory,
        );
        sim.run()?;
        let stats = sim.tangle().stats();
        println!(
            "delay {delay:>4}: accuracy {:.3}  pureness {:.3}  tips {:>2}  txs {:>3}  clock {:.0}",
            sim.recent_accuracy(20),
            sim.approval_pureness(),
            stats.tips,
            stats.transactions,
            sim.clock()
        );
    }
    println!(
        "\nwith zero delay the DAG degenerates into a chain (1 tip) and \
         pureness falls to the random baseline: branching is what enables \
         implicit specialization."
    );
    Ok(())
}
