//! Asynchronous operation: the Specializing DAG without rounds.
//!
//! The paper stresses that rounds exist purely for comparability with
//! centralized baselines (§5.3.3): a real network is asynchronous. This
//! example drives the event-driven simulator — every client keeps its own
//! tangle replica, activates on its own Poisson clock and receives other
//! clients' publications after a per-link delay — and shows two effects:
//!
//! 1. some propagation delay is *necessary* for specialization, because
//!    instantaneously-visible serial publications collapse the DAG into a
//!    chain with a single tip, and
//! 2. heterogeneous slow/fast cohorts raise publish latency and staleness
//!    without breaking convergence — the asynchrony-tolerance the tangle
//!    design buys.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example asynchronous_network
//! ```

use std::error::Error;

use dagfl::dag::{AsyncConfig, AsyncSimulation};
use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::{ComputeProfile, DagConfig, DelayModel, ModelSpec, StaleTipPolicy};

fn run(label: &str, delay: DelayModel, compute: ComputeProfile) -> Result<(), Box<dyn Error>> {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 12,
        samples_per_client: 60,
        ..FmnistConfig::default()
    });
    let factory = ModelSpec::Mlp { hidden: vec![24] }
        .build_factory(dataset.feature_len(), dataset.num_classes());
    let mut sim = AsyncSimulation::new(
        AsyncConfig {
            dag: DagConfig {
                local_batches: 5,
                ..DagConfig::default()
            },
            total_activations: 120,
            mean_interarrival: 2.0,
            delay,
            compute,
            train_time: 0.5,
            stale_policy: StaleTipPolicy::Reselect,
            gossip_fanout: 0,
            workers: 1,
        },
        dataset,
        factory,
    );
    sim.run()?;
    let m = sim.metrics();
    println!(
        "{label:<14} accuracy {:.3}  pureness {:.3}  tips {:>2}  txs {:>3}  \
         latency {:>5.2}  stale {:>4.2}  rate {:.2}/t",
        sim.recent_accuracy(20),
        sim.approval_pureness(),
        m.tips,
        m.transactions,
        m.mean_publish_latency,
        m.stale_fraction(),
        m.activation_rate(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    for (label, delay) in [
        ("instant", DelayModel::constant(0.0)),
        ("constant 2", DelayModel::constant(2.0)),
        ("constant 10", DelayModel::constant(10.0)),
        (
            "jitter 1+2",
            DelayModel::UniformJitter {
                base: 1.0,
                jitter: 2.0,
            },
        ),
    ] {
        run(label, delay, ComputeProfile::Uniform)?;
    }
    run(
        "cohorts",
        DelayModel::Cohorts {
            slow_fraction: 0.3,
            fast: 1.0,
            slow: 8.0,
            jitter: 1.0,
        },
        // The same clients have slow links and 4x slower compute.
        ComputeProfile::MatchNetworkCohort { slowdown: 4.0 },
    )?;
    println!(
        "\nwith near-zero delay the DAG degenerates towards a chain and \
         pureness falls: branching is what enables implicit specialization. \
         slow cohorts raise latency and staleness, yet accuracy holds — \
         the asynchrony-tolerance of the tangle design."
    );
    Ok(())
}
