//! The Poets scenario (§5.1.2): next-character prediction over two
//! languages, with the language split forming the two client clusters.
//!
//! English-like and German-like clients train a shared GRU architecture
//! through the DAG; the accuracy-biased walk steers each client towards
//! models trained on its own language, so approvals concentrate within the
//! language clusters (the paper reports approval pureness 0.95 on Poets,
//! Table 2).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example multilingual_text
//! ```

use std::error::Error;

use dagfl::datasets::{poets, PoetsConfig, POETS_VOCAB};
use dagfl::{DagConfig, ModelSpec, Simulation};

fn main() -> Result<(), Box<dyn Error>> {
    let dataset = poets(&PoetsConfig {
        clients_per_language: 6,
        samples_per_client: 80,
        seq_len: 12,
        seed: 42,
    });
    println!(
        "dataset: {} ({} clients, 2 language clusters, base pureness {:.2})",
        dataset.name(),
        dataset.num_clients(),
        dataset.base_pureness()
    );

    // Embedding(8) -> GRU(32) -> Dense(vocab), the small cousin of the
    // paper's LSTM next-character model.
    let factory = ModelSpec::CharRnn {
        embed: 8,
        hidden: 32,
    }
    .build_factory(0, POETS_VOCAB.len());

    let config = DagConfig {
        rounds: 20,
        clients_per_round: 4,
        local_batches: 8,
        learning_rate: 0.5,
        ..DagConfig::default()
    };
    let mut sim = Simulation::new(config, dataset, factory);

    println!("\nround  mean accuracy  pureness");
    for _ in 0..config.rounds {
        let m = sim.run_round()?;
        if (m.round + 1) % 4 == 0 {
            println!(
                "{:>5}  {:>13.3}  {:>8.3}",
                m.round + 1,
                m.mean_accuracy(),
                sim.approval_pureness()
            );
        }
    }

    // Per-language reference accuracy: each client's walk-selected
    // consensus model evaluated on its own text.
    let evals = sim.reference_evaluations()?;
    let clusters = sim.dataset().cluster_labels();
    for (cluster, name) in [(0usize, "english"), (1usize, "german")] {
        let accs: Vec<f32> = evals
            .iter()
            .filter(|(id, _, _)| clusters[*id as usize] == cluster)
            .map(|(_, eval, _)| eval.accuracy)
            .collect();
        let mean: f32 = accs.iter().sum::<f32>() / accs.len().max(1) as f32;
        println!(
            "{name}: mean reference accuracy {mean:.3} over {} clients",
            accs.len()
        );
    }
    println!("final approval pureness: {:.3}", sim.approval_pureness());
    Ok(())
}
