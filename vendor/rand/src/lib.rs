//! Offline stand-in for the parts of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API that the dagfl workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! small, deterministic, API-compatible subset: [`rngs::StdRng`] (backed by
//! xoshiro256++ seeded via SplitMix64 — *not* bit-compatible with upstream
//! `StdRng`, but every generator in the workspace only promises determinism
//! for a fixed seed, which this implementation honours), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, uniform range sampling and
//! [`seq::SliceRandom`] shuffling.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that can be drawn uniformly from the full "standard" distribution
/// of their type (floats in `[0, 1)`, integers over their whole range).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from `rng`; panics on an empty range, like `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing generator methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i32 = rng.gen_range(-1..=1);
            assert!((-1..=1).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean far from 0.5");
    }
}
