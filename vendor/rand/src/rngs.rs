//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Backed by xoshiro256++ with SplitMix64 seed expansion. Unlike upstream
/// `rand::rngs::StdRng` (ChaCha12) the exact stream differs, but the
/// contract the workspace relies on — identical output for identical seeds,
/// good statistical quality — holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
