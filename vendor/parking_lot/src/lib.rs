//! Offline stand-in for the parts of `parking_lot` the workspace uses:
//! non-poisoning [`RwLock`] and [`Mutex`] types with `parking_lot`'s
//! ergonomic API, implemented over their `std::sync` counterparts (poison
//! errors are swallowed by taking the inner guard, matching
//! `parking_lot`'s no-poisoning semantics).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

/// Guard for shared read access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive write access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Guard for exclusive mutex access.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_roundtrip() {
        let lock = Mutex::new(1u32);
        *lock.lock() += 1;
        assert_eq!(*lock.lock(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn concurrent_reads_do_not_deadlock() {
        let lock = RwLock::new(5u32);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 10);
    }
}
