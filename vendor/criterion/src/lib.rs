//! Offline stand-in for the parts of the `criterion` API the workspace's
//! benches use. It measures wall-clock time over a handful of iterations and
//! prints a compact mean/min report — no warm-up modelling, outlier analysis
//! or HTML output. Under `--test` (as `cargo test --benches` passes) each
//! benchmark body runs exactly once, so bench targets double as smoke tests.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u32,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {name}: mean {mean:?} / min {min:?} over {} iteration(s)",
            self.samples.len()
        );
    }
}

/// Top-level benchmark driver (a stub of `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` / libtest pass `--test`; `cargo bench`
        // passes `--bench`. In test mode run each body once, quickly.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    fn iterations(&self, sample_size: u32) -> u32 {
        if self.test_mode {
            1
        } else {
            sample_size
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.iterations(10),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id.id);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u32;
        self
    }

    /// Benchmarks a function within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.criterion.iterations(self.sample_size),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Benchmarks a function parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.criterion.iterations(self.sample_size),
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
