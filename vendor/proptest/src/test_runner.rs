//! Deterministic case runner.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Default base seed; chosen once so CI runs are reproducible.
const DEFAULT_SEED: u64 = 0xDA6F_1001;
/// Default number of cases per property (smaller than upstream's 256: the
/// workspace properties run whole simulations, and determinism — not volume
/// — is what tier-1 needs).
const DEFAULT_CASES: u32 = 32;

/// Configuration for a property-test run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        Self { cases }
    }
}

/// Executes a property over deterministically seeded cases.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner; the base seed comes from `PROPTEST_SEED` if set.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Self { config, seed }
    }

    /// Runs `property` once per case with a per-case deterministic RNG.
    /// On failure, reports the case index and seed for exact replay, then
    /// re-raises the panic.
    pub fn run<F: FnMut(&mut TestRng)>(&self, mut property: F) {
        for case in 0..self.config.cases {
            let mut rng = TestRng::seed_from_u64(case_seed(self.seed, case));
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
                eprintln!(
                    "proptest(shim): case {case}/{} failed; replay with \
                     PROPTEST_SEED={} (base seed), case index {case}",
                    self.config.cases, self.seed
                );
                resume_unwind(panic);
            }
        }
    }
}

/// Mixes the base seed and case index into an independent per-case seed.
fn case_seed(base: u64, case: u32) -> u64 {
    let mut z = base ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_distinct_and_deterministic() {
        let a: Vec<u64> = (0..16).map(|c| case_seed(1, c)).collect();
        let b: Vec<u64> = (0..16).map(|c| case_seed(1, c)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }
}
