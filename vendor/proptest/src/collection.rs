//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies: exact or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize` or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
