//! Value-generation strategies (the subset the workspace uses).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, StandardSample};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uses generated values to build a second strategy, then draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical "whole domain" strategy ([`any`]).
pub trait Arbitrary {
    /// Generates an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as StandardSample>::sample(rng)
            }
        }
    )*};
}
impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
