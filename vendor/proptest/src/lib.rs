//! Offline stand-in for the parts of the `proptest` API the workspace uses.
//!
//! Cases are generated from a fixed seed (override with `PROPTEST_SEED`, set
//! the case count with `PROPTEST_CASES`), so every `proptest!` block in the
//! workspace is fully deterministic in CI. There is no shrinking: a failing
//! case reports its index and the seed so it can be replayed exactly.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(|__proptest_rng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { ::std::assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { ::std::assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { ::std::assert_ne!($($tokens)*) };
}
