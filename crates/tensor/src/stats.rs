//! Small descriptive-statistics helpers used by the experiment harness.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population variance; `0.0` for slices shorter than two elements.
pub fn variance(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let mu = mean(values);
    values.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation.
pub fn stddev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

/// Minimum value; `f32::INFINITY` for an empty slice.
pub fn min(values: &[f32]) -> f32 {
    values.iter().copied().fold(f32::INFINITY, f32::min)
}

/// Maximum value; `f32::NEG_INFINITY` for an empty slice.
pub fn max(values: &[f32]) -> f32 {
    values.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// A five-number-style summary of a sample, used for the box-plot style
/// comparisons of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub stddev: f32,
    /// Minimum.
    pub min: f32,
    /// First quartile (linear interpolation).
    pub q1: f32,
    /// Median (linear interpolation).
    pub median: f32,
    /// Third quartile (linear interpolation).
    pub q3: f32,
    /// Maximum.
    pub max: f32,
}

impl Summary {
    /// Computes the summary of `values`.
    ///
    /// Returns the all-zero default for an empty slice.
    ///
    /// # Example
    ///
    /// ```
    /// let s = dagfl_tensor::Summary::of(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(s.median, 2.5);
    /// ```
    pub fn of(values: &[f32]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Self {
            count: sorted.len(),
            mean: mean(&sorted),
            stddev: stddev(&sorted),
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Linear-interpolation quantile of an already sorted slice.
fn quantile(sorted: &[f32], q: f32) -> f32 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_known_value() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // Population variance of [1, 3]: mean 2, ((1)^2+(1)^2)/2 = 1.
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stddev_is_sqrt_of_variance() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&v) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_known_values() {
        let v = [3.0, -1.0, 2.0];
        assert_eq!(min(&v), -1.0);
        assert_eq!(max(&v), 3.0);
    }

    #[test]
    fn min_of_empty_is_infinity() {
        assert_eq!(min(&[]), f32::INFINITY);
        assert_eq!(max(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn summary_quartiles_even_count() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-6);
        assert!((s.q1 - 1.75).abs() < 1e-6);
        assert!((s.q3 - 3.25).abs() < 1e-6);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn summary_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }
}
