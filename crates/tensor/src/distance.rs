//! Vector distance/similarity helpers used by the model-divergence
//! analyses.

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// let d = dagfl_tensor::l2_distance(&[0.0, 0.0], &[3.0, 4.0]);
/// assert!((d - 5.0).abs() < 1e-6);
/// ```
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector lengths differ");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// L2 norm of a vector.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine similarity in `[-1, 1]`; `0.0` when either vector is all-zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector lengths differ");
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_distance_of_identical_is_zero() {
        let v = [1.0, -2.0, 3.0];
        assert_eq!(l2_distance(&v, &v), 0.0);
    }

    #[test]
    fn l2_distance_is_symmetric() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(l2_distance(&a, &b), l2_distance(&b, &a));
        assert!((l2_distance(&a, &b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn l2_norm_known_value() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        assert!((cosine_similarity(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        l2_distance(&[1.0], &[1.0, 2.0]);
    }
}
