//! Reproducible random weight initialisation.
//!
//! Every initialiser takes an explicit [`rand::Rng`] so that all experiments
//! in the workspace are deterministic for a fixed seed — a requirement for
//! comparing tip-selection strategies on identical model trajectories.

use rand::Rng;

use crate::Matrix;

/// Uniform initialisation in `[-limit, limit]`.
pub fn uniform_init<R: Rng>(rng: &mut R, rows: usize, cols: usize, limit: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Normal initialisation with the given standard deviation (Box–Muller).
pub fn normal_init<R: Rng>(rng: &mut R, rows: usize, cols: usize, stddev: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sample_standard_normal(rng) * stddev)
}

/// Xavier/Glorot uniform initialisation: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// The canonical choice for tanh/sigmoid-activated layers.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_init(rng, fan_in, fan_out, limit)
}

/// Xavier/Glorot normal initialisation: `stddev = sqrt(2 / (fan_in + fan_out))`.
pub fn xavier_normal<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let stddev = (2.0 / (fan_in + fan_out) as f32).sqrt();
    normal_init(rng, fan_in, fan_out, stddev)
}

/// He/Kaiming uniform initialisation: `limit = sqrt(6 / fan_in)`.
///
/// The canonical choice for ReLU-activated layers.
pub fn he_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform_init(rng, fan_in, fan_out, limit)
}

/// He/Kaiming normal initialisation: `stddev = sqrt(2 / fan_in)`.
pub fn he_normal<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let stddev = (2.0 / fan_in.max(1) as f32).sqrt();
    normal_init(rng, fan_in, fan_out, stddev)
}

/// Samples from the standard normal distribution using Box–Muller.
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mean, stddev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform_init(&mut rng, 20, 20, 0.5);
        assert!(m.as_slice().iter().all(|&v| (-0.5..=0.5).contains(&v)));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(8), 10, 10);
        assert_ne!(a, b);
    }

    #[test]
    fn normal_init_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = normal_init(&mut rng, 100, 100, 2.0);
        let mu = mean(m.as_slice());
        let sd = stddev(m.as_slice());
        assert!(mu.abs() < 0.1, "mean {mu} too far from 0");
        assert!((sd - 2.0).abs() < 0.1, "stddev {sd} too far from 2");
    }

    #[test]
    fn xavier_uniform_limit_formula() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = xavier_uniform(&mut rng, 50, 100);
        let limit = (6.0_f32 / 150.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn he_uniform_limit_formula() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = he_uniform(&mut rng, 32, 64);
        let limit = (6.0_f32 / 32.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn he_normal_stddev_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = he_normal(&mut rng, 128, 128);
        let expected = (2.0_f32 / 128.0).sqrt();
        let sd = stddev(m.as_slice());
        assert!((sd - expected).abs() < expected * 0.1);
    }

    #[test]
    fn all_initialisers_produce_finite_values() {
        let mut rng = StdRng::seed_from_u64(5);
        for m in [
            uniform_init(&mut rng, 8, 8, 1.0),
            normal_init(&mut rng, 8, 8, 1.0),
            xavier_uniform(&mut rng, 8, 8),
            xavier_normal(&mut rng, 8, 8),
            he_uniform(&mut rng, 8, 8),
            he_normal(&mut rng, 8, 8),
        ] {
            assert!(m.is_finite());
        }
    }
}
