//! Dense `f32` matrix and vector math for the `dagfl` workspace.
//!
//! This crate is the numeric substrate beneath [`dagfl-nn`]: a small,
//! dependency-free (besides [`rand`]) linear-algebra toolkit that provides
//! exactly what a federated-learning simulator needs — row-major matrices,
//! cache-friendly matrix multiplication, broadcasting helpers, common
//! activation/normalisation kernels and reproducible random initialisation.
//!
//! The hot paths — evaluation *and*, since the [`MatmulBackend`] port,
//! training — run on blocked, buffer-reusing kernels
//! ([`Matrix::matmul_into`], [`Matrix::matmul_transpose_into`],
//! [`Matrix::transpose_matmul_into`], [`fused_softmax_cross_entropy`])
//! whose per-cell accumulation order matches the naive versions
//! exactly, so swapping kernels never changes a result: the naive
//! loops stay in-tree as [`NaiveBackend`], the reference oracle pinned
//! by the property tests, while [`TiledBackend`] (the default) runs the
//! register-tiled cascades.
//!
//! # Example
//!
//! ```
//! use dagfl_tensor::Matrix;
//!
//! # fn main() -> Result<(), dagfl_tensor::ShapeError> {
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c, a);
//! # Ok(())
//! # }
//! ```
//!
//! [`dagfl-nn`]: ../dagfl_nn/index.html

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod backend;
mod distance;
mod error;
mod init;
mod matrix;
mod ops;
mod stats;

pub use backend::{MatmulBackend, MatmulBackendKind, NaiveBackend, TiledBackend};
pub use distance::{cosine_similarity, l2_distance, l2_norm};
pub use error::ShapeError;
pub use init::{he_normal, he_uniform, normal_init, uniform_init, xavier_normal, xavier_uniform};
pub use matrix::Matrix;
pub use ops::{
    argmax, cross_entropy_from_probs, fused_softmax_cross_entropy, log_sum_exp, one_hot, softmax,
    softmax_cross_entropy, softmax_in_place,
};
pub use stats::{max, mean, min, stddev, variance, Summary};
