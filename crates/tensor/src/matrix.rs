use std::fmt;
use std::ops::{Index, IndexMut};

use crate::ShapeError;

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the workhorse of the workspace: model parameters, activations
/// and datasets are all stored as matrices. A matrix with a single row doubles
/// as a vector; helpers such as [`Matrix::row`] return plain slices so that
/// callers can use ordinary iterator code.
///
/// # Example
///
/// ```
/// use dagfl_tensor::Matrix;
///
/// # fn main() -> Result<(), dagfl_tensor::ShapeError> {
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix where every entry is `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows differ in length.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(ShapeError::new("from_rows", (r, c), (1, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix whose entry `(r, c)` is `f(r, c)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over the rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Reshapes this matrix to `rows x cols`, reusing the existing
    /// allocation where possible. All entries are reset to zero.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns a new matrix keeping only the rows with the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Matrix multiplication `self * other`.
    ///
    /// Uses the cache-friendly i-k-j loop ordering over contiguous row
    /// slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new("matmul", self.shape(), other.shape()));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix multiplication with the transpose of `other`: `self * other^T`.
    ///
    /// This is the common backward-pass shape. Delegates to the
    /// [`Matrix::matmul_transpose_into`] kernel, whose per-cell dot
    /// order matches the straightforward loop exactly (the naive form is
    /// pinned as the oracle in the property tests).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.cols()`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.matmul_transpose_into(other, &mut out)?;
        Ok(out)
    }

    /// Blocked matrix multiplication `self * other` into a reusable
    /// output buffer.
    ///
    /// This is the inference-path kernel: `out` is reshaped (reusing its
    /// allocation) instead of freshly allocated, and column tiles of
    /// accumulators stay in SIMD registers across the whole `k` loop
    /// instead of re-reading and re-writing the output row per `k`. Per
    /// output cell the terms are accumulated in exactly the same
    /// ascending-`k` order as [`Matrix::matmul`], including its
    /// zero-LHS skip, so results match the naive kernel — which serves
    /// as the reference oracle in the property tests — bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new("matmul_into", self.shape(), other.shape()));
        }
        matmul_slice_kernel(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            out,
        );
        Ok(())
    }

    /// [`Matrix::matmul_into`] with the right-hand side given as a raw
    /// row-major slice of width `rhs_cols` (so `rhs.len() / rhs_cols`
    /// rows).
    ///
    /// This is the zero-copy inference kernel: candidate model
    /// parameters arrive as flat `Vec<f32>` payloads, and evaluating
    /// them directly from the payload slice skips the
    /// `set_parameters` round-trip (a full copy of the weights) per
    /// candidate. Results are bit-identical to materialising the slice
    /// as a [`Matrix`] first.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `rhs_cols` is zero, `rhs.len()` is not
    /// a multiple of `rhs_cols`, or the row count does not match
    /// `self.cols()`. When the slice has no `rows x rhs_cols`
    /// interpretation at all (zero width or a length that is not a
    /// multiple of the width), the error reports the flat input as a
    /// `1 x len` slice instead of inventing a rounded-down shape.
    pub fn matmul_slice_into(
        &self,
        rhs: &[f32],
        rhs_cols: usize,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        if rhs_cols == 0 || rhs.len() % rhs_cols != 0 {
            return Err(ShapeError::new(
                "matmul_slice_into",
                self.shape(),
                (1, rhs.len()),
            ));
        }
        if rhs.len() / rhs_cols != self.cols {
            return Err(ShapeError::new(
                "matmul_slice_into",
                self.shape(),
                (rhs.len() / rhs_cols, rhs_cols),
            ));
        }
        matmul_slice_kernel(&self.data, self.rows, self.cols, rhs, rhs_cols, out);
        Ok(())
    }

    /// Blocked transposed-RHS matrix multiplication `self * other^T`
    /// into a reusable output buffer.
    ///
    /// The counterpart of [`Matrix::matmul_into`] for a right-hand side
    /// stored row-major in transposed layout (each RHS *row* is a column
    /// of the product). The per-cell dot product is a serial `f32`
    /// dependency chain that no amount of unrolling can vectorise, so
    /// this kernel first materialises the RHS transpose into a
    /// thread-local scratch buffer (reused across calls — steady-state
    /// training performs no allocation here) and then runs the
    /// cache-friendly axpy loop over contiguous transposed rows. Per
    /// output cell the terms are still added through a single
    /// accumulator in ascending index order — only the loop nesting
    /// changes, not the operand values or their order — so every output
    /// bit matches [`Matrix::matmul_transpose`], the naive reference
    /// oracle (which, like this kernel, applies no zero-entry skip).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.cols()`.
    pub fn matmul_transpose_into(
        &self,
        other: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "matmul_transpose_into",
                self.shape(),
                other.shape(),
            ));
        }
        thread_local! {
            static TRANSPOSED: std::cell::RefCell<Matrix> =
                std::cell::RefCell::new(Matrix::default());
        }
        let n = other.rows;
        let d = self.cols;
        out.reset(self.rows, n);
        TRANSPOSED.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.reset(d, n);
            for (j, row) in other.rows_iter().enumerate() {
                for (t, &v) in row.iter().enumerate() {
                    scratch.data[t * n + j] = v;
                }
            }
            for i in 0..self.rows {
                let a_row = &self.data[i * d..(i + 1) * d];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (t, &a) in a_row.iter().enumerate() {
                    let b_row = &scratch.data[t * n..(t + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        Ok(())
    }

    /// Applies `f` to every entry of `self`, writing the result into a
    /// reusable output buffer (reshaped to `self`'s shape).
    pub fn map_into<F: Fn(f32) -> f32>(&self, out: &mut Matrix, f: F) {
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend(self.data.iter().map(|&v| f(v)));
    }

    /// Matrix multiplication of the transpose of `self` with `other`:
    /// `self^T * other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.rows() != other.rows()`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError::new(
                "transpose_matmul",
                self.shape(),
                other.shape(),
            ));
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Tiled matrix multiplication of the transpose of `self` with
    /// `other` — `self^T * other` — into a reusable output buffer.
    ///
    /// This is the grad-weight shape of the training backward pass
    /// (`input^T * grad_output`, with the small batch dimension as the
    /// contraction). The naive kernel walks `k` in the outer loop and
    /// streams the *entire* output matrix through the cache once per
    /// `k`; this kernel blocks the output rows so a 32-row band of the
    /// output (plus the whole RHS) stays L1-resident across the full
    /// `k` loop, turning the dominant traffic into L1 hits while the
    /// wide row accumulate vectorises exactly as in the naive form.
    /// Per cell the terms are accumulated in the same ascending-`k`
    /// order with the same per-entry zero-LHS skip as
    /// [`Matrix::transpose_matmul`], which stays in-tree as the
    /// bit-exactness oracle of the property tests.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.rows() != other.rows()`.
    pub fn transpose_matmul_into(
        &self,
        other: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError::new(
                "transpose_matmul_into",
                self.shape(),
                other.shape(),
            ));
        }
        const ROW_BLOCK: usize = 32;
        let (k_len, m, n) = (self.rows, self.cols, other.cols);
        out.reset(m, n);
        let mut i0 = 0;
        while i0 < m {
            let ib = (m - i0).min(ROW_BLOCK);
            let band = &mut out.data[i0 * n..(i0 + ib) * n];
            for k in 0..k_len {
                let a_seg = &self.data[k * m + i0..k * m + i0 + ib];
                let b_row = &other.data[k * n..(k + 1) * n];
                for (out_row, &av) in band.chunks_exact_mut(n.max(1)).zip(a_seg) {
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
            i0 += ib;
        }
        Ok(())
    }

    /// The naive i-k-j matmul of [`Matrix::matmul`] writing into a
    /// reusable output buffer. This is the [`NaiveBackend`] kernel: the
    /// reference semantics (including the zero-LHS skip) without the
    /// register tiling, so backend comparisons isolate the tiling from
    /// the allocation strategy.
    ///
    /// [`NaiveBackend`]: crate::NaiveBackend
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul_naive_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(
                "matmul_naive_into",
                self.shape(),
                other.shape(),
            ));
        }
        out.reset(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(())
    }

    /// The naive per-cell dot product of `self * other^T` writing into
    /// a reusable output buffer (the [`NaiveBackend`] counterpart of
    /// [`Matrix::matmul_transpose_into`]).
    ///
    /// [`NaiveBackend`]: crate::NaiveBackend
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.cols()`.
    pub fn matmul_transpose_naive_into(
        &self,
        other: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "matmul_transpose_naive_into",
                self.shape(),
                other.shape(),
            ));
        }
        out.reset(self.rows, other.rows);
        let n = other.rows;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..n {
                let b_row = &other.data[j * self.cols..(j + 1) * self.cols];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        Ok(())
    }

    /// The naive k-outer `self^T * other` of
    /// [`Matrix::transpose_matmul`] writing into a reusable output
    /// buffer (the [`NaiveBackend`] counterpart of
    /// [`Matrix::transpose_matmul_into`]).
    ///
    /// [`NaiveBackend`]: crate::NaiveBackend
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.rows() != other.rows()`.
    pub fn transpose_matmul_naive_into(
        &self,
        other: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError::new(
                "transpose_matmul_naive_into",
                self.shape(),
                other.shape(),
            ));
        }
        out.reset(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &other.data[k * n..(k + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(())
    }

    /// Copies `src` into `self` (shape and contents), reusing the
    /// existing allocation where possible.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// [`Matrix::column_sums`] into a reusable `1 x cols` output
    /// buffer, accumulating rows in the same top-to-bottom order.
    pub fn column_sums_into(&self, out: &mut Matrix) {
        out.reset(1, self.cols);
        for row in self.rows_iter() {
            for (s, &v) in out.data.iter_mut().zip(row) {
                *s += v;
            }
        }
    }

    /// Applies `f` element-wise over `self` and `other`, writing the
    /// result into a reusable output buffer (the buffer-reusing form of
    /// the `zip`-style operations such as [`Matrix::hadamard`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn zip_into<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        f: F,
    ) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("zip_into", self.shape(), other.shape()));
        }
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data
            .extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Ok(())
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise addition `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(op, self.shape(), other.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("add_assign", self.shape(), other.shape()));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += scale * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(
                "add_scaled_assign",
                self.shape(),
                other.shape(),
            ));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every entry by `scale` in place.
    pub fn scale_assign(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Returns a copy with every entry multiplied by `scale`.
    pub fn scaled(&self, scale: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(scale);
        out
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `bias` (a length-`cols` slice) to every row in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) -> Result<(), ShapeError> {
        if bias.len() != self.cols {
            return Err(ShapeError::new(
                "add_row_broadcast",
                self.shape(),
                (1, bias.len()),
            ));
        }
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        Ok(())
    }

    /// Sums over the rows, producing a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// The sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// The Frobenius norm (`sqrt` of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Returns `true` if every entry is finite (no NaN/inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference to `other`; `None` if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f32> {
        if self.shape() != other.shape() {
            return None;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(None, |acc, d| Some(acc.map_or(d, |m: f32| m.max(d))))
            .or(Some(0.0))
    }
}

/// The register-tiled matmul kernel shared by [`Matrix::matmul_into`]
/// and [`Matrix::matmul_slice_into`]: `out = a * b`, with `a` of shape
/// `m x k` and `b` of shape `k x n`, all row-major.
///
/// A cascade of fixed-width column tiles (64 → 32 → 8 → narrow tail)
/// keeps the accumulators in SIMD registers across the whole `k` loop,
/// so the streamed RHS row costs one load per multiply-add and the
/// output is written exactly once. Per output cell the terms are
/// accumulated in ascending-`k` order with a single accumulator and the
/// naive kernel's zero-LHS skip — [`Matrix::matmul`]'s results,
/// bit-for-bit, for every input including non-finite entries.
fn matmul_slice_kernel(a: &[f32], m: usize, k_len: usize, b: &[f32], n: usize, out: &mut Matrix) {
    out.reset(m, n);
    if n <= 16 {
        // Narrow outputs (classifier heads, linear models): the whole
        // output row fits one accumulator tile, so amortise each RHS
        // row load over four LHS rows instead of re-slicing per row.
        // The `av != 0.0` skip mirrors the naive kernel exactly (and
        // pays for itself: ReLU activations are frequently zero).
        let mut i = 0;
        while i + 4 <= m {
            let a_rows = [
                &a[i * k_len..(i + 1) * k_len],
                &a[(i + 1) * k_len..(i + 2) * k_len],
                &a[(i + 2) * k_len..(i + 3) * k_len],
                &a[(i + 3) * k_len..(i + 4) * k_len],
            ];
            let mut acc = [[0.0f32; 16]; 4];
            for k in 0..k_len {
                let b_tile = &b[k * n..(k + 1) * n];
                for (acc_row, a_row) in acc.iter_mut().zip(&a_rows) {
                    let av = a_row[k];
                    if av == 0.0 {
                        continue;
                    }
                    for (c, &bv) in acc_row[..n].iter_mut().zip(b_tile) {
                        *c += av * bv;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out.data[(i + r) * n..(i + r + 1) * n].copy_from_slice(&acc_row[..n]);
            }
            i += 4;
        }
        for i in i..m {
            let a_row = &a[i * k_len..(i + 1) * k_len];
            let mut acc = [0.0f32; 16];
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_tile = &b[k * n..(k + 1) * n];
                for (c, &bv) in acc[..n].iter_mut().zip(b_tile) {
                    *c += av * bv;
                }
            }
            out.data[i * n..(i + 1) * n].copy_from_slice(&acc[..n]);
        }
        return;
    }
    let mut i = 0;
    while i < m {
        // Four dense LHS rows at a time: each streamed RHS row is
        // reused across all four, quartering RHS cache traffic (the
        // bound at realistic batch sizes). The zero scan decides the
        // loop shape: dense rows (the common case for image inputs)
        // take the branchless block; rows with zeros fall back to the
        // single-row path with the naive kernel's zero-skip, which both
        // preserves its exact semantics (a zero times a non-finite
        // weight contributes nothing) and saves work on sparse
        // activations.
        if i + 4 <= m {
            let rows = [
                &a[i * k_len..(i + 1) * k_len],
                &a[(i + 1) * k_len..(i + 2) * k_len],
                &a[(i + 2) * k_len..(i + 3) * k_len],
                &a[(i + 3) * k_len..(i + 4) * k_len],
            ];
            if rows.iter().all(|r| !r.contains(&0.0)) {
                matmul_rows4(rows, b, n, &mut out.data[i * n..(i + 4) * n]);
                i += 4;
                continue;
            }
        }
        let a_row = &a[i * k_len..(i + 1) * k_len];
        let has_zero = a_row.contains(&0.0);
        matmul_row1(a_row, b, n, &mut out.data[i * n..(i + 1) * n], has_zero);
        i += 1;
    }
}

/// Four dense (zero-free) LHS rows against the full RHS: 16-wide column
/// tiles whose 4 x 16 accumulators stay in registers, with each RHS row
/// loaded once per tile and reused across all four LHS rows (RHS cache
/// traffic is the bound at realistic batch sizes).
fn matmul_rows4(rows: [&[f32]; 4], b: &[f32], n: usize, out4: &mut [f32]) {
    let [r0, r1, r2, r3] = rows;
    let mut j0 = 0;
    while j0 + 16 <= n {
        let mut acc0 = [0.0f32; 16];
        let mut acc1 = [0.0f32; 16];
        let mut acc2 = [0.0f32; 16];
        let mut acc3 = [0.0f32; 16];
        for k in 0..r0.len() {
            let b_tile = &b[k * n + j0..k * n + j0 + 16];
            let (a0, a1, a2, a3) = (r0[k], r1[k], r2[k], r3[k]);
            for j in 0..16 {
                let bv = b_tile[j];
                acc0[j] += a0 * bv;
                acc1[j] += a1 * bv;
                acc2[j] += a2 * bv;
                acc3[j] += a3 * bv;
            }
        }
        out4[j0..j0 + 16].copy_from_slice(&acc0);
        out4[n + j0..n + j0 + 16].copy_from_slice(&acc1);
        out4[2 * n + j0..2 * n + j0 + 16].copy_from_slice(&acc2);
        out4[3 * n + j0..3 * n + j0 + 16].copy_from_slice(&acc3);
        j0 += 16;
    }
    if j0 < n {
        // Column tail (< 16): per-row accumulator tiles.
        let w = n - j0;
        for (r, a_row) in rows.iter().enumerate() {
            let mut acc = [0.0f32; 16];
            for (k, &av) in a_row.iter().enumerate() {
                let b_tile = &b[k * n + j0..k * n + j0 + w];
                for (c, &bv) in acc[..w].iter_mut().zip(b_tile) {
                    *c += av * bv;
                }
            }
            out4[r * n + j0..(r + 1) * n].copy_from_slice(&acc[..w]);
        }
    }
}

/// One LHS row against the full RHS: the 64/32/8-wide tile cascade plus
/// a narrow tail, skipping zero LHS entries when the row has any.
fn matmul_row1(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32], has_zero: bool) {
    let mut j0 = 0;
    while j0 + 64 <= n {
        matmul_tile::<64>(a_row, b, n, j0, out_row, has_zero);
        j0 += 64;
    }
    while j0 + 32 <= n {
        matmul_tile::<32>(a_row, b, n, j0, out_row, has_zero);
        j0 += 32;
    }
    while j0 + 8 <= n {
        matmul_tile::<8>(a_row, b, n, j0, out_row, has_zero);
        j0 += 8;
    }
    if j0 < n {
        // Tail of fewer than 8 columns: registers still hold the
        // accumulators, the same ascending-`k` order applies.
        let w = n - j0;
        let mut acc = [0.0f32; 8];
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_tile = &b[k * n + j0..k * n + j0 + w];
            for (c, &bv) in acc[..w].iter_mut().zip(b_tile) {
                *c += av * bv;
            }
        }
        out_row[j0..].copy_from_slice(&acc[..w]);
    }
}

/// One `W`-wide column tile of [`matmul_slice_kernel`]: `W` accumulators
/// held in registers over the full `k` loop.
#[inline]
fn matmul_tile<const W: usize>(
    a_row: &[f32],
    b: &[f32],
    n: usize,
    j0: usize,
    out_row: &mut [f32],
    has_zero: bool,
) {
    let mut acc = [0.0f32; W];
    if has_zero {
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_tile = &b[k * n + j0..k * n + j0 + W];
            for (c, &bv) in acc.iter_mut().zip(b_tile) {
                *c += av * bv;
            }
        }
    } else {
        for (k, &av) in a_row.iter().enumerate() {
            let b_tile = &b[k * n + j0..k * n + j0 + W];
            for (c, &bv) in acc.iter_mut().zip(b_tile) {
                *c += av * bv;
            }
        }
    }
    out_row[j0..j0 + W].copy_from_slice(&acc);
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX_ROWS: usize = 8;
        for (i, row) in self.rows_iter().take(MAX_ROWS).enumerate() {
            if row.len() <= 12 {
                writeln!(f, "  row {i}: {row:?}")?;
            } else {
                writeln!(f, "  row {i}: {:?} ...", &row[..12])?;
            }
        }
        if self.rows > MAX_ROWS {
            writeln!(f, "  ... ({} more rows)", self.rows - MAX_ROWS)?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_values() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_identity_map() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let b = Matrix::from_fn(5, 4, |r, c| (r + c) as f32 * 0.5);
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-6);
    }

    #[test]
    fn matmul_into_matches_naive_and_reuses_buffers() {
        let a = Matrix::from_fn(13, 9, |r, c| ((r * 9 + c) as f32 - 50.0) * 0.25);
        let b = Matrix::from_fn(9, 21, |r, c| ((r + 3 * c) as f32 - 20.0) * 0.5);
        let naive = a.matmul(&b).unwrap();
        // A dirty, wrongly shaped output buffer must be reshaped and
        // fully overwritten.
        let mut out = Matrix::filled(2, 2, 99.0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, naive);
    }

    #[test]
    fn matmul_into_handles_zero_entries_like_naive() {
        // Both kernels skip zero LHS entries; results must agree exactly
        // on sparse input.
        let a = Matrix::from_fn(5, 7, |r, c| if (r + c) % 3 == 0 { 0.0 } else { 1.5 });
        let b = Matrix::from_fn(7, 4, |r, c| (r * 4 + c) as f32 * 0.1 - 1.0);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
    }

    #[test]
    fn matmul_into_matches_naive_for_non_finite_rhs() {
        // A diverged candidate model can carry inf/NaN weights; the
        // zero-LHS skip means a zero input times an inf weight stays
        // skipped in both kernels, so even these results are identical.
        let a = Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[1.0, 0.0, 3.0]]).unwrap();
        let mut weights = Matrix::from_fn(3, 20, |r, c| (r * 20 + c) as f32 * 0.5);
        weights[(0, 0)] = f32::INFINITY;
        weights[(2, 19)] = f32::NAN;
        let naive = a.matmul(&weights).unwrap();
        let mut blocked = Matrix::default();
        a.matmul_into(&weights, &mut blocked).unwrap();
        for (x, y) in naive.as_slice().iter().zip(blocked.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{naive:?} vs {blocked:?}");
        }
    }

    #[test]
    fn matmul_slice_into_matches_matrix_rhs() {
        let a = Matrix::from_fn(7, 65, |r, c| ((r * 65 + c) as f32).sin());
        let b = Matrix::from_fn(65, 74, |r, c| ((r + c) as f32).cos());
        let mut via_matrix = Matrix::default();
        a.matmul_into(&b, &mut via_matrix).unwrap();
        let mut via_slice = Matrix::default();
        a.matmul_slice_into(b.as_slice(), b.cols(), &mut via_slice)
            .unwrap();
        assert_eq!(via_matrix, via_slice);
        assert_eq!(via_matrix, a.matmul(&b).unwrap());
    }

    #[test]
    fn matmul_slice_into_rejects_bad_slices() {
        let a = Matrix::zeros(2, 3);
        let mut out = Matrix::default();
        assert!(a.matmul_slice_into(&[0.0; 6], 0, &mut out).is_err());
        assert!(a.matmul_slice_into(&[0.0; 7], 2, &mut out).is_err());
        assert!(a.matmul_slice_into(&[0.0; 8], 2, &mut out).is_err());
        assert!(a.matmul_slice_into(&[0.0; 6], 2, &mut out).is_ok());
    }

    #[test]
    fn matmul_slice_into_reports_the_actual_invalid_input() {
        // Regression: a zero-width RHS used to be reported as
        // `(rhs.len(), 0)` via a `max(1)` division fallback — a shape
        // with zero elements that nobody passed. Undescribable slices
        // (zero width or a length that is no multiple of the width)
        // are now reported as the flat `1 x len` input itself.
        let a = Matrix::zeros(2, 3);
        let mut out = Matrix::default();
        let err = a.matmul_slice_into(&[0.0; 6], 0, &mut out).unwrap_err();
        assert_eq!(err.op(), "matmul_slice_into");
        assert_eq!(err.lhs(), (2, 3));
        assert_eq!(err.rhs(), (1, 6));
        let err = a.matmul_slice_into(&[0.0; 7], 2, &mut out).unwrap_err();
        assert_eq!(err.rhs(), (1, 7));
        // A clean division that merely disagrees on the row count still
        // reports the implied rows x cols shape.
        let err = a.matmul_slice_into(&[0.0; 8], 2, &mut out).unwrap_err();
        assert_eq!(err.rhs(), (4, 2));
    }

    #[test]
    fn transpose_matmul_into_matches_naive_bitwise() {
        // Sparse LHS so the per-(k, i) zero skip is exercised; the
        // tiled kernel must reproduce the naive accumulation exactly.
        let a = Matrix::from_fn(9, 21, |r, c| {
            if (r + c) % 4 == 0 {
                0.0
            } else {
                ((r * 21 + c) as f32).sin()
            }
        });
        let b = Matrix::from_fn(9, 35, |r, c| ((r + 2 * c) as f32).cos());
        let naive = a.transpose_matmul(&b).unwrap();
        let mut tiled = Matrix::filled(2, 2, 9.0); // dirty buffer on purpose
        a.transpose_matmul_into(&b, &mut tiled).unwrap();
        assert_eq!(tiled.shape(), naive.shape());
        for (x, y) in naive.as_slice().iter().zip(tiled.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let bad = Matrix::zeros(4, 5);
        assert!(a.transpose_matmul_into(&bad, &mut tiled).is_err());
    }

    #[test]
    fn naive_into_variants_match_their_allocating_forms() {
        let a = Matrix::from_fn(6, 11, |r, c| if c % 3 == 0 { 0.0 } else { (r + c) as f32 });
        let b = Matrix::from_fn(11, 9, |r, c| (r * 9 + c) as f32 * 0.1 - 4.0);
        let bt = Matrix::from_fn(9, 11, |r, c| ((r * 11 + c) as f32).sin());
        let ta = Matrix::from_fn(6, 9, |r, c| if r % 2 == 0 { 0.0 } else { (r * c) as f32 });
        let mut out = Matrix::filled(1, 1, 5.0);
        a.matmul_naive_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        a.matmul_transpose_naive_into(&bt, &mut out).unwrap();
        assert_eq!(out, a.matmul_transpose(&bt).unwrap());
        a.transpose_matmul_naive_into(&ta, &mut out).unwrap();
        assert_eq!(out, a.transpose_matmul(&ta).unwrap());
        let bad = Matrix::zeros(3, 2);
        assert!(a.matmul_naive_into(&bad, &mut out).is_err());
        assert!(a.matmul_transpose_naive_into(&bad, &mut out).is_err());
        assert!(a.transpose_matmul_naive_into(&bad, &mut out).is_err());
    }

    #[test]
    fn copy_from_reuses_the_allocation() {
        let src = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let mut dst = Matrix::filled(9, 9, 1.0);
        let ptr = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(
            dst.as_slice().as_ptr(),
            ptr,
            "copy_from must not reallocate"
        );
    }

    #[test]
    fn column_sums_into_matches_column_sums() {
        let m = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f32 * 0.5 - 8.0);
        let mut out = Matrix::filled(2, 2, 3.0);
        m.column_sums_into(&mut out);
        assert_eq!(out.shape(), (1, 7));
        assert_eq!(out.as_slice(), m.column_sums().as_slice());
    }

    #[test]
    fn zip_into_matches_hadamard() {
        let a = Matrix::from_fn(4, 6, |r, c| (r + c) as f32 - 3.0);
        let b = Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as f32 * 0.25);
        let mut out = Matrix::default();
        a.zip_into(&b, &mut out, |x, y| x * y).unwrap();
        assert_eq!(out, a.hadamard(&b).unwrap());
        let bad = Matrix::zeros(2, 2);
        assert!(a.zip_into(&bad, &mut out, |x, y| x + y).is_err());
    }

    #[test]
    fn matmul_into_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::default();
        assert!(a.matmul_into(&b, &mut out).is_err());
    }

    #[test]
    fn matmul_transpose_into_matches_naive() {
        let a = Matrix::from_fn(11, 6, |r, c| (r * 6 + c) as f32 * 0.3 - 5.0);
        let b = Matrix::from_fn(17, 6, |r, c| ((r + c) as f32).sin());
        let naive = a.matmul_transpose(&b).unwrap();
        let mut out = Matrix::filled(1, 1, -1.0);
        a.matmul_transpose_into(&b, &mut out).unwrap();
        assert_eq!(out, naive);
        let bad = Matrix::zeros(4, 5);
        assert!(a.matmul_transpose_into(&bad, &mut out).is_err());
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut m = Matrix::filled(2, 3, 7.0);
        m.reset(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn map_into_matches_map() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 - 7.0);
        let mut out = Matrix::filled(1, 9, 3.0);
        m.map_into(&mut out, |v| v.max(0.0));
        assert_eq!(out, m.map(|v| v.max(0.0)));
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let b = Matrix::from_fn(4, 5, |r, c| (r + 2 * c) as f32 * 0.25);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-6);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 31 + c * 7) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(2, 2, |r, c| (r * c) as f32 + 1.0);
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn hadamard_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let h = a.hadamard(&b).unwrap();
        assert_eq!(
            h,
            Matrix::from_rows(&[&[5.0, 12.0], &[21.0, 32.0]]).unwrap()
        );
    }

    #[test]
    fn add_scaled_assign_is_axpy() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_scaled_assign(&b, 0.5).unwrap();
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn row_broadcast_adds_bias_to_every_row() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -1.0]).unwrap();
        for r in 0..3 {
            assert_eq!(m.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn row_broadcast_rejects_wrong_length() {
        let mut m = Matrix::zeros(3, 2);
        assert!(m.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn column_sums_known_values() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(m.column_sums(), vec![9.0, 12.0]);
    }

    #[test]
    fn select_rows_picks_and_reorders() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates_ragged_input() {
        let a: &[f32] = &[1.0, 2.0];
        let b: &[f32] = &[3.0];
        assert!(Matrix::from_rows(&[a, b]).is_err());
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f32::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn max_abs_diff_none_for_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert_eq!(a.max_abs_diff(&b), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m[(1, 0)];
    }

    #[test]
    fn scale_and_map_agree() {
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        assert_eq!(m.scaled(2.0), m.map(|v| v * 2.0));
    }

    #[test]
    fn debug_output_is_never_empty() {
        let m = Matrix::zeros(0, 0);
        assert!(!format!("{m:?}").is_empty());
    }
}
