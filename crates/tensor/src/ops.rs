//! Numerically stable kernels shared by the neural-network layers.

use crate::Matrix;

/// Computes a numerically stable softmax over a single logit slice.
///
/// # Example
///
/// ```
/// let p = dagfl_tensor::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_slice_in_place(&mut out);
    out
}

/// Applies a numerically stable softmax to every row of `logits` in place.
pub fn softmax_in_place(logits: &mut Matrix) {
    let rows = logits.rows();
    for r in 0..rows {
        softmax_slice_in_place(logits.row_mut(r));
    }
}

fn softmax_slice_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// `log(sum(exp(x)))` computed stably.
pub fn log_sum_exp(values: &[f32]) -> f32 {
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Index of the maximum entry of `values`; ties resolve to the first maximum.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Builds a one-hot row matrix: `labels.len() x classes`.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), classes);
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        m[(r, label)] = 1.0;
    }
    m
}

/// Mean cross-entropy `-log p[label]` given already-normalised probability
/// rows.
///
/// Probabilities are clamped away from zero for numerical safety.
///
/// # Panics
///
/// Panics if `probs.rows() != labels.len()` or a label is out of range.
pub fn cross_entropy_from_probs(probs: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(
        probs.rows(),
        labels.len(),
        "probability rows must match label count"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        let p = probs[(r, label)].max(1e-12);
        total -= p.ln();
    }
    total / labels.len() as f32
}

/// Fused softmax + cross-entropy forward pass over logit rows.
///
/// Returns `(probabilities, mean_loss)`. The probabilities are exactly the
/// values needed by the standard `p - y` backward pass of softmax
/// cross-entropy.
///
/// # Panics
///
/// Panics if `logits.rows() != labels.len()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (Matrix, f32) {
    assert_eq!(
        logits.rows(),
        labels.len(),
        "logit rows must match label count"
    );
    let mut probs = logits.clone();
    softmax_in_place(&mut probs);
    let loss = cross_entropy_from_probs(&probs, labels);
    (probs, loss)
}

/// Fused softmax + cross-entropy + accuracy kernel, in place.
///
/// The inference-path counterpart of [`softmax_cross_entropy`]: one pass
/// over the logit rows with **no intermediate probability matrix** —
/// `logits` itself is normalised row by row, and the per-row loss and
/// argmax are folded into the same pass. Returns `(mean_loss, correct)`
/// where `correct` counts rows whose probability argmax equals the label
/// (ties resolve to the first maximum, like [`argmax`]).
///
/// Per row the arithmetic (max-shift, exp, sum, divide, clamp, ln) runs
/// in exactly the order of the composed naive kernels, so results are
/// bit-identical to `softmax_cross_entropy` + [`cross_entropy_from_probs`]
/// + [`argmax`] — the property tests pin this against the naive oracles.
///
/// # Panics
///
/// Panics if `logits.rows() != labels.len()` or a label is out of range.
pub fn fused_softmax_cross_entropy(logits: &mut Matrix, labels: &[usize]) -> (f32, usize) {
    assert_eq!(
        logits.rows(),
        labels.len(),
        "logit rows must match label count"
    );
    if labels.is_empty() {
        return (0.0, 0);
    }
    let classes = logits.cols();
    let mut total = 0.0;
    let mut correct = 0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let row = logits.row_mut(r);
        softmax_slice_in_place(row);
        let p = row[label].max(1e-12);
        total -= p.ln();
        if argmax(row) == label {
            correct += 1;
        }
    }
    (total / labels.len() as f32, correct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.0, 1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1000.0, -1000.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p[1].abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_in_place_normalises_each_row() {
        let mut m = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0]]).unwrap();
        softmax_in_place(&mut m);
        for r in 0..2 {
            assert!((m.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-6);
            assert!((m[(r, 0)] - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let v = [0.1f32, 0.2, 0.3];
        let naive = v.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&v) - naive).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_stable_for_large_values() {
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2f32.ln())).abs() < 1e-3);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn one_hot_sets_exactly_one_entry_per_row() {
        let m = one_hot(&[2, 0], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_out_of_range_label() {
        one_hot(&[3], 3);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_zero() {
        let probs = one_hot(&[1], 3);
        assert!(cross_entropy_from_probs(&probs, &[1]) < 1e-5);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let probs = Matrix::filled(1, 4, 0.25);
        let loss = cross_entropy_from_probs(&probs, &[2]);
        assert!((loss - 4f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn softmax_cross_entropy_matches_composition() {
        let logits = Matrix::from_rows(&[&[0.5, -0.25, 1.5], &[2.0, 0.0, -1.0]]).unwrap();
        let labels = [2, 0];
        let (probs, loss) = softmax_cross_entropy(&logits, &labels);
        let mut manual = logits.clone();
        softmax_in_place(&mut manual);
        assert!(probs.max_abs_diff(&manual).unwrap() < 1e-6);
        assert!((loss - cross_entropy_from_probs(&manual, &labels)).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_empty_batch_is_zero() {
        let probs = Matrix::zeros(0, 3);
        assert_eq!(cross_entropy_from_probs(&probs, &[]), 0.0);
    }

    #[test]
    fn fused_kernel_matches_naive_composition() {
        let logits =
            Matrix::from_rows(&[&[0.5, -0.25, 1.5], &[2.0, 0.0, -1.0], &[3.0, 3.0, 0.1]]).unwrap();
        let labels = [2, 0, 1];
        let (probs, naive_loss) = softmax_cross_entropy(&logits, &labels);
        let naive_correct = labels
            .iter()
            .enumerate()
            .filter(|&(r, &label)| argmax(probs.row(r)) == label)
            .count();
        let mut fused_logits = logits.clone();
        let (loss, correct) = fused_softmax_cross_entropy(&mut fused_logits, &labels);
        assert_eq!(
            loss.to_bits(),
            naive_loss.to_bits(),
            "loss must be bit-identical"
        );
        assert_eq!(correct, naive_correct);
        assert_eq!(fused_logits, probs, "logits must hold the probabilities");
    }

    #[test]
    fn fused_kernel_empty_batch_is_zero() {
        let mut logits = Matrix::zeros(0, 4);
        assert_eq!(fused_softmax_cross_entropy(&mut logits, &[]), (0.0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fused_kernel_rejects_out_of_range_label() {
        let mut logits = Matrix::zeros(1, 3);
        fused_softmax_cross_entropy(&mut logits, &[3]);
    }

    #[test]
    #[should_panic(expected = "logit rows")]
    fn fused_kernel_rejects_row_mismatch() {
        let mut logits = Matrix::zeros(2, 3);
        fused_softmax_cross_entropy(&mut logits, &[0]);
    }
}
