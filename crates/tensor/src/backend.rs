//! Pluggable matmul backends for the training pipeline.
//!
//! The three product shapes a training step needs — `A * B` (forward),
//! `A * B^T` (grad-input) and `A^T * B` (grad-weight) — are exposed
//! behind the [`MatmulBackend`] trait so the layer code above never
//! names a kernel. Two implementations ship in-tree:
//!
//! - [`NaiveBackend`] — the straightforward loops ([`Matrix::matmul`]
//!   and friends) writing into reusable buffers. Kept as the
//!   bit-exactness oracle: every other backend must reproduce its
//!   results bit-for-bit (pinned by the property tests).
//! - [`TiledBackend`] — the register-tiled cascades of the evaluation
//!   hot path, extended with a transpose-then-axpy `A * B^T` kernel
//!   (the dot form is an unvectorisable serial chain) and an
//!   output-blocked `A^T * B` kernel for the grad shapes. Per output
//!   cell each kernel accumulates the same terms in the same ascending
//!   order (including the zero-LHS skip where the oracle has one), so
//!   results are bitwise identical — just faster.
//!
//! Backends are selected by value through [`MatmulBackendKind`]
//! (`Copy`, serializable as `"naive"` / `"tiled"` in scenario files)
//! and resolved to a `&'static dyn MatmulBackend` at the call site, so
//! model structs stay `Clone` and cheap to ship across threads. The
//! trait is the seam a future GPU backend slots into (see ROADMAP).

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// The matrix products of a training step, behind one swappable seam.
///
/// All methods write into reusable output buffers (reshaped, never
/// reallocated in steady state); the provided allocating conveniences
/// exist for call sites — recurrent cells mid-refactor, tests — where
/// buffer threading is not worth it.
///
/// Implementations must be bit-identical to [`NaiveBackend`]: per
/// output cell, terms accumulate in ascending contraction order into a
/// single `f32` accumulator, skipping zero left-hand entries exactly
/// where the naive kernels do.
pub trait MatmulBackend: Send + Sync {
    /// The backend's scenario-file name (`"naive"`, `"tiled"`).
    fn name(&self) -> &'static str;

    /// `out = a * b`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `a.cols() != b.rows()`.
    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), ShapeError>;

    /// `out = a * b^T` (the grad-input shape).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `a.cols() != b.cols()`.
    fn matmul_transpose_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError>;

    /// `out = a^T * b` (the grad-weight shape).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `a.rows() != b.rows()`.
    fn transpose_matmul_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError>;

    /// Allocating convenience for [`MatmulBackend::matmul_into`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `a.cols() != b.rows()`.
    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.matmul_into(a, b, &mut out)?;
        Ok(out)
    }

    /// Allocating convenience for
    /// [`MatmulBackend::matmul_transpose_into`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `a.cols() != b.cols()`.
    fn matmul_transpose(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.matmul_transpose_into(a, b, &mut out)?;
        Ok(out)
    }

    /// Allocating convenience for
    /// [`MatmulBackend::transpose_matmul_into`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `a.rows() != b.rows()`.
    fn transpose_matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.transpose_matmul_into(a, b, &mut out)?;
        Ok(out)
    }
}

/// The reference backend: the naive loops, buffer-reusing.
///
/// Slower than [`TiledBackend`] but trivially auditable — this is the
/// oracle every other backend is property-tested against, and the
/// `matmul_backend = "naive"` escape hatch in scenario files.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBackend;

impl MatmulBackend for NaiveBackend {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        a.matmul_naive_into(b, out)
    }

    fn matmul_transpose_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        a.matmul_transpose_naive_into(b, out)
    }

    fn transpose_matmul_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        a.transpose_matmul_naive_into(b, out)
    }
}

/// The fast backend: the register-tiled evaluation-path cascades plus
/// the restructured grad kernels, bit-identical to [`NaiveBackend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TiledBackend;

impl MatmulBackend for TiledBackend {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        a.matmul_into(b, out)
    }

    fn matmul_transpose_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        a.matmul_transpose_into(b, out)
    }

    fn transpose_matmul_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        a.transpose_matmul_into(b, out)
    }
}

/// Backend selection as a plain value: what scenario files, model
/// structs and factories pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatmulBackendKind {
    /// The naive reference loops ([`NaiveBackend`]).
    Naive,
    /// The register-tiled kernels ([`TiledBackend`]) — the default.
    #[default]
    Tiled,
}

impl MatmulBackendKind {
    /// The scenario-file name (`"naive"` / `"tiled"`).
    pub fn name(self) -> &'static str {
        self.as_dyn().name()
    }

    /// Resolves the selection to its backend implementation.
    pub fn as_dyn(self) -> &'static dyn MatmulBackend {
        match self {
            MatmulBackendKind::Naive => &NaiveBackend,
            MatmulBackendKind::Tiled => &TiledBackend,
        }
    }

    /// Parses a scenario-file name; `None` for anything but
    /// `"naive"` / `"tiled"`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "naive" => Some(MatmulBackendKind::Naive),
            "tiled" => Some(MatmulBackendKind::Tiled),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            if (r + 2 * c) % 3 == 0 {
                0.0
            } else {
                ((r * cols + c) as f32).sin()
            }
        })
    }

    #[test]
    fn kinds_resolve_and_round_trip() {
        for kind in [MatmulBackendKind::Naive, MatmulBackendKind::Tiled] {
            assert_eq!(kind.as_dyn().name(), kind.name());
            assert_eq!(MatmulBackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MatmulBackendKind::default(), MatmulBackendKind::Tiled);
        assert_eq!(MatmulBackendKind::parse("wgpu"), None);
    }

    #[test]
    fn backends_agree_bitwise_on_all_three_shapes() {
        let (naive, tiled) = (
            MatmulBackendKind::Naive.as_dyn(),
            MatmulBackendKind::Tiled.as_dyn(),
        );
        let a = sparse(10, 33);
        let b = sparse(33, 21);
        let bt = sparse(21, 33);
        let ta = sparse(10, 21);
        for (x, y) in [
            (naive.matmul(&a, &b), tiled.matmul(&a, &b)),
            (
                naive.matmul_transpose(&a, &bt),
                tiled.matmul_transpose(&a, &bt),
            ),
            (
                naive.transpose_matmul(&a, &ta),
                tiled.transpose_matmul(&a, &ta),
            ),
        ] {
            let (x, y) = (x.unwrap(), y.unwrap());
            assert_eq!(x.shape(), y.shape());
            for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn backends_report_shape_errors() {
        let a = Matrix::zeros(2, 3);
        let bad = Matrix::zeros(5, 7);
        let mut out = Matrix::default();
        for kind in [MatmulBackendKind::Naive, MatmulBackendKind::Tiled] {
            let backend = kind.as_dyn();
            assert!(backend.matmul_into(&a, &bad, &mut out).is_err());
            assert!(backend.matmul_transpose_into(&a, &bad, &mut out).is_err());
            assert!(backend.transpose_matmul_into(&a, &bad, &mut out).is_err());
        }
    }
}
