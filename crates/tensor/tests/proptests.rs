//! Property-based tests for the tensor substrate.

use dagfl_tensor::{
    argmax, cross_entropy_from_probs, fused_softmax_cross_entropy, log_sum_exp, one_hot, softmax,
    softmax_cross_entropy, MatmulBackendKind, Matrix, Summary,
};
use proptest::prelude::*;

/// Strategy producing a matrix with bounded dimensions and finite entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized by construction"))
    })
}

/// Two matrices with identical shape.
fn matrix_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        let lhs = proptest::collection::vec(-100.0f32..100.0, r * c);
        let rhs = proptest::collection::vec(-100.0f32..100.0, r * c);
        (lhs, rhs).prop_map(move |(a, b)| {
            (
                Matrix::from_vec(r, c, a).expect("sized"),
                Matrix::from_vec(r, c, b).expect("sized"),
            )
        })
    })
}

/// A `rows x cols` matrix roughly one third of whose entries are exact
/// zeros, so the kernels' zero-LHS skips fire on realistic (post-ReLU)
/// sparsity patterns.
fn sparse_sized(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(
        (-150.0f32..150.0).prop_map(|v| if v.abs() < 50.0 { 0.0 } else { v }),
        rows * cols,
    )
    .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized by construction"))
}

/// Asserts that two matrices are identical down to the bit pattern of
/// every entry — the contract between `TiledBackend` and the
/// `NaiveBackend` oracle.
fn assert_bit_identical(tiled: &Matrix, naive: &Matrix) {
    assert_eq!(tiled.shape(), naive.shape());
    for (t, n) in tiled.as_slice().iter().zip(naive.as_slice()) {
        assert_eq!(t.to_bits(), n.to_bits(), "{t} vs {n}");
    }
}

proptest! {
    // The TiledBackend kernels are pinned to the NaiveBackend oracle
    // bit-for-bit over all three training product shapes. Dimensions
    // start at 0 (empty operands) and straddle every tile width (4-row
    // blocks, 8/16/32/64-wide column tiles), and a third of the LHS
    // entries are exact zeros so the zero-LHS skip parity is exercised.

    #[test]
    fn tiled_backend_matmul_matches_naive_oracle_bitwise(
        (a, b) in (0usize..=20, 0usize..=20, 0usize..=70).prop_flat_map(|(m, k, n)| {
            (sparse_sized(m, k), sparse_sized(k, n))
        })
    ) {
        let (naive, tiled) = (
            MatmulBackendKind::Naive.as_dyn(),
            MatmulBackendKind::Tiled.as_dyn(),
        );
        let mut want = Matrix::filled(1, 2, -3.0); // dirty buffers on purpose
        let mut got = Matrix::filled(3, 1, 7.0);
        naive.matmul_into(&a, &b, &mut want).unwrap();
        tiled.matmul_into(&a, &b, &mut got).unwrap();
        assert_bit_identical(&got, &want);
        assert_bit_identical(&got, &a.matmul(&b).unwrap());
    }

    #[test]
    fn tiled_backend_matmul_transpose_matches_naive_oracle_bitwise(
        (a, b) in (0usize..=20, 0usize..=20, 0usize..=20).prop_flat_map(|(m, k, n)| {
            (sparse_sized(m, k), sparse_sized(n, k))
        })
    ) {
        let (naive, tiled) = (
            MatmulBackendKind::Naive.as_dyn(),
            MatmulBackendKind::Tiled.as_dyn(),
        );
        let mut want = Matrix::filled(2, 2, 1.0);
        let mut got = Matrix::default();
        naive.matmul_transpose_into(&a, &b, &mut want).unwrap();
        tiled.matmul_transpose_into(&a, &b, &mut got).unwrap();
        assert_bit_identical(&got, &want);
    }

    #[test]
    fn tiled_backend_transpose_matmul_matches_naive_oracle_bitwise(
        (a, b) in (0usize..=20, 0usize..=40, 0usize..=40).prop_flat_map(|(k, m, n)| {
            (sparse_sized(k, m), sparse_sized(k, n))
        })
    ) {
        let (naive, tiled) = (
            MatmulBackendKind::Naive.as_dyn(),
            MatmulBackendKind::Tiled.as_dyn(),
        );
        let mut want = Matrix::filled(1, 3, 4.0);
        let mut got = Matrix::filled(2, 1, -9.0);
        naive.transpose_matmul_into(&a, &b, &mut want).unwrap();
        tiled.transpose_matmul_into(&a, &b, &mut got).unwrap();
        assert_bit_identical(&got, &want);
        assert_bit_identical(&got, &a.transpose_matmul(&b).unwrap());
    }

    #[test]
    fn transpose_is_involution(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn addition_commutes((a, b) in matrix_pair(8)) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.max_abs_diff(&ba).unwrap() < 1e-4);
    }

    #[test]
    fn add_then_sub_is_identity((a, b) in matrix_pair(8)) {
        let back = a.add(&b).unwrap().sub(&b).unwrap();
        prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-3);
    }

    #[test]
    fn scaling_distributes_over_addition((a, b) in matrix_pair(6), s in -10.0f32..10.0) {
        let lhs = a.add(&b).unwrap().scaled(s);
        let rhs = a.scaled(s).add(&b.scaled(s)).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-2);
    }

    #[test]
    fn matmul_identity_is_noop(m in matrix_strategy(8)) {
        let i = Matrix::identity(m.cols());
        let prod = m.matmul(&i).unwrap();
        prop_assert!(prod.max_abs_diff(&m).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_transpose_agrees_with_naive(
        (m, n) in (1usize..=6, 1usize..=6, 1usize..=6).prop_flat_map(|(r1, r2, c)| {
            let lhs = proptest::collection::vec(-100.0f32..100.0, r1 * c);
            let rhs = proptest::collection::vec(-100.0f32..100.0, r2 * c);
            (lhs, rhs).prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(r1, c, a).expect("sized"),
                    Matrix::from_vec(r2, c, b).expect("sized"),
                )
            })
        })
    ) {
        let fast = m.matmul_transpose(&n).unwrap();
        let slow = m.matmul(&n.transpose()).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-1);
    }

    #[test]
    fn blocked_matmul_matches_naive_oracle(
        // Dimensions deliberately straddle the kernel's 8-row tile, so
        // partial tiles (non-multiple-of-block sizes) are exercised.
        (a, b) in (1usize..=20, 1usize..=20, 1usize..=20).prop_flat_map(|(m, k, n)| {
            let lhs = proptest::collection::vec(-100.0f32..100.0, m * k);
            let rhs = proptest::collection::vec(-100.0f32..100.0, k * n);
            (lhs, rhs).prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(m, k, a).expect("sized"),
                    Matrix::from_vec(k, n, b).expect("sized"),
                )
            })
        })
    ) {
        let naive = a.matmul(&b).unwrap();
        let mut blocked = Matrix::filled(1, 3, 42.0); // dirty buffer on purpose
        a.matmul_into(&b, &mut blocked).unwrap();
        prop_assert_eq!(blocked.shape(), naive.shape());
        prop_assert!(blocked.max_abs_diff(&naive).unwrap() < 1e-5);
    }

    #[test]
    fn blocked_transposed_rhs_matmul_matches_naive_oracle(
        (a, b) in (1usize..=20, 1usize..=20, 1usize..=20).prop_flat_map(|(m, k, n)| {
            let lhs = proptest::collection::vec(-100.0f32..100.0, m * k);
            let rhs = proptest::collection::vec(-100.0f32..100.0, n * k);
            (lhs, rhs).prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(m, k, a).expect("sized"),
                    Matrix::from_vec(n, k, b).expect("sized"),
                )
            })
        })
    ) {
        // `matmul_transpose` delegates to the blocked kernel, so the
        // reference oracle is the naive dot-product loop itself.
        let mut naive = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0f32;
                for (&x, &y) in a.row(i).iter().zip(b.row(j)) {
                    acc += x * y;
                }
                naive[(i, j)] = acc;
            }
        }
        let mut blocked = Matrix::default();
        a.matmul_transpose_into(&b, &mut blocked).unwrap();
        prop_assert_eq!(blocked.shape(), naive.shape());
        prop_assert!(blocked.max_abs_diff(&naive).unwrap() < 1e-5);
        prop_assert!(a.matmul_transpose(&b).unwrap().max_abs_diff(&naive).unwrap() < 1e-5);
    }

    #[test]
    fn fused_softmax_cross_entropy_matches_naive_oracle(
        (logits, labels) in (1usize..=12, 1usize..=12).prop_flat_map(|(rows, classes)| {
            let data = proptest::collection::vec(-50.0f32..50.0, rows * classes);
            let labels = proptest::collection::vec(0usize..classes, rows);
            (data, labels).prop_map(move |(d, l)| {
                (Matrix::from_vec(rows, classes, d).expect("sized"), l)
            })
        })
    ) {
        let (probs, naive_loss) = softmax_cross_entropy(&logits, &labels);
        let oracle_loss = cross_entropy_from_probs(&probs, &labels);
        let naive_correct = labels
            .iter()
            .enumerate()
            .filter(|&(r, &label)| argmax(probs.row(r)) == label)
            .count();
        let mut fused = logits.clone();
        let (loss, correct) = fused_softmax_cross_entropy(&mut fused, &labels);
        prop_assert!((loss - naive_loss).abs() < 1e-5);
        prop_assert!((loss - oracle_loss).abs() < 1e-5);
        prop_assert_eq!(correct, naive_correct);
        prop_assert!(fused.max_abs_diff(&probs).unwrap() < 1e-5);
    }

    #[test]
    fn softmax_is_a_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let p = softmax(&v);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn softmax_preserves_argmax(v in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let p = softmax(&v);
        prop_assert_eq!(argmax(&v), argmax(&p));
    }

    #[test]
    fn log_sum_exp_bounds(v in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let lse = log_sum_exp(&v);
        let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(lse >= max - 1e-4);
        prop_assert!(lse <= max + (v.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn one_hot_rows_sum_to_one(labels in proptest::collection::vec(0usize..7, 1..20)) {
        let m = one_hot(&labels, 7);
        for (r, &label) in labels.iter().enumerate() {
            let sum: f32 = m.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert_eq!(argmax(m.row(r)), label);
        }
    }

    #[test]
    fn summary_orders_quartiles(v in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
        let s = Summary::of(&v);
        prop_assert!(s.min <= s.q1 + 1e-6);
        prop_assert!(s.q1 <= s.median + 1e-6);
        prop_assert!(s.median <= s.q3 + 1e-6);
        prop_assert!(s.q3 <= s.max + 1e-6);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn column_sums_match_total(m in matrix_strategy(8)) {
        let total: f32 = m.column_sums().iter().sum();
        prop_assert!((total - m.sum()).abs() < 1e-2_f32.max(m.sum().abs() * 1e-4));
    }
}
