use std::collections::HashMap;

/// An undirected graph with non-negative edge weights over nodes `0..n`.
///
/// Parallel edges accumulate: adding the same edge twice sums the weights,
/// which matches how the client graph counts approvals. Self-loops are
/// supported (they arise during Louvain aggregation) and follow the usual
/// convention of contributing twice to a node's weighted degree.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: Vec<HashMap<usize, f64>>,
    loops: Vec<f64>,
    edge_weight_total: f64,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![HashMap::new(); n],
            loops: vec![0.0; n],
            edge_weight_total: 0.0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of distinct edges with non-zero weight (self-loops included).
    pub fn num_edges(&self) -> usize {
        let pair_edges: usize = self
            .adjacency
            .iter()
            .enumerate()
            .map(|(i, adj)| adj.keys().filter(|&&j| j > i).count())
            .sum();
        pair_edges + self.loops.iter().filter(|&&w| w > 0.0).count()
    }

    /// Adds `weight` to the edge between `a` and `b` (accumulating).
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range or `weight` is negative/non-finite.
    pub fn add_edge(&mut self, a: usize, b: usize, weight: f64) {
        let n = self.num_nodes();
        assert!(
            a < n && b < n,
            "node out of range: ({a}, {b}) with {n} nodes"
        );
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
        if weight == 0.0 {
            return;
        }
        if a == b {
            self.loops[a] += weight;
        } else {
            *self.adjacency[a].entry(b).or_insert(0.0) += weight;
            *self.adjacency[b].entry(a).or_insert(0.0) += weight;
        }
        self.edge_weight_total += weight;
    }

    /// The weight between `a` and `b` (0 if absent). For `a == b` this is
    /// the self-loop weight (counted once).
    pub fn weight(&self, a: usize, b: usize) -> f64 {
        if a == b {
            self.loops.get(a).copied().unwrap_or(0.0)
        } else {
            self.adjacency
                .get(a)
                .and_then(|adj| adj.get(&b))
                .copied()
                .unwrap_or(0.0)
        }
    }

    /// The self-loop weight of `a`.
    pub fn loop_weight(&self, a: usize) -> f64 {
        self.loops[a]
    }

    /// Iterator over `(neighbor, weight)` pairs of `a` (excluding any
    /// self-loop).
    pub fn neighbors(&self, a: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adjacency[a].iter().map(|(&j, &w)| (j, w))
    }

    /// Weighted degree of `a`; self-loops count twice per convention.
    pub fn degree(&self, a: usize) -> f64 {
        self.adjacency[a].values().sum::<f64>() + 2.0 * self.loops[a]
    }

    /// Total edge weight `m` (each undirected edge counted once, self-loops
    /// counted once).
    pub fn total_weight(&self) -> f64 {
        self.edge_weight_total
    }

    /// All edges as `(a, b, weight)` with `a <= b`, sorted for determinism.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for (i, adj) in self.adjacency.iter().enumerate() {
            if self.loops[i] > 0.0 {
                out.push((i, i, self.loops[i]));
            }
            for (&j, &w) in adj {
                if j > i {
                    out.push((i, j, w));
                }
            }
        }
        out.sort_by_key(|e| (e.0, e.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_weight(), 0.0);
        assert_eq!(g.degree(0), 0.0);
    }

    #[test]
    fn add_edge_is_symmetric() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.5);
        assert_eq!(g.weight(0, 1), 2.5);
        assert_eq!(g.weight(1, 0), 2.5);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_weight(), 2.5);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 2.0);
        assert_eq!(g.weight(0, 1), 3.0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn self_loop_counts_twice_in_degree() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 1.5);
        g.add_edge(0, 1, 1.0);
        assert_eq!(g.degree(0), 4.0);
        assert_eq!(g.degree(1), 1.0);
        assert_eq!(g.loop_weight(0), 1.5);
        assert_eq!(g.total_weight(), 2.5);
    }

    #[test]
    fn zero_weight_edges_are_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 0.0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        Graph::new(2).add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        Graph::new(2).add_edge(0, 1, -1.0);
    }

    #[test]
    fn edges_are_sorted_and_deduplicated() {
        let mut g = Graph::new(4);
        g.add_edge(2, 1, 1.0);
        g.add_edge(0, 3, 2.0);
        g.add_edge(1, 1, 0.5);
        assert_eq!(g.edges(), vec![(0, 3, 2.0), (1, 1, 0.5), (1, 2, 1.0)]);
    }

    #[test]
    fn neighbors_excludes_self_loop() {
        let mut g = Graph::new(3);
        g.add_edge(0, 0, 1.0);
        g.add_edge(0, 2, 3.0);
        let n: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n, vec![(2, 3.0)]);
    }

    #[test]
    fn degree_sums_match_two_m() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(3, 3, 0.5);
        let degree_sum: f64 = (0..4).map(|i| g.degree(i)).sum();
        assert!((degree_sum - 2.0 * g.total_weight()).abs() < 1e-12);
    }
}
