//! Partition-quality metrics: modularity, component and label helpers.

use std::collections::HashMap;

use crate::Graph;

/// Newman–Girvan modularity of a partition, in `[-1/2, 1]`.
///
/// Uses the community form `Q = Σ_C [Σ_in(C)/(2m) − (Σ_tot(C)/(2m))²]`,
/// where `Σ_in(C)` counts intra-community adjacency in both directions
/// (self-loops twice), `Σ_tot(C)` is the summed weighted degree and `m` the
/// total edge weight.
///
/// Returns `0.0` for an edgeless graph (no structure to measure).
///
/// # Panics
///
/// Panics if `partition.len() != graph.num_nodes()`.
pub fn modularity(graph: &Graph, partition: &[usize]) -> f64 {
    assert_eq!(
        partition.len(),
        graph.num_nodes(),
        "partition must label every node"
    );
    let m = graph.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let two_m = 2.0 * m;
    let mut internal: HashMap<usize, f64> = HashMap::new();
    let mut total: HashMap<usize, f64> = HashMap::new();
    for node in 0..graph.num_nodes() {
        let c = partition[node];
        *total.entry(c).or_insert(0.0) += graph.degree(node);
        *internal.entry(c).or_insert(0.0) += 2.0 * graph.loop_weight(node);
        for (neighbor, w) in graph.neighbors(node) {
            if partition[neighbor] == c {
                // Each intra edge is visited from both endpoints, which
                // yields the required double counting.
                *internal.entry(c).or_insert(0.0) += w;
            }
        }
    }
    let mut q = 0.0;
    for (c, &tot) in &total {
        let inn = internal.get(c).copied().unwrap_or(0.0);
        q += inn / two_m - (tot / two_m) * (tot / two_m);
    }
    q
}

/// Number of distinct labels in a partition.
pub fn partition_count(partition: &[usize]) -> usize {
    let mut labels: Vec<usize> = partition.to_vec();
    labels.sort_unstable();
    labels.dedup();
    labels.len()
}

/// Renumbers partition labels to the dense range `0..k`, preserving the
/// order of first appearance.
pub fn compact_labels(partition: &[usize]) -> Vec<usize> {
    let mut mapping = HashMap::new();
    let mut next = 0;
    partition
        .iter()
        .map(|&label| {
            *mapping.entry(label).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

/// Connected components of the graph; returns a dense component label per
/// node (isolated nodes form their own components).
pub fn connected_components(graph: &Graph) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        labels[start] = next;
        while let Some(node) = stack.pop() {
            for (neighbor, _) in graph.neighbors(node) {
                if labels[neighbor] == usize::MAX {
                    labels[neighbor] = next;
                    stack.push(neighbor);
                }
            }
        }
        next += 1;
    }
    labels
}

/// For each partition group, the ground-truth label held by the relative
/// majority of its members (ties resolve to the smallest label for
/// determinism). Returns a map from partition label to majority truth
/// label.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn majority_labels(partition: &[usize], truth: &[usize]) -> HashMap<usize, usize> {
    assert_eq!(
        partition.len(),
        truth.len(),
        "label slices differ in length"
    );
    let mut counts: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for (&p, &t) in partition.iter().zip(truth) {
        *counts.entry(p).or_default().entry(t).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(p, label_counts)| {
            let majority = label_counts
                .into_iter()
                .max_by_key(|&(label, count)| (count, std::cmp::Reverse(label)))
                .map(|(label, _)| label)
                .expect("group is non-empty");
            (p, majority)
        })
        .collect()
}

/// The paper's misclassification fraction (§4.3): the fraction of clients
/// that ended up in a partition whose relative majority belongs to a
/// different ground-truth cluster.
///
/// Returns `0.0` for empty input.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn misclassification_fraction(partition: &[usize], truth: &[usize]) -> f64 {
    if partition.is_empty() {
        return 0.0;
    }
    let majorities = majority_labels(partition, truth);
    let misclassified = partition
        .iter()
        .zip(truth)
        .filter(|&(p, t)| majorities[p] != *t)
        .count();
    misclassified as f64 / partition.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint triangles.
    fn two_triangles() -> Graph {
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 1.0);
        }
        g
    }

    #[test]
    fn modularity_of_perfect_split_is_half() {
        // Two disconnected communities of equal weight: Q = 1/2.
        let g = two_triangles();
        let q = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        assert!((q - 0.5).abs() < 1e-9, "expected 0.5, got {q}");
    }

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = two_triangles();
        let q = modularity(&g, &[0; 6]);
        assert!(q.abs() < 1e-9);
    }

    #[test]
    fn modularity_of_singletons_is_negative() {
        let g = two_triangles();
        let q = modularity(&g, &[0, 1, 2, 3, 4, 5]);
        assert!(q < 0.0);
    }

    #[test]
    fn modularity_bounds_hold() {
        let g = two_triangles();
        for partition in [
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 1, 0, 1, 0, 1],
            vec![0, 0, 1, 1, 2, 2],
        ] {
            let q = modularity(&g, &partition);
            assert!((-0.5..=1.0).contains(&q), "q = {q} out of bounds");
        }
    }

    #[test]
    fn modularity_of_edgeless_graph_is_zero() {
        let g = Graph::new(3);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn modularity_with_self_loop_matches_hand_computation() {
        // One edge (0,1,w=1) and a self-loop at 2 (w=1): m = 2.
        // Partition all separate: k = [1, 1, 2].
        // Q = (0/4 - (1/4)^2) * 2 + (2/4 - (2/4)^2) = -2/16 + 1/4 = 0.125.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 2, 1.0);
        let q = modularity(&g, &[0, 1, 2]);
        assert!((q - 0.125).abs() < 1e-9, "got {q}");
    }

    #[test]
    #[should_panic(expected = "every node")]
    fn modularity_rejects_short_partition() {
        let g = two_triangles();
        modularity(&g, &[0, 0]);
    }

    #[test]
    fn partition_count_counts_distinct() {
        assert_eq!(partition_count(&[3, 3, 7, 1]), 3);
        assert_eq!(partition_count(&[]), 0);
    }

    #[test]
    fn compact_labels_preserves_structure() {
        let compact = compact_labels(&[9, 4, 9, 2]);
        assert_eq!(compact, vec![0, 1, 0, 2]);
    }

    #[test]
    fn connected_components_of_two_triangles() {
        let g = two_triangles();
        let comps = connected_components(&g);
        assert_eq!(comps[0], comps[1]);
        assert_eq!(comps[0], comps[2]);
        assert_eq!(comps[3], comps[4]);
        assert_ne!(comps[0], comps[3]);
        assert_eq!(partition_count(&comps), 2);
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let comps = connected_components(&g);
        assert_eq!(comps[0], comps[1]);
        assert_ne!(comps[0], comps[2]);
    }

    #[test]
    fn majority_labels_finds_relative_majority() {
        let partition = [0, 0, 0, 1, 1];
        let truth = [7, 7, 8, 9, 9];
        let majorities = majority_labels(&partition, &truth);
        assert_eq!(majorities[&0], 7);
        assert_eq!(majorities[&1], 9);
    }

    #[test]
    fn misclassification_fraction_perfect_partition() {
        let partition = [0, 0, 1, 1];
        let truth = [5, 5, 6, 6];
        assert_eq!(misclassification_fraction(&partition, &truth), 0.0);
    }

    #[test]
    fn misclassification_fraction_counts_minority_members() {
        // Group 0 = {A, A, B}: B is misclassified. Group 1 = {B}: fine.
        let partition = [0, 0, 0, 1];
        let truth = [0, 0, 1, 1];
        assert!((misclassification_fraction(&partition, &truth) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn misclassification_fraction_empty_is_zero() {
        assert_eq!(misclassification_fraction(&[], &[]), 0.0);
    }

    #[test]
    fn misclassification_merged_clusters_penalised() {
        // All clients in one partition but two ground-truth clusters of
        // unequal size: the minority cluster is fully misclassified.
        let partition = [0, 0, 0, 0, 0];
        let truth = [1, 1, 1, 2, 2];
        assert!((misclassification_fraction(&partition, &truth) - 0.4).abs() < 1e-9);
    }
}
