//! The Louvain community-detection algorithm (Blondel et al., 2008).

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{compact_labels, Graph};

/// Detects communities by greedy modularity optimisation.
///
/// Implements the standard two-phase Louvain loop: local moving of nodes
/// between neighbouring communities until no single move improves
/// modularity, then aggregation of communities into super-nodes, repeated
/// until the partition stabilises. Node visit order is shuffled with `rng`,
/// so results are deterministic for a fixed seed.
///
/// Returns one dense community label per node. Isolated nodes end up in
/// singleton communities.
///
/// # Example
///
/// ```
/// use dagfl_graphs::{louvain, Graph};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 5.0);
/// g.add_edge(2, 3, 5.0);
/// let labels = louvain(&g, &mut StdRng::seed_from_u64(0));
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn louvain<R: Rng>(graph: &Graph, rng: &mut R) -> Vec<usize> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    // node -> community in the original graph.
    let mut membership: Vec<usize> = (0..n).collect();
    let mut working = graph.clone();
    loop {
        let local = one_level(&working, rng);
        let compact = compact_labels(&local);
        let communities = compact.iter().copied().max().map_or(0, |m| m + 1);
        // Map original nodes through this level's assignment.
        for label in membership.iter_mut() {
            *label = compact[*label];
        }
        if communities == working.num_nodes() {
            // No merge happened at this level; we are done.
            return compact_labels(&membership);
        }
        working = aggregate(&working, &compact, communities);
    }
}

/// Phase 1: move nodes greedily between neighbouring communities until no
/// move yields a positive modularity gain. Returns the community per node.
fn one_level<R: Rng>(graph: &Graph, rng: &mut R) -> Vec<usize> {
    let n = graph.num_nodes();
    let m = graph.total_weight();
    let mut community: Vec<usize> = (0..n).collect();
    // Σ_tot per community (sum of weighted degrees of members).
    let mut sigma_tot: Vec<f64> = (0..n).map(|i| graph.degree(i)).collect();
    if m <= 0.0 {
        return community;
    }
    let two_m = 2.0 * m;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut improved = true;
    while improved {
        improved = false;
        for &node in &order {
            let k_i = graph.degree(node);
            let current = community[node];
            // Sum of edge weights from `node` into each neighbouring
            // community.
            let mut links: HashMap<usize, f64> = HashMap::new();
            for (neighbor, w) in graph.neighbors(node) {
                *links.entry(community[neighbor]).or_insert(0.0) += w;
            }
            // Remove the node from its community.
            sigma_tot[current] -= k_i;
            let w_current = links.get(&current).copied().unwrap_or(0.0);
            // Best candidate: gain of inserting into community C is
            // proportional to w_(node->C) - Σ_tot(C) * k_i / 2m.
            let mut best_community = current;
            let mut best_gain = w_current - sigma_tot[current] * k_i / two_m;
            // Deterministic iteration order over candidates.
            let mut candidates: Vec<(usize, f64)> = links.into_iter().collect();
            candidates.sort_by_key(|&(c, _)| c);
            for (c, w) in candidates {
                if c == current {
                    continue;
                }
                let gain = w - sigma_tot[c] * k_i / two_m;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_community = c;
                }
            }
            sigma_tot[best_community] += k_i;
            if best_community != current {
                community[node] = best_community;
                improved = true;
            }
        }
    }
    community
}

/// Phase 2: build the condensed graph whose nodes are the communities.
fn aggregate(graph: &Graph, community: &[usize], communities: usize) -> Graph {
    let mut out = Graph::new(communities);
    for node in 0..graph.num_nodes() {
        let c = community[node];
        if graph.loop_weight(node) > 0.0 {
            out.add_edge(c, c, graph.loop_weight(node));
        }
        for (neighbor, w) in graph.neighbors(node) {
            // Visit each undirected edge once.
            if neighbor > node {
                out.add_edge(c, community[neighbor], w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{modularity, partition_count};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Zachary's karate club (34 nodes, 78 edges) — the canonical community
    /// detection benchmark.
    pub(crate) fn karate_club() -> Graph {
        const EDGES: [(usize, usize); 78] = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (0, 7),
            (0, 8),
            (0, 10),
            (0, 11),
            (0, 12),
            (0, 13),
            (0, 17),
            (0, 19),
            (0, 21),
            (0, 31),
            (1, 2),
            (1, 3),
            (1, 7),
            (1, 13),
            (1, 17),
            (1, 19),
            (1, 21),
            (1, 30),
            (2, 3),
            (2, 7),
            (2, 8),
            (2, 9),
            (2, 13),
            (2, 27),
            (2, 28),
            (2, 32),
            (3, 7),
            (3, 12),
            (3, 13),
            (4, 6),
            (4, 10),
            (5, 6),
            (5, 10),
            (5, 16),
            (6, 16),
            (8, 30),
            (8, 32),
            (8, 33),
            (9, 33),
            (13, 33),
            (14, 32),
            (14, 33),
            (15, 32),
            (15, 33),
            (18, 32),
            (18, 33),
            (19, 33),
            (20, 32),
            (20, 33),
            (22, 32),
            (22, 33),
            (23, 25),
            (23, 27),
            (23, 29),
            (23, 32),
            (23, 33),
            (24, 25),
            (24, 27),
            (24, 31),
            (25, 31),
            (26, 29),
            (26, 33),
            (27, 33),
            (28, 31),
            (28, 33),
            (29, 32),
            (29, 33),
            (30, 32),
            (30, 33),
            (31, 32),
            (31, 33),
            (32, 33),
        ];
        let mut g = Graph::new(34);
        for (a, b) in EDGES {
            g.add_edge(a, b, 1.0);
        }
        g
    }

    #[test]
    fn separates_disconnected_cliques() {
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 1.0);
        }
        let labels = louvain(&g, &mut StdRng::seed_from_u64(1));
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn karate_club_modularity_matches_literature() {
        let g = karate_club();
        let labels = louvain(&g, &mut StdRng::seed_from_u64(0));
        let q = modularity(&g, &labels);
        // Louvain on the karate club reaches Q ≈ 0.41–0.42.
        assert!(q > 0.38, "modularity {q} below expected range");
        let k = partition_count(&labels);
        assert!((2..=6).contains(&k), "unexpected community count {k}");
    }

    #[test]
    fn karate_club_is_stable_across_seeds() {
        let g = karate_club();
        for seed in 0..5 {
            let labels = louvain(&g, &mut StdRng::seed_from_u64(seed));
            let q = modularity(&g, &labels);
            assert!(q > 0.35, "seed {seed} produced weak modularity {q}");
        }
    }

    #[test]
    fn empty_graph_yields_empty_partition() {
        let g = Graph::new(0);
        assert!(louvain(&g, &mut StdRng::seed_from_u64(0)).is_empty());
    }

    #[test]
    fn edgeless_graph_yields_singletons() {
        let g = Graph::new(4);
        let labels = louvain(&g, &mut StdRng::seed_from_u64(0));
        assert_eq!(partition_count(&labels), 4);
    }

    #[test]
    fn single_edge_merges_endpoints() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let labels = louvain(&g, &mut StdRng::seed_from_u64(0));
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn weighted_edges_dominate_partitioning() {
        // A path 0-1-2-3 where the middle edge is weak.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 0.1);
        g.add_edge(2, 3, 10.0);
        let labels = louvain(&g, &mut StdRng::seed_from_u64(0));
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn louvain_never_decreases_modularity_vs_singletons() {
        let g = karate_club();
        let singletons: Vec<usize> = (0..g.num_nodes()).collect();
        let q0 = modularity(&g, &singletons);
        let labels = louvain(&g, &mut StdRng::seed_from_u64(3));
        let q1 = modularity(&g, &labels);
        assert!(q1 >= q0);
    }

    #[test]
    fn labels_are_dense() {
        let g = karate_club();
        let labels = louvain(&g, &mut StdRng::seed_from_u64(0));
        let k = partition_count(&labels);
        assert!(labels.iter().all(|&l| l < k));
    }
}
