//! Graph metrics for measuring implicit specialization.
//!
//! The paper quantifies cluster formation in the DAG through a derived
//! *client graph* `G_clients` (edge weight = number of mutual approvals
//! between two clients) and three metrics on it (§4.3):
//!
//! * **modularity** of the Louvain partition ([`modularity`]),
//! * the **number of partitions** found by Louvain ([`louvain`]),
//! * the **misclassification fraction** against the ground-truth clusters
//!   ([`misclassification_fraction`]).
//!
//! This crate implements the weighted undirected [`Graph`], Newman–Girvan
//! [`modularity`], the Louvain algorithm (Blondel et al.) and partition
//! helpers, validated against hand-computed examples and Zachary's karate
//! club.
//!
//! # Example
//!
//! ```
//! use dagfl_graphs::{louvain, modularity, Graph};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Two triangles joined by a single weak edge.
//! let mut g = Graph::new(6);
//! for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     g.add_edge(a, b, 1.0);
//! }
//! g.add_edge(2, 3, 0.1);
//! let partition = louvain(&g, &mut StdRng::seed_from_u64(0));
//! assert_eq!(partition[0], partition[1]);
//! assert_ne!(partition[0], partition[5]);
//! assert!(modularity(&g, &partition) > 0.4);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod graph;
mod louvain;
mod metrics;

pub use graph::Graph;
pub use louvain::louvain;
pub use metrics::{
    compact_labels, connected_components, majority_labels, misclassification_fraction, modularity,
    partition_count,
};
