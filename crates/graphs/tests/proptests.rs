//! Property-based tests for graph metrics.

use dagfl_graphs::{
    compact_labels, connected_components, louvain, misclassification_fraction, modularity,
    partition_count, Graph,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2..=max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 0.1f64..5.0), 0..max_edges).prop_map(move |edges| {
            let mut g = Graph::new(n);
            for (a, b, w) in edges {
                g.add_edge(a, b, w);
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn modularity_within_bounds(g in arbitrary_graph(12, 30), seed in any::<u64>()) {
        let labels = louvain(&g, &mut StdRng::seed_from_u64(seed));
        let q = modularity(&g, &labels);
        prop_assert!((-0.5 - 1e-9..=1.0 + 1e-9).contains(&q), "q = {q}");
    }

    #[test]
    fn louvain_beats_or_matches_singletons(g in arbitrary_graph(12, 30), seed in any::<u64>()) {
        let singletons: Vec<usize> = (0..g.num_nodes()).collect();
        let labels = louvain(&g, &mut StdRng::seed_from_u64(seed));
        prop_assert!(modularity(&g, &labels) >= modularity(&g, &singletons) - 1e-9);
    }

    #[test]
    fn louvain_labels_are_dense(g in arbitrary_graph(12, 30), seed in any::<u64>()) {
        let labels = louvain(&g, &mut StdRng::seed_from_u64(seed));
        let k = partition_count(&labels);
        prop_assert!(labels.iter().all(|&l| l < k));
    }

    #[test]
    fn louvain_never_splits_connected_components_apart(
        g in arbitrary_graph(10, 20),
        seed in any::<u64>(),
    ) {
        // Every Louvain community must live inside one connected component:
        // nodes without any connection cannot gain modularity together.
        let comps = connected_components(&g);
        let labels = louvain(&g, &mut StdRng::seed_from_u64(seed));
        for i in 0..g.num_nodes() {
            for j in 0..g.num_nodes() {
                if labels[i] == labels[j] {
                    prop_assert_eq!(comps[i], comps[j]);
                }
            }
        }
    }

    #[test]
    fn compact_labels_is_idempotent(labels in proptest::collection::vec(0usize..20, 0..40)) {
        let once = compact_labels(&labels);
        let twice = compact_labels(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn compact_preserves_equality_structure(labels in proptest::collection::vec(0usize..20, 1..40)) {
        let compact = compact_labels(&labels);
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                prop_assert_eq!(labels[i] == labels[j], compact[i] == compact[j]);
            }
        }
    }

    #[test]
    fn misclassification_in_unit_range(
        labels in proptest::collection::vec(0usize..5, 1..30),
        truth in proptest::collection::vec(0usize..5, 1..30),
    ) {
        let n = labels.len().min(truth.len());
        let frac = misclassification_fraction(&labels[..n], &truth[..n]);
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn perfect_partition_has_zero_misclassification(
        truth in proptest::collection::vec(0usize..5, 1..30),
    ) {
        // Using the truth itself as partition: majority of every group is
        // its own label.
        prop_assert_eq!(misclassification_fraction(&truth, &truth), 0.0);
    }

    #[test]
    fn components_count_decreases_with_added_edges(g in arbitrary_graph(10, 15)) {
        let before = partition_count(&connected_components(&g));
        let mut g2 = g.clone();
        g2.add_edge(0, g.num_nodes() - 1, 1.0);
        let after = partition_count(&connected_components(&g2));
        prop_assert!(after <= before);
    }
}
