//! Property test: any well-formed scenario survives the file round-trip
//! (`Scenario` → TOML text → `Scenario`) bit-for-bit.

use proptest::prelude::*;

use dagfl_core::{
    AsyncConfig, ComputeProfile, DagConfig, DelayModel, Normalization, StaleTipPolicy, TipSelector,
};
use dagfl_scenario::{AttackSpec, DatasetSpec, ExecutionSpec, Scenario};

#[allow(clippy::too_many_arguments)]
fn build_scenario(
    kind: u8,
    clients: usize,
    samples: usize,
    seed: u64,
    mode: u8,
    selector_kind: u8,
    alpha: f32,
    dynamic: bool,
    rounds: usize,
    cpr: usize,
    batches: usize,
    lr: f32,
    attack_on: bool,
    fraction: f64,
    track: usize,
    window: usize,
    delay_kind: u8,
    delay: f64,
    policy_kind: u8,
    compute_kind: u8,
) -> Scenario {
    let dataset = match kind {
        0 => DatasetSpec::Fmnist {
            clients,
            samples,
            relaxation: (alpha / 200.0).min(0.9),
            seed,
        },
        1 => DatasetSpec::FmnistAuthor {
            clients,
            samples,
            seed,
        },
        2 => DatasetSpec::Poets {
            clients_per_language: clients,
            samples,
            seq_len: 12,
            seed,
        },
        3 => DatasetSpec::Cifar {
            clients,
            samples,
            seed,
        },
        _ => DatasetSpec::FedProx {
            clients,
            min_samples: samples,
            max_samples: samples + 50,
            seed,
        },
    };
    let normalization = if dynamic {
        Normalization::Dynamic
    } else {
        Normalization::Simple
    };
    let tip_selector = match selector_kind {
        0 => TipSelector::Accuracy {
            alpha,
            normalization,
        },
        1 => TipSelector::Random,
        _ => TipSelector::CumulativeWeight { alpha },
    };
    let dag = DagConfig {
        rounds,
        clients_per_round: cpr.min(dataset.num_clients()),
        local_batches: batches,
        learning_rate: lr,
        tip_selector,
        seed,
        ..DagConfig::default()
    };
    let rounds_mode = mode == 0;
    let execution = if rounds_mode {
        ExecutionSpec::Rounds(dag)
    } else {
        let delay_model = match delay_kind {
            0 => DelayModel::Constant { delay },
            1 => DelayModel::UniformJitter {
                base: delay,
                jitter: delay / 2.0,
            },
            _ => DelayModel::Cohorts {
                slow_fraction: fraction.min(1.0),
                fast: delay,
                slow: delay * 4.0,
                jitter: 0.5,
            },
        };
        let stale_policy = match policy_kind {
            0 => StaleTipPolicy::PublishAnyway,
            1 => StaleTipPolicy::Reselect,
            _ => StaleTipPolicy::Discard,
        };
        let compute = match compute_kind {
            0 => ComputeProfile::Uniform,
            1 => ComputeProfile::TwoSpeed {
                slow_fraction: fraction.min(1.0),
                slowdown: 4.0,
            },
            _ => ComputeProfile::MatchNetworkCohort { slowdown: 2.5 },
        };
        ExecutionSpec::Async {
            config: AsyncConfig {
                dag,
                total_activations: rounds * cpr.max(1),
                mean_interarrival: delay.max(0.1),
                delay: delay_model,
                compute,
                train_time: delay / 4.0,
                stale_policy,
                gossip_fanout: 0,
                workers: usize::from(policy_kind) + 1,
            },
            transport: Default::default(),
        }
    };
    let mut scenario = Scenario::new("generated", dataset).with_execution(execution);
    if rounds_mode && attack_on {
        scenario = scenario.with_attack(AttackSpec {
            fraction,
            clean_rounds: rounds,
            attack_rounds: rounds.max(1),
            class_a: 3,
            class_b: 8,
            measure_every: track.max(1),
        });
    } else if rounds_mode && track > 0 {
        scenario = scenario.tracking(track);
    }
    if window % 2 == 0 {
        scenario = scenario.with_csv(format!("series_{window}"));
    }
    scenario.with_recent_window(window)
}

proptest! {
    #[test]
    fn any_scenario_survives_the_file_round_trip(
        (kind, clients, samples, seed) in (0u8..5, 1usize..30, 10usize..120, 0u64..1_000_000),
        (mode, selector_kind, alpha, dynamic) in (0u8..2, 0u8..3, 0.01f32..150.0, any::<bool>()),
        (rounds, cpr, batches, lr) in (1usize..60, 1usize..12, 1usize..20, 0.001f32..1.0),
        (attack_on, fraction, track, window) in (any::<bool>(), 0.0f64..1.0, 0usize..6, 1usize..60),
        (delay_kind, delay, policy_kind, compute_kind) in (0u8..3, 0.1f64..10.0, 0u8..3, 0u8..3),
    ) {
        let scenario = build_scenario(
            kind, clients, samples, seed, mode, selector_kind, alpha, dynamic, rounds, cpr,
            batches, lr, attack_on, fraction, track, window, delay_kind, delay, policy_kind,
            compute_kind,
        );
        let text = scenario.to_toml();
        let reparsed = Scenario::from_toml(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&scenario, &reparsed, "{}", text);
        // Serialization is a pure function of the value: a second lap
        // produces byte-identical text.
        prop_assert_eq!(reparsed.to_toml(), text);
    }
}
