//! The **declarative scenario layer**: one spec to build, validate, run,
//! and report any Specializing-DAG experiment.
//!
//! The paper's evaluation is one algorithm under many conditions —
//! Table 1 hyperparameter rows, tip-selector ablations, poisoning
//! attacks, asynchronous deployments. This crate makes each such
//! condition *data* instead of hand-wired code:
//!
//! * [`Scenario`] — a complete experiment as a value: dataset
//!   ([`DatasetSpec`]), model architecture ([`ModelSpec`]), execution
//!   mode ([`ExecutionSpec`]: rounds or async, with the full core
//!   config), optional poisoning attack ([`AttackSpec`]), optional
//!   specialization analytics ([`AnalysisSpec`], driving
//!   [`dagfl_analysis`]) and output options ([`OutputSpec`]), with a
//!   fluent builder and a single [`Scenario::validate`].
//! * **Text round-trip** — [`Scenario::to_toml`] /
//!   [`Scenario::from_toml`] serialize scenarios through a
//!   dependency-free TOML subset, so experiments live in version
//!   control as `scenarios/*.toml` files.
//! * [`ScenarioRunner`] — consumes a scenario, builds the dataset and
//!   model factory, drives the right simulator behind the core
//!   [`ExecutionMode`](dagfl_core::ExecutionMode) trait and returns a
//!   structured [`RunReport`] (specialization metrics, tangle stats,
//!   async throughput and poisoning summaries, optional CSV).
//! * **Presets** — [`Scenario::preset`] resolves the paper's
//!   experiments by name (`"table1-fmnist"`, `"fig06-alpha10"`,
//!   `"poisoning-p0.2"`, `"async-cohorts"`, ...) at quick or full
//!   [`Scale`].
//! * **Sweeps** — [`SweepSpec`] expands a base scenario over typed
//!   parameter axes (`execution.alpha = [0.1, 1, 10, 100]`,
//!   `replicate = 0..5`) into a validated grid; [`SweepRunner`] executes
//!   the cells on a worker pool and aggregates a [`SweepReport`] with a
//!   scheduling-independent comparison CSV. Sweep files
//!   (`scenarios/sweep-*.toml`) run with `dagfl sweep <file>`.
//!
//! A paper experiment is therefore runnable three equivalent ways — by
//! preset name, from a checked-in `.toml` file (`dagfl run --scenario`),
//! or through the builder API — and all three meet in the same
//! validation and runner code.
//!
//! # Example
//!
//! ```
//! use dagfl_scenario::{Scenario, ScenarioRunner};
//!
//! // By preset name...
//! let scenario = Scenario::preset("smoke")?;
//! // ...which is the same experiment as this file:
//! let from_file = Scenario::from_toml(&scenario.to_toml())?;
//! assert_eq!(scenario, from_file);
//!
//! let report = ScenarioRunner::new(scenario)?.run()?;
//! assert_eq!(report.progress, 2);
//! println!("{}", report.summary());
//! # Ok::<(), dagfl_scenario::ScenarioError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod presets;
mod runner;
mod spec;
mod sweep;
pub mod text;

pub use presets::{Scale, PRESET_NAMES};
pub use runner::{DatasetSummary, PoisoningSummary, RunReport, ScenarioRunner};
pub use spec::{
    AnalysisSpec, AttackSpec, DatasetSpec, ExecutionSpec, FaultSpec, ModelSpec, OutputSpec,
    Scenario, ScenarioError, TransportSpec,
};
pub use sweep::{
    is_sweep_toml, SweepAxis, SweepBase, SweepCell, SweepCellReport, SweepField, SweepReport,
    SweepRunner, SweepSpec, SWEEP_PRESET_NAMES,
};
