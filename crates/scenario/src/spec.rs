//! The declarative experiment specification: [`Scenario`] and its parts.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

use rand::rngs::StdRng;

use dagfl_analysis::{AnalysisConfig, AnalysisSource, KSelection};
use dagfl_core::{
    AsyncConfig, ComputeProfile, CoreError, CrashWindow, DagConfig, DelayModel, FaultPlan,
    ModelFactory, Normalization, PartitionWindow, PublishGate, StaleTipPolicy, TipSelector,
};
use dagfl_datasets::{
    cifar100_like, fedprox_synthetic, fmnist_by_author, fmnist_clustered,
    fmnist_clustered_streamed, poets, Cifar100Config, FedProxConfig, FederatedDataset,
    FmnistConfig, PoetsConfig, POETS_VOCAB,
};
use dagfl_nn::{CharRnn, Dense, MatmulBackendKind, Model, Relu, Sequential};

use crate::text::{format_f32, format_f64, Document, Table, Value};

/// Errors from building, parsing, validating or running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The scenario text is malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A key holds a value of the wrong type or an unknown word.
    InvalidValue {
        /// Dotted key path (`section.key`).
        key: String,
        /// The offending value, formatted for display.
        value: String,
        /// What was expected instead.
        expected: String,
    },
    /// A section contains a key the schema does not know.
    UnknownKey {
        /// Dotted key path (`section.key`).
        key: String,
    },
    /// A required key is missing.
    MissingKey {
        /// Dotted key path (`section.key`).
        key: String,
    },
    /// The scenario is structurally valid but semantically inconsistent.
    Invalid(String),
    /// No preset is registered under this name.
    UnknownPreset(String),
    /// A configuration value failed the core range checks.
    Core(CoreError),
    /// Reading or writing a scenario file failed.
    Io(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse { line, message } => {
                write!(f, "scenario parse error on line {line}: {message}")
            }
            ScenarioError::InvalidValue {
                key,
                value,
                expected,
            } => write!(
                f,
                "invalid value `{value}` for `{key}`: expected {expected}"
            ),
            ScenarioError::UnknownKey { key } => write!(f, "unknown scenario key `{key}`"),
            ScenarioError::MissingKey { key } => write!(f, "missing scenario key `{key}`"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::UnknownPreset(name) => {
                write!(f, "unknown preset `{name}` (see `dagfl scenarios`)")
            }
            ScenarioError::Core(e) => write!(f, "invalid scenario: {e}"),
            ScenarioError::Io(msg) => write!(f, "scenario I/O error: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<CoreError> for ScenarioError {
    fn from(e: CoreError) -> Self {
        ScenarioError::Core(e)
    }
}

/// The federated dataset of a scenario, with its generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSpec {
    /// Strictly or relaxed clustered synthetic digits (3 class-clusters).
    Fmnist {
        /// Number of clients.
        clients: usize,
        /// Samples per client.
        samples: usize,
        /// Fraction of foreign-cluster data (`0.0` = strict clusters).
        relaxation: f32,
        /// Generator seed.
        seed: u64,
    },
    /// Clustered synthetic digits rendered from *independent per-client
    /// RNG streams* on multiple threads (bit-identical for any thread
    /// count) — the only generator that builds 10k-client populations
    /// in reasonable time.
    FmnistStreamed {
        /// Number of clients.
        clients: usize,
        /// Samples per client.
        samples: usize,
        /// Fraction of foreign-cluster data (`0.0` = strict clusters).
        relaxation: f32,
        /// Generator seed.
        seed: u64,
    },
    /// By-author digit split (all classes per client; poisoning and
    /// scalability experiments).
    FmnistAuthor {
        /// Number of clients.
        clients: usize,
        /// Samples per client.
        samples: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Two-language next-character prediction (2 clusters).
    Poets {
        /// Clients per language (total clients = 2×this).
        clients_per_language: usize,
        /// Character windows per client.
        samples: usize,
        /// Window length in characters.
        seq_len: usize,
        /// Generator seed.
        seed: u64,
    },
    /// 100-class / 20-superclass hierarchy with Pachinko allocation.
    Cifar {
        /// Number of clients.
        clients: usize,
        /// Samples per client.
        samples: usize,
        /// Generator seed.
        seed: u64,
    },
    /// The FedProx synthetic(0.5, 0.5) logistic-regression benchmark.
    FedProx {
        /// Number of clients.
        clients: usize,
        /// Minimum samples per client.
        min_samples: usize,
        /// Maximum samples per client.
        max_samples: usize,
        /// Generator seed.
        seed: u64,
    },
}

/// Worker threads used to render streamed datasets. Generation is
/// bit-identical for any thread count, so the machine's core count is
/// purely a wall-clock choice (capped: rendering saturates memory
/// bandwidth long before 8 threads).
fn rendering_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

impl DatasetSpec {
    /// The `kind` word used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            DatasetSpec::Fmnist { .. } => "fmnist",
            DatasetSpec::FmnistStreamed { .. } => "fmnist-streamed",
            DatasetSpec::FmnistAuthor { .. } => "fmnist-author",
            DatasetSpec::Poets { .. } => "poets",
            DatasetSpec::Cifar { .. } => "cifar",
            DatasetSpec::FedProx { .. } => "fedprox",
        }
    }

    /// Total clients the generated dataset will hold.
    pub fn num_clients(&self) -> usize {
        match *self {
            DatasetSpec::Fmnist { clients, .. }
            | DatasetSpec::FmnistStreamed { clients, .. }
            | DatasetSpec::FmnistAuthor { clients, .. }
            | DatasetSpec::Cifar { clients, .. }
            | DatasetSpec::FedProx { clients, .. } => clients,
            DatasetSpec::Poets {
                clients_per_language,
                ..
            } => clients_per_language * 2,
        }
    }

    /// Output classes of the task (vocabulary size for Poets).
    pub fn num_classes(&self) -> usize {
        match self {
            DatasetSpec::Fmnist { .. }
            | DatasetSpec::FmnistStreamed { .. }
            | DatasetSpec::FmnistAuthor { .. } => 10,
            DatasetSpec::Poets { .. } => POETS_VOCAB.len(),
            DatasetSpec::Cifar { .. } => 100,
            DatasetSpec::FedProx { .. } => 10,
        }
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        match *self {
            DatasetSpec::Fmnist { seed, .. }
            | DatasetSpec::FmnistStreamed { seed, .. }
            | DatasetSpec::FmnistAuthor { seed, .. }
            | DatasetSpec::Poets { seed, .. }
            | DatasetSpec::Cifar { seed, .. }
            | DatasetSpec::FedProx { seed, .. } => seed,
        }
    }

    /// Sets the generator seed.
    pub fn set_seed(&mut self, new_seed: u64) {
        match self {
            DatasetSpec::Fmnist { seed, .. }
            | DatasetSpec::FmnistStreamed { seed, .. }
            | DatasetSpec::FmnistAuthor { seed, .. }
            | DatasetSpec::Poets { seed, .. }
            | DatasetSpec::Cifar { seed, .. }
            | DatasetSpec::FedProx { seed, .. } => *seed = new_seed,
        }
    }

    /// Generates the dataset.
    pub fn build(&self) -> FederatedDataset {
        match *self {
            DatasetSpec::Fmnist {
                clients,
                samples,
                relaxation,
                seed,
            } => fmnist_clustered(&FmnistConfig {
                num_clients: clients,
                samples_per_client: samples,
                relaxation,
                seed,
                ..FmnistConfig::default()
            }),
            DatasetSpec::FmnistStreamed {
                clients,
                samples,
                relaxation,
                seed,
            } => fmnist_clustered_streamed(
                &FmnistConfig {
                    num_clients: clients,
                    samples_per_client: samples,
                    relaxation,
                    seed,
                    ..FmnistConfig::default()
                },
                rendering_threads(),
            ),
            DatasetSpec::FmnistAuthor {
                clients,
                samples,
                seed,
            } => fmnist_by_author(&FmnistConfig {
                num_clients: clients,
                samples_per_client: samples,
                seed,
                ..FmnistConfig::default()
            }),
            DatasetSpec::Poets {
                clients_per_language,
                samples,
                seq_len,
                seed,
            } => poets(&PoetsConfig {
                clients_per_language,
                samples_per_client: samples,
                seq_len,
                seed,
            }),
            DatasetSpec::Cifar {
                clients,
                samples,
                seed,
            } => cifar100_like(&Cifar100Config {
                num_clients: clients,
                samples_per_client: samples,
                seed,
                ..Cifar100Config::default()
            }),
            DatasetSpec::FedProx {
                clients,
                min_samples,
                max_samples,
                seed,
            } => fedprox_synthetic(&FedProxConfig {
                num_clients: clients,
                min_samples,
                max_samples,
                seed,
                ..FedProxConfig::default()
            }),
        }
    }

    /// The model architecture conventionally paired with this dataset.
    pub fn default_model(&self) -> ModelSpec {
        match self {
            DatasetSpec::Fmnist { .. }
            | DatasetSpec::FmnistStreamed { .. }
            | DatasetSpec::FmnistAuthor { .. } => ModelSpec::Mlp { hidden: vec![64] },
            DatasetSpec::Poets { .. } => ModelSpec::CharRnn {
                embed: 8,
                hidden: 32,
            },
            DatasetSpec::Cifar { .. } => ModelSpec::Mlp { hidden: vec![128] },
            DatasetSpec::FedProx { .. } => ModelSpec::Linear,
        }
    }
}

/// The model architecture every participant trains.
///
/// Input and output widths are inferred from the dataset at build time,
/// so one spec works across dataset sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A ReLU multi-layer perceptron with the given hidden widths (an
    /// empty list degenerates to [`ModelSpec::Linear`]).
    Mlp {
        /// Hidden-layer widths, input to output.
        hidden: Vec<usize>,
    },
    /// A single dense layer (logistic regression).
    Linear,
    /// Embedding → GRU → dense next-character model (Poets).
    CharRnn {
        /// Embedding dimension.
        embed: usize,
        /// GRU hidden width.
        hidden: usize,
    },
}

impl ModelSpec {
    /// The `kind` word used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            ModelSpec::Mlp { .. } => "mlp",
            ModelSpec::Linear => "linear",
            ModelSpec::CharRnn { .. } => "char-rnn",
        }
    }

    /// Builds the shared [`ModelFactory`] for a dataset with the given
    /// feature and class widths.
    ///
    /// This is the one place in the workspace that turns an architecture
    /// description into `Arc::new(move |rng| ...)` — every harness,
    /// example and test goes through it.
    pub fn build_factory(&self, features: usize, classes: usize) -> ModelFactory {
        match self {
            ModelSpec::Mlp { hidden } => {
                let hidden = hidden.clone();
                Arc::new(move |rng: &mut StdRng| {
                    let mut layers: Vec<Box<dyn dagfl_nn::Layer>> = Vec::new();
                    let mut width = features;
                    for &h in &hidden {
                        layers.push(Box::new(Dense::new(rng, width, h)));
                        layers.push(Box::new(Relu::new()));
                        width = h;
                    }
                    layers.push(Box::new(Dense::new(rng, width, classes)));
                    Box::new(Sequential::new(layers)) as Box<dyn Model>
                })
            }
            ModelSpec::Linear => Arc::new(move |rng: &mut StdRng| {
                Box::new(Sequential::new(vec![Box::new(Dense::new(
                    rng, features, classes,
                ))])) as Box<dyn Model>
            }),
            ModelSpec::CharRnn { embed, hidden } => {
                let (embed, hidden) = (*embed, *hidden);
                Arc::new(move |rng: &mut StdRng| {
                    Box::new(CharRnn::new(rng, classes, embed, hidden)) as Box<dyn Model>
                })
            }
        }
    }
}

/// How the gossip of an asynchronous execution travels between
/// clients (`transport = ...` in scenario files).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportSpec {
    /// Deterministic in-process delivery: messages travel through
    /// [`dagfl_core::LoopbackTransport`] with sampled link delays.
    #[default]
    Loopback,
    /// Real TCP gossip between `dagfl peer` processes. The scenario
    /// runner refuses to execute these in-process — the spec exists so
    /// one file can describe a networked experiment end to end.
    Tcp {
        /// Tracker address (`host:port`) the peers register with.
        tracker: String,
        /// Gossip listen port of the first peer (0 = ephemeral;
        /// subsequent peers use consecutive ports).
        port: u16,
    },
}

impl TransportSpec {
    /// The `transport` word used in scenario files.
    pub fn mode(&self) -> &'static str {
        match self {
            TransportSpec::Loopback => "loopback",
            TransportSpec::Tcp { .. } => "tcp",
        }
    }
}

/// How the scenario is executed: the paper's comparison rounds or the
/// round-free event-driven deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionSpec {
    /// Discrete rounds (§5.3), driven by [`dagfl_core::Simulation`].
    Rounds(DagConfig),
    /// Event-driven asynchronous execution (§5.3.3), driven by
    /// [`dagfl_core::AsyncSimulation`] over the chosen transport.
    Async {
        /// The event-driven simulation's configuration.
        config: AsyncConfig,
        /// How inter-client messages travel.
        transport: TransportSpec,
    },
}

impl ExecutionSpec {
    /// The `mode` word used in scenario files.
    pub fn mode(&self) -> &'static str {
        match self {
            ExecutionSpec::Rounds(_) => "rounds",
            ExecutionSpec::Async { .. } => "async",
        }
    }

    /// The embedded DAG configuration (hyperparameters, tip selection,
    /// seed).
    pub fn dag(&self) -> &DagConfig {
        match self {
            ExecutionSpec::Rounds(dag) => dag,
            ExecutionSpec::Async { config, .. } => &config.dag,
        }
    }

    /// Mutable access to the embedded DAG configuration.
    pub fn dag_mut(&mut self) -> &mut DagConfig {
        match self {
            ExecutionSpec::Rounds(dag) => dag,
            ExecutionSpec::Async { config, .. } => &mut config.dag,
        }
    }
}

/// A flipped-label poisoning attack rider (§5.3.4): train clean, flip
/// labels `class_a ↔ class_b` for a fraction of clients, keep training
/// and measure containment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackSpec {
    /// Fraction of clients whose labels are flipped.
    pub fraction: f64,
    /// Clean warm-up rounds before the attack.
    pub clean_rounds: usize,
    /// Rounds after the labels are flipped.
    pub attack_rounds: usize,
    /// First flipped class.
    pub class_a: usize,
    /// Second flipped class.
    pub class_b: usize,
    /// Measure the poisoning metrics every this many attack rounds.
    pub measure_every: usize,
}

impl Default for AttackSpec {
    fn default() -> Self {
        Self {
            fraction: 0.2,
            clean_rounds: 100,
            attack_rounds: 100,
            class_a: 3,
            class_b: 8,
            measure_every: 5,
        }
    }
}

/// Output options: optional CSV series and analysis cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSpec {
    /// Write the per-round (or per-activation) series as
    /// `<results dir>/<csv>.csv` (`DAGFL_RESULTS`, default `results/`).
    pub csv: Option<String>,
    /// Record the specialization metrics every this many rounds
    /// (`0` = only at the end; rounds mode without attack only).
    pub track_every: usize,
    /// Window (in client evaluations) for the report's recent-accuracy
    /// summary.
    pub recent_window: usize,
}

impl Default for OutputSpec {
    fn default() -> Self {
        Self {
            csv: None,
            track_every: 0,
            recent_window: 30,
        }
    }
}

/// A complete experiment as a value: dataset, model, execution mode,
/// optional attack and output options.
///
/// Scenarios are built three equivalent ways — the fluent builder, a
/// preset name ([`Scenario::preset`]), or a TOML file
/// ([`Scenario::from_toml`]) — and run by a
/// [`ScenarioRunner`](crate::ScenarioRunner).
///
/// # Example
///
/// ```
/// use dagfl_scenario::{DatasetSpec, Scenario, ScenarioRunner};
///
/// let scenario = Scenario::new(
///     "tiny-demo",
///     DatasetSpec::Fmnist {
///         clients: 4,
///         samples: 30,
///         relaxation: 0.0,
///         seed: 42,
///     },
/// )
/// .rounds(2)
/// .clients_per_round(2)
/// .local_batches(2);
/// // The same experiment, as a file:
/// let reparsed = Scenario::from_toml(&scenario.to_toml()).unwrap();
/// assert_eq!(scenario, reparsed);
/// let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
/// assert_eq!(report.progress, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (one line; used in reports and preset listings).
    pub name: String,
    /// The federated dataset.
    pub dataset: DatasetSpec,
    /// The model architecture.
    pub model: ModelSpec,
    /// The execution mode with its full configuration.
    pub execution: ExecutionSpec,
    /// The matmul backend every client model trains on (serialized as
    /// `matmul_backend` in `[execution]`, written only when non-default).
    /// Backends are bit-identical, so this is purely a speed knob.
    pub matmul_backend: MatmulBackendKind,
    /// Optional flipped-label poisoning attack (rounds mode only).
    pub attack: Option<AttackSpec>,
    /// Optional deterministic fault injection (async loopback only).
    pub faults: Option<FaultSpec>,
    /// Optional specialization analytics (rounds mode without attack).
    pub analysis: Option<AnalysisSpec>,
    /// Output options.
    pub output: OutputSpec,
}

/// Deterministic fault-injection settings: the scenario-file projection
/// of [`dagfl_core::FaultPlan`], restricted to a single partition
/// window and a single crash window so it fits the flat `[faults]`
/// TOML section. Probabilities default to 0 and `delay_boost` to 1, so
/// an empty `[faults]` section is inert.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability that a gossiped envelope is silently lost.
    pub drop: f64,
    /// Probability that an envelope is delivered twice.
    pub duplicate: f64,
    /// Probability that an envelope is held behind later sends.
    pub reorder: f64,
    /// Probability of an extra latency spike without reordering.
    pub extra_delay: f64,
    /// Magnitude (logical time) of the delay-based faults.
    pub delay_boost: f64,
    /// Optional partition window as `(start, heal, split)`: peers
    /// `0..split` are cut off from `split..n` while it is open.
    pub partition: Option<(f64, f64, usize)>,
    /// Optional crash window as `(peer, at, restart)`; an absent
    /// `crash_restart` key means the peer never comes back.
    pub crash: Option<(usize, f64, f64)>,
}

/// Specialization-analytics settings: the scenario-file projection of
/// [`dagfl_analysis::AnalysisConfig`] plus a cadence. An empty
/// `[analysis]` section enables the default auto-k analysis over both
/// views at the final round only.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisSpec {
    /// Master toggle, so a checked-in `[analysis]` section can be
    /// switched off without deleting it.
    pub enabled: bool,
    /// Fixed cluster count for parameter-space k-means; `None` selects
    /// k by silhouette sweep over `k_min..=k_max`.
    pub k: Option<usize>,
    /// Lower bound of the auto-k silhouette sweep (ignored with `k`).
    pub k_min: usize,
    /// Upper bound of the auto-k silhouette sweep (ignored with `k`).
    pub k_max: usize,
    /// Analyse every this many rounds (`0` = only at the end).
    pub cadence: usize,
    /// Which view(s) to cluster: parameter space, the approval graph,
    /// or both.
    pub source: AnalysisSource,
}

impl Default for AnalysisSpec {
    fn default() -> Self {
        Self {
            enabled: true,
            k: None,
            k_min: 2,
            k_max: 6,
            cadence: 0,
            source: AnalysisSource::Both,
        }
    }
}

impl AnalysisSpec {
    /// Expands into the [`AnalysisConfig`] consumed by
    /// [`dagfl_analysis::analyze`], seeding k-means from the
    /// simulation's master seed.
    pub fn to_config(&self, seed: u64) -> AnalysisConfig {
        AnalysisConfig {
            k: match self.k {
                Some(k) => KSelection::Fixed(k),
                None => KSelection::Auto {
                    min: self.k_min,
                    max: self.k_max,
                },
            },
            source: self.source,
            seed,
        }
    }
}

impl FaultSpec {
    /// Expands into the core [`FaultPlan`] consumed by
    /// [`dagfl_core::FaultyTransport`].
    pub fn to_plan(&self) -> FaultPlan {
        FaultPlan {
            drop: self.drop,
            duplicate: self.duplicate,
            reorder: self.reorder,
            extra_delay: self.extra_delay,
            delay_boost: self.delay_boost,
            partitions: self
                .partition
                .iter()
                .map(|&(start, heal, split)| PartitionWindow { start, heal, split })
                .collect(),
            crashes: self
                .crash
                .iter()
                .map(|&(peer, at, restart)| CrashWindow { peer, at, restart })
                .collect(),
        }
    }
}

impl Scenario {
    /// Starts a scenario over `dataset` with the conventional model for
    /// that dataset, round-based execution at the core defaults (with
    /// `clients_per_round` clamped to the dataset size), no attack and
    /// default output options.
    pub fn new(name: impl Into<String>, dataset: DatasetSpec) -> Self {
        let dag = DagConfig {
            clients_per_round: DagConfig::default()
                .clients_per_round
                .min(dataset.num_clients().max(1)),
            ..DagConfig::default()
        };
        Self {
            name: name.into(),
            model: dataset.default_model(),
            execution: ExecutionSpec::Rounds(dag),
            matmul_backend: MatmulBackendKind::default(),
            attack: None,
            faults: None,
            analysis: None,
            output: OutputSpec::default(),
            dataset,
        }
    }

    /// Replaces the model architecture (builder style).
    pub fn with_model(mut self, model: ModelSpec) -> Self {
        self.model = model;
        self
    }

    /// Replaces the whole execution spec (builder style).
    pub fn with_execution(mut self, execution: ExecutionSpec) -> Self {
        self.execution = execution;
        self
    }

    /// Selects the matmul backend client models train on (builder style).
    pub fn with_matmul_backend(mut self, backend: MatmulBackendKind) -> Self {
        self.matmul_backend = backend;
        self
    }

    /// Switches to asynchronous execution with the given configuration
    /// over the loopback transport (builder style).
    pub fn asynchronous(mut self, config: AsyncConfig) -> Self {
        self.execution = ExecutionSpec::Async {
            config,
            transport: TransportSpec::default(),
        };
        self
    }

    /// Replaces the async transport (builder style; a no-op in rounds
    /// mode, which has no message transport).
    pub fn with_transport(mut self, spec: TransportSpec) -> Self {
        if let ExecutionSpec::Async { transport, .. } = &mut self.execution {
            *transport = spec;
        }
        self
    }

    /// Sets the round budget (rounds mode) — a no-op for async
    /// scenarios, whose budget is `total_activations`.
    pub fn rounds(mut self, rounds: usize) -> Self {
        if let ExecutionSpec::Rounds(dag) = &mut self.execution {
            dag.rounds = rounds;
        }
        self
    }

    /// Sets the number of concurrently active clients per round.
    pub fn clients_per_round(mut self, n: usize) -> Self {
        self.execution.dag_mut().clients_per_round = n;
        self
    }

    /// Sets the local mini-batches per epoch.
    pub fn local_batches(mut self, n: usize) -> Self {
        self.execution.dag_mut().local_batches = n;
        self
    }

    /// Sets the tip selector.
    pub fn with_selector(mut self, selector: TipSelector) -> Self {
        self.execution.dag_mut().tip_selector = selector;
        self
    }

    /// Sets one master seed for both the dataset generator and the
    /// simulation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.dataset.set_seed(seed);
        self.execution.dag_mut().seed = seed;
        self
    }

    /// Attaches a poisoning attack (builder style; rounds mode only).
    pub fn with_attack(mut self, attack: AttackSpec) -> Self {
        self.attack = Some(attack);
        self
    }

    /// Attaches deterministic fault injection (builder style; async
    /// loopback only).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches specialization analytics (builder style; rounds mode
    /// without attack only).
    pub fn with_analysis(mut self, analysis: AnalysisSpec) -> Self {
        self.analysis = Some(analysis);
        self
    }

    /// Requests a CSV series under the results directory (builder
    /// style).
    pub fn with_csv(mut self, name: impl Into<String>) -> Self {
        self.output.csv = Some(name.into());
        self
    }

    /// Records specialization metrics every `every` rounds (builder
    /// style; rounds mode without attack only).
    pub fn tracking(mut self, every: usize) -> Self {
        self.output.track_every = every;
        self
    }

    /// Sets the recent-accuracy window of the report (builder style).
    pub fn with_recent_window(mut self, window: usize) -> Self {
        self.output.recent_window = window;
        self
    }

    /// Checks the complete spec: dataset parameters, model/dataset
    /// compatibility, the embedded core configuration (via
    /// [`DagConfig::validate`] / [`AsyncConfig::validate`]), attack
    /// consistency and output options.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.trim().is_empty() || self.name.contains('\n') {
            return Err(ScenarioError::Invalid(
                "name must be a non-empty single line".into(),
            ));
        }
        self.validate_dataset()?;
        self.validate_model()?;
        match &self.execution {
            ExecutionSpec::Rounds(dag) => {
                dag.validate()?;
                if dag.clients_per_round > self.dataset.num_clients() {
                    return Err(ScenarioError::Invalid(format!(
                        "clients_per_round ({}) exceeds the dataset's {} clients",
                        dag.clients_per_round,
                        self.dataset.num_clients()
                    )));
                }
                if self.faults.is_some() {
                    return Err(ScenarioError::Invalid(
                        "fault injection requires async mode".into(),
                    ));
                }
            }
            ExecutionSpec::Async { config, transport } => {
                config.validate()?;
                if self.attack.is_some() {
                    return Err(ScenarioError::Invalid(
                        "poisoning attacks require rounds mode".into(),
                    ));
                }
                if self.output.track_every > 0 {
                    return Err(ScenarioError::Invalid(
                        "specialization tracking requires rounds mode".into(),
                    ));
                }
                if self.analysis.as_ref().is_some_and(|a| a.enabled) {
                    return Err(ScenarioError::Invalid(
                        "specialization analytics require rounds mode".into(),
                    ));
                }
                if let TransportSpec::Tcp { tracker, .. } = transport {
                    if !tracker.contains(':') || tracker.trim().is_empty() {
                        return Err(ScenarioError::Invalid(format!(
                            "transport.tracker (`{tracker}`) must be a host:port address"
                        )));
                    }
                }
                if let Some(faults) = &self.faults {
                    if !matches!(transport, TransportSpec::Loopback) {
                        return Err(ScenarioError::Invalid(
                            "[faults] applies to the loopback transport; networked peers \
                             experience real faults instead"
                                .into(),
                        ));
                    }
                    faults.to_plan().validate().map_err(ScenarioError::Core)?;
                }
            }
        }
        if let Some(attack) = &self.attack {
            if !(attack.fraction.is_finite() && (0.0..=1.0).contains(&attack.fraction)) {
                return Err(ScenarioError::Invalid(format!(
                    "attack.fraction ({}) must be in [0, 1]",
                    attack.fraction
                )));
            }
            if attack.attack_rounds == 0 || attack.measure_every == 0 {
                return Err(ScenarioError::Invalid(
                    "attack.attack_rounds and attack.measure_every must be at least 1".into(),
                ));
            }
            let classes = self.dataset.num_classes();
            if attack.class_a == attack.class_b
                || attack.class_a >= classes
                || attack.class_b >= classes
            {
                return Err(ScenarioError::Invalid(format!(
                    "attack classes ({}, {}) must be distinct and below {classes}",
                    attack.class_a, attack.class_b
                )));
            }
            if self.output.track_every > 0 {
                return Err(ScenarioError::Invalid(
                    "specialization tracking is not supported together with an attack".into(),
                ));
            }
            if self.analysis.as_ref().is_some_and(|a| a.enabled) {
                return Err(ScenarioError::Invalid(
                    "specialization analytics are not supported together with an attack".into(),
                ));
            }
        }
        if let Some(analysis) = &self.analysis {
            if let Some(k) = analysis.k {
                if k == 0 {
                    return Err(ScenarioError::Invalid(
                        "analysis.k must be at least 1".into(),
                    ));
                }
            } else if analysis.k_min < 1 || analysis.k_min > analysis.k_max {
                return Err(ScenarioError::Invalid(format!(
                    "analysis.k_min ({}) must be at least 1 and at most k_max ({})",
                    analysis.k_min, analysis.k_max
                )));
            }
        }
        if self.output.recent_window == 0 {
            return Err(ScenarioError::Invalid(
                "output.recent_window must be at least 1".into(),
            ));
        }
        Ok(())
    }

    fn validate_dataset(&self) -> Result<(), ScenarioError> {
        let err = |msg: String| Err(ScenarioError::Invalid(msg));
        match self.dataset {
            DatasetSpec::Fmnist {
                clients,
                samples,
                relaxation,
                ..
            }
            | DatasetSpec::FmnistStreamed {
                clients,
                samples,
                relaxation,
                ..
            } => {
                if clients == 0 || samples == 0 {
                    return err("dataset clients and samples must be at least 1".into());
                }
                if !(relaxation.is_finite() && (0.0..1.0).contains(&relaxation)) {
                    return err(format!(
                        "dataset.relaxation ({relaxation}) must be in [0, 1)"
                    ));
                }
            }
            DatasetSpec::FmnistAuthor {
                clients, samples, ..
            }
            | DatasetSpec::Cifar {
                clients, samples, ..
            } => {
                if clients == 0 || samples == 0 {
                    return err("dataset clients and samples must be at least 1".into());
                }
            }
            DatasetSpec::Poets {
                clients_per_language,
                samples,
                seq_len,
                ..
            } => {
                if clients_per_language == 0 || samples == 0 || seq_len == 0 {
                    return err(
                        "dataset clients_per_language, samples and seq_len must be at least 1"
                            .into(),
                    );
                }
            }
            DatasetSpec::FedProx {
                clients,
                min_samples,
                max_samples,
                ..
            } => {
                if clients == 0 || min_samples == 0 {
                    return err("dataset clients and min_samples must be at least 1".into());
                }
                if min_samples > max_samples {
                    return err(format!(
                        "dataset.min_samples ({min_samples}) exceeds max_samples ({max_samples})"
                    ));
                }
            }
        }
        Ok(())
    }

    fn validate_model(&self) -> Result<(), ScenarioError> {
        match &self.model {
            ModelSpec::Mlp { hidden } => {
                if hidden.contains(&0) {
                    return Err(ScenarioError::Invalid(
                        "model.hidden widths must be at least 1".into(),
                    ));
                }
            }
            ModelSpec::Linear => {}
            ModelSpec::CharRnn { embed, hidden } => {
                if *embed == 0 || *hidden == 0 {
                    return Err(ScenarioError::Invalid(
                        "model.embed and model.hidden must be at least 1".into(),
                    ));
                }
            }
        }
        let is_sequence = matches!(self.dataset, DatasetSpec::Poets { .. });
        let is_rnn = matches!(self.model, ModelSpec::CharRnn { .. });
        if is_sequence != is_rnn {
            return Err(ScenarioError::Invalid(format!(
                "model `{}` does not fit dataset `{}`: the poets dataset needs `char-rnn` \
                 (token sequences), every other dataset needs `mlp` or `linear`",
                self.model.kind(),
                self.dataset.kind()
            )));
        }
        Ok(())
    }

    /// Builds the model factory for this scenario's dataset dimensions,
    /// with every produced model switched to the scenario's matmul
    /// backend.
    pub fn build_factory(&self, dataset: &FederatedDataset) -> ModelFactory {
        let inner = self
            .model
            .build_factory(dataset.feature_len(), dataset.num_classes());
        let backend = self.matmul_backend;
        Arc::new(move |rng: &mut StdRng| {
            let mut model = inner(rng);
            model.set_matmul_backend(backend);
            model
        })
    }

    /// Serializes the scenario as TOML-subset text; the exact inverse of
    /// [`Scenario::from_toml`].
    pub fn to_toml(&self) -> String {
        let mut doc = Document::default();
        doc.root.set("name", Value::Str(self.name.clone()));
        write_dataset(doc.section_mut("dataset"), &self.dataset);
        write_model(doc.section_mut("model"), &self.model);
        write_execution(doc.section_mut("execution"), &self.execution);
        if self.matmul_backend != MatmulBackendKind::default() {
            doc.section_mut("execution").set(
                "matmul_backend",
                Value::Str(self.matmul_backend.name().to_string()),
            );
        }
        if let Some(attack) = &self.attack {
            write_attack(doc.section_mut("attack"), attack);
        }
        if let Some(faults) = &self.faults {
            write_faults(doc.section_mut("faults"), faults);
        }
        if let Some(analysis) = &self.analysis {
            write_analysis(doc.section_mut("analysis"), analysis);
        }
        write_output(doc.section_mut("output"), &self.output);
        doc.to_text()
    }

    /// Parses a scenario from TOML-subset text. Unknown sections or keys
    /// are errors, so typos surface instead of silently running a
    /// different experiment. The result is *not* yet validated — call
    /// [`Scenario::validate`] (or hand it to
    /// [`ScenarioRunner::new`](crate::ScenarioRunner::new), which does).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the first problem.
    pub fn from_toml(text: &str) -> Result<Self, ScenarioError> {
        let doc = Document::parse(text).map_err(|e| ScenarioError::Parse {
            line: e.line,
            message: e.message,
        })?;
        for section in doc.section_names() {
            if !matches!(
                section,
                "dataset" | "model" | "execution" | "attack" | "faults" | "analysis" | "output"
            ) {
                return Err(ScenarioError::UnknownKey {
                    key: format!("[{section}]"),
                });
            }
        }
        let root = Reader::new("", Some(&doc.root));
        let name = root.req_str("name")?;
        root.finish()?;
        let dataset_reader = Reader::new("dataset", doc.section("dataset"));
        let dataset = read_dataset(&dataset_reader)?;
        dataset_reader.finish()?;
        let model = match doc.section("model") {
            Some(table) => {
                let reader = Reader::new("model", Some(table));
                let model = read_model(&reader)?;
                reader.finish()?;
                model
            }
            None => dataset.default_model(),
        };
        let (execution, matmul_backend) = match doc.section("execution") {
            Some(table) => {
                let reader = Reader::new("execution", Some(table));
                let execution = read_execution(&reader, &dataset)?;
                let matmul_backend = match reader.str("matmul_backend")? {
                    Some(name) => MatmulBackendKind::parse(&name).ok_or_else(|| {
                        ScenarioError::InvalidValue {
                            key: reader.path("matmul_backend"),
                            value: name.clone(),
                            expected: "naive or tiled".into(),
                        }
                    })?,
                    None => MatmulBackendKind::default(),
                };
                reader.finish()?;
                (execution, matmul_backend)
            }
            None => (
                Scenario::new("", dataset.clone()).execution,
                MatmulBackendKind::default(),
            ),
        };
        let attack = match doc.section("attack") {
            Some(table) => {
                let reader = Reader::new("attack", Some(table));
                let attack = read_attack(&reader)?;
                reader.finish()?;
                Some(attack)
            }
            None => None,
        };
        let faults = match doc.section("faults") {
            Some(table) => {
                let reader = Reader::new("faults", Some(table));
                let faults = read_faults(&reader)?;
                reader.finish()?;
                Some(faults)
            }
            None => None,
        };
        let analysis = match doc.section("analysis") {
            Some(table) => {
                let reader = Reader::new("analysis", Some(table));
                let analysis = read_analysis(&reader)?;
                reader.finish()?;
                Some(analysis)
            }
            None => None,
        };
        let output = match doc.section("output") {
            Some(table) => {
                let reader = Reader::new("output", Some(table));
                let output = read_output(&reader)?;
                reader.finish()?;
                output
            }
            None => OutputSpec::default(),
        };
        Ok(Scenario {
            name,
            dataset,
            model,
            execution,
            matmul_backend,
            attack,
            faults,
            analysis,
            output,
        })
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] on read failures and parse errors
    /// otherwise.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("reading {}: {e}", path.display())))?;
        Self::from_toml(&text)
    }

    /// Writes the scenario as a TOML file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] on write failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ScenarioError::Io(format!("creating {}: {e}", parent.display())))?;
        }
        std::fs::write(path, self.to_toml())
            .map_err(|e| ScenarioError::Io(format!("writing {}: {e}", path.display())))
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn usize_value(v: usize) -> Value {
    Value::Number(v.to_string())
}

fn u64_value(v: u64) -> Value {
    Value::Number(v.to_string())
}

fn f32_value(v: f32) -> Value {
    Value::Number(format_f32(v))
}

fn f64_value(v: f64) -> Value {
    Value::Number(format_f64(v))
}

fn write_dataset(table: &mut Table, dataset: &DatasetSpec) {
    table.set("kind", Value::Str(dataset.kind().into()));
    match *dataset {
        DatasetSpec::Fmnist {
            clients,
            samples,
            relaxation,
            seed,
        }
        | DatasetSpec::FmnistStreamed {
            clients,
            samples,
            relaxation,
            seed,
        } => {
            table.set("clients", usize_value(clients));
            table.set("samples", usize_value(samples));
            table.set("relaxation", f32_value(relaxation));
            table.set("seed", u64_value(seed));
        }
        DatasetSpec::FmnistAuthor {
            clients,
            samples,
            seed,
        }
        | DatasetSpec::Cifar {
            clients,
            samples,
            seed,
        } => {
            table.set("clients", usize_value(clients));
            table.set("samples", usize_value(samples));
            table.set("seed", u64_value(seed));
        }
        DatasetSpec::Poets {
            clients_per_language,
            samples,
            seq_len,
            seed,
        } => {
            table.set("clients_per_language", usize_value(clients_per_language));
            table.set("samples", usize_value(samples));
            table.set("seq_len", usize_value(seq_len));
            table.set("seed", u64_value(seed));
        }
        DatasetSpec::FedProx {
            clients,
            min_samples,
            max_samples,
            seed,
        } => {
            table.set("clients", usize_value(clients));
            table.set("min_samples", usize_value(min_samples));
            table.set("max_samples", usize_value(max_samples));
            table.set("seed", u64_value(seed));
        }
    }
}

fn write_model(table: &mut Table, model: &ModelSpec) {
    table.set("kind", Value::Str(model.kind().into()));
    match model {
        ModelSpec::Mlp { hidden } => {
            table.set(
                "hidden",
                Value::NumberList(hidden.iter().map(|h| h.to_string()).collect()),
            );
        }
        ModelSpec::Linear => {}
        ModelSpec::CharRnn { embed, hidden } => {
            table.set("embed", usize_value(*embed));
            table.set("hidden", usize_value(*hidden));
        }
    }
}

fn write_dag(table: &mut Table, dag: &DagConfig) {
    table.set("rounds", usize_value(dag.rounds));
    table.set("clients_per_round", usize_value(dag.clients_per_round));
    table.set("local_epochs", usize_value(dag.local_epochs));
    table.set("local_batches", usize_value(dag.local_batches));
    table.set("batch_size", usize_value(dag.batch_size));
    table.set("learning_rate", f32_value(dag.learning_rate));
    match dag.tip_selector {
        TipSelector::Accuracy {
            alpha,
            normalization,
        } => {
            table.set("selector", Value::Str("accuracy".into()));
            table.set("alpha", f32_value(alpha));
            table.set(
                "normalization",
                Value::Str(
                    match normalization {
                        Normalization::Simple => "simple",
                        Normalization::Dynamic => "dynamic",
                    }
                    .into(),
                ),
            );
        }
        TipSelector::Random => {
            table.set("selector", Value::Str("random".into()));
        }
        TipSelector::CumulativeWeight { alpha } => {
            table.set("selector", Value::Str("cumulative".into()));
            table.set("alpha", f32_value(alpha));
        }
    }
    table.set(
        "walk_depth_min",
        Value::Number(dag.walk_depth.0.to_string()),
    );
    table.set(
        "walk_depth_max",
        Value::Number(dag.walk_depth.1.to_string()),
    );
    if let Some(margin) = dag.walk_stop_margin {
        table.set("stop_margin", f32_value(margin));
    }
    table.set(
        "publish_gate",
        Value::Str(
            match dag.publish_gate {
                PublishGate::AveragedReference => "averaged",
                PublishGate::BestParent => "best-parent",
                PublishGate::Always => "always",
            }
            .into(),
        ),
    );
    table.set("frozen_prefix", usize_value(dag.frozen_prefix));
    table.set("publication_dropout", f32_value(dag.publication_dropout));
    table.set("seed", u64_value(dag.seed));
    table.set("parallel", Value::Bool(dag.parallel));
}

fn write_execution(table: &mut Table, execution: &ExecutionSpec) {
    table.set("mode", Value::Str(execution.mode().into()));
    write_dag(table, execution.dag());
    if let ExecutionSpec::Async { config, transport } = execution {
        table.set("transport", Value::Str(transport.mode().into()));
        if let TransportSpec::Tcp { tracker, port } = transport {
            table.set("tracker", Value::Str(tracker.clone()));
            table.set("port", Value::Number(port.to_string()));
        }
        table.set("activations", usize_value(config.total_activations));
        table.set("interarrival", f64_value(config.mean_interarrival));
        table.set("train_time", f64_value(config.train_time));
        if config.gossip_fanout != 0 {
            table.set("fanout", usize_value(config.gossip_fanout));
        }
        if config.workers != 1 {
            table.set("workers", usize_value(config.workers));
        }
        table.set(
            "stale_policy",
            Value::Str(
                match config.stale_policy {
                    StaleTipPolicy::PublishAnyway => "publish",
                    StaleTipPolicy::Reselect => "reselect",
                    StaleTipPolicy::Discard => "discard",
                }
                .into(),
            ),
        );
        match config.delay {
            DelayModel::Constant { delay } => {
                table.set("delay_model", Value::Str("constant".into()));
                table.set("delay", f64_value(delay));
            }
            DelayModel::UniformJitter { base, jitter } => {
                table.set("delay_model", Value::Str("jitter".into()));
                table.set("delay", f64_value(base));
                table.set("jitter", f64_value(jitter));
            }
            DelayModel::Cohorts {
                slow_fraction,
                fast,
                slow,
                jitter,
            } => {
                table.set("delay_model", Value::Str("cohorts".into()));
                table.set("delay", f64_value(fast));
                table.set("slow_delay", f64_value(slow));
                table.set("slow_fraction", f64_value(slow_fraction));
                table.set("jitter", f64_value(jitter));
            }
        }
        match config.compute {
            ComputeProfile::Uniform => {
                table.set("compute", Value::Str("uniform".into()));
            }
            ComputeProfile::TwoSpeed {
                slow_fraction,
                slowdown,
            } => {
                table.set("compute", Value::Str("two-speed".into()));
                table.set("compute_slow_fraction", f64_value(slow_fraction));
                table.set("slowdown", f64_value(slowdown));
            }
            ComputeProfile::MatchNetworkCohort { slowdown } => {
                table.set("compute", Value::Str("match-network".into()));
                table.set("slowdown", f64_value(slowdown));
            }
        }
    }
}

fn write_faults(table: &mut Table, faults: &FaultSpec) {
    table.set("drop", f64_value(faults.drop));
    table.set("duplicate", f64_value(faults.duplicate));
    table.set("reorder", f64_value(faults.reorder));
    table.set("extra_delay", f64_value(faults.extra_delay));
    table.set("delay_boost", f64_value(faults.delay_boost));
    if let Some((start, heal, split)) = faults.partition {
        table.set("partition_start", f64_value(start));
        table.set("partition_heal", f64_value(heal));
        table.set("partition_split", usize_value(split));
    }
    if let Some((peer, at, restart)) = faults.crash {
        table.set("crash_peer", usize_value(peer));
        table.set("crash_at", f64_value(at));
        if restart.is_finite() {
            table.set("crash_restart", f64_value(restart));
        }
    }
}

fn write_analysis(table: &mut Table, analysis: &AnalysisSpec) {
    if !analysis.enabled {
        table.set("enabled", Value::Bool(false));
    }
    if let Some(k) = analysis.k {
        table.set("k", usize_value(k));
    } else {
        table.set("k_min", usize_value(analysis.k_min));
        table.set("k_max", usize_value(analysis.k_max));
    }
    table.set("cadence", usize_value(analysis.cadence));
    table.set("source", Value::Str(analysis.source.as_str().into()));
}

fn write_attack(table: &mut Table, attack: &AttackSpec) {
    table.set("fraction", f64_value(attack.fraction));
    table.set("clean_rounds", usize_value(attack.clean_rounds));
    table.set("attack_rounds", usize_value(attack.attack_rounds));
    table.set("class_a", usize_value(attack.class_a));
    table.set("class_b", usize_value(attack.class_b));
    table.set("measure_every", usize_value(attack.measure_every));
}

fn write_output(table: &mut Table, output: &OutputSpec) {
    if let Some(csv) = &output.csv {
        table.set("csv", Value::Str(csv.clone()));
    }
    table.set("track_every", usize_value(output.track_every));
    table.set("recent_window", usize_value(output.recent_window));
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A typed view over one section that tracks which keys were consumed,
/// so leftovers are reported as unknown keys (shared with the sweep
/// parser in `sweep.rs`).
pub(crate) struct Reader<'a> {
    section: &'a str,
    table: Option<&'a Table>,
    used: std::cell::RefCell<BTreeSet<String>>,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(section: &'a str, table: Option<&'a Table>) -> Self {
        Self {
            section,
            table,
            used: std::cell::RefCell::new(BTreeSet::new()),
        }
    }

    pub(crate) fn path(&self, key: &str) -> String {
        if self.section.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.section)
        }
    }

    pub(crate) fn get(&self, key: &str) -> Option<&'a Value> {
        self.used.borrow_mut().insert(key.to_string());
        self.table.and_then(|t| t.get(key))
    }

    pub(crate) fn invalid(&self, key: &str, value: &Value, expected: &str) -> ScenarioError {
        ScenarioError::InvalidValue {
            key: self.path(key),
            value: match value {
                Value::Str(s) => s.clone(),
                Value::Number(n) => n.clone(),
                Value::Bool(b) => b.to_string(),
                Value::NumberList(items) => format!("[{}]", items.join(", ")),
                Value::Range(start, end) => format!("{start}..{end}"),
            },
            expected: expected.to_string(),
        }
    }

    pub(crate) fn str(&self, key: &str) -> Result<Option<String>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s.clone())),
            Some(other) => Err(self.invalid(key, other, "a quoted string")),
        }
    }

    pub(crate) fn req_str(&self, key: &str) -> Result<String, ScenarioError> {
        self.str(key)?.ok_or_else(|| ScenarioError::MissingKey {
            key: self.path(key),
        })
    }

    pub(crate) fn number<T: std::str::FromStr>(
        &self,
        key: &str,
        expected: &str,
    ) -> Result<Option<T>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(value @ Value::Number(raw)) => match raw.parse::<T>() {
                Ok(v) => Ok(Some(v)),
                Err(_) => Err(self.invalid(key, value, expected)),
            },
            Some(other) => Err(self.invalid(key, other, expected)),
        }
    }

    pub(crate) fn usize_or(&self, key: &str, default: usize) -> Result<usize, ScenarioError> {
        Ok(self
            .number::<usize>(key, "a non-negative integer")?
            .unwrap_or(default))
    }

    pub(crate) fn u64_or(&self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        Ok(self
            .number::<u64>(key, "a non-negative integer")?
            .unwrap_or(default))
    }

    pub(crate) fn u32_or(&self, key: &str, default: u32) -> Result<u32, ScenarioError> {
        Ok(self
            .number::<u32>(key, "a non-negative integer")?
            .unwrap_or(default))
    }

    pub(crate) fn f32_or(&self, key: &str, default: f32) -> Result<f32, ScenarioError> {
        Ok(self.number::<f32>(key, "a number")?.unwrap_or(default))
    }

    pub(crate) fn f32_opt(&self, key: &str) -> Result<Option<f32>, ScenarioError> {
        self.number::<f32>(key, "a number")
    }

    pub(crate) fn f64_or(&self, key: &str, default: f64) -> Result<f64, ScenarioError> {
        Ok(self.number::<f64>(key, "a number")?.unwrap_or(default))
    }

    pub(crate) fn bool_or(&self, key: &str, default: bool) -> Result<bool, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(Value::Bool(b)) => Ok(*b),
            Some(other) => Err(self.invalid(key, other, "true or false")),
        }
    }

    pub(crate) fn usize_list(&self, key: &str) -> Result<Option<Vec<usize>>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(value @ Value::NumberList(items)) => items
                .iter()
                .map(|raw| {
                    raw.parse::<usize>()
                        .map_err(|_| self.invalid(key, value, "an array of non-negative integers"))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
            Some(other) => Err(self.invalid(key, other, "an array of non-negative integers")),
        }
    }

    /// Errors on any key the schema never asked for.
    pub(crate) fn finish(&self) -> Result<(), ScenarioError> {
        if let Some(table) = self.table {
            let used = self.used.borrow();
            for (key, _) in table.iter() {
                if !used.contains(key) {
                    return Err(ScenarioError::UnknownKey {
                        key: self.path(key),
                    });
                }
            }
        }
        Ok(())
    }
}

fn read_dataset(reader: &Reader<'_>) -> Result<DatasetSpec, ScenarioError> {
    let kind = reader.req_str("kind")?;
    let seed = reader.u64_or("seed", 42)?;
    match kind.as_str() {
        "fmnist" => Ok(DatasetSpec::Fmnist {
            clients: reader.usize_or("clients", 15)?,
            samples: reader.usize_or("samples", 60)?,
            relaxation: reader.f32_or("relaxation", 0.0)?,
            seed,
        }),
        "fmnist-streamed" => Ok(DatasetSpec::FmnistStreamed {
            clients: reader.usize_or("clients", 15)?,
            samples: reader.usize_or("samples", 60)?,
            relaxation: reader.f32_or("relaxation", 0.0)?,
            seed,
        }),
        "fmnist-author" => Ok(DatasetSpec::FmnistAuthor {
            clients: reader.usize_or("clients", 12)?,
            samples: reader.usize_or("samples", 80)?,
            seed,
        }),
        "poets" => Ok(DatasetSpec::Poets {
            clients_per_language: reader.usize_or("clients_per_language", 6)?,
            samples: reader.usize_or("samples", 400)?,
            seq_len: reader.usize_or("seq_len", 12)?,
            seed,
        }),
        "cifar" => Ok(DatasetSpec::Cifar {
            clients: reader.usize_or("clients", 30)?,
            samples: reader.usize_or("samples", 60)?,
            seed,
        }),
        "fedprox" => Ok(DatasetSpec::FedProx {
            clients: reader.usize_or("clients", 30)?,
            min_samples: reader.usize_or("min_samples", 50)?,
            max_samples: reader.usize_or("max_samples", 200)?,
            seed,
        }),
        other => Err(ScenarioError::InvalidValue {
            key: "dataset.kind".into(),
            value: other.into(),
            expected: "one of fmnist, fmnist-streamed, fmnist-author, poets, cifar, fedprox".into(),
        }),
    }
}

fn read_model(reader: &Reader<'_>) -> Result<ModelSpec, ScenarioError> {
    let kind = reader.req_str("kind")?;
    match kind.as_str() {
        "mlp" => Ok(ModelSpec::Mlp {
            hidden: reader.usize_list("hidden")?.unwrap_or_else(|| vec![64]),
        }),
        "linear" => Ok(ModelSpec::Linear),
        "char-rnn" => Ok(ModelSpec::CharRnn {
            embed: reader.usize_or("embed", 8)?,
            hidden: reader.usize_or("hidden", 32)?,
        }),
        other => Err(ScenarioError::InvalidValue {
            key: "model.kind".into(),
            value: other.into(),
            expected: "one of mlp, linear, char-rnn".into(),
        }),
    }
}

fn read_dag(reader: &Reader<'_>, dataset: &DatasetSpec) -> Result<DagConfig, ScenarioError> {
    let defaults = DagConfig::default();
    let alpha = reader.f32_or("alpha", 10.0)?;
    let normalization = match reader.str("normalization")?.as_deref() {
        None | Some("simple") => Normalization::Simple,
        Some("dynamic") => Normalization::Dynamic,
        Some(other) => {
            return Err(ScenarioError::InvalidValue {
                key: reader.path("normalization"),
                value: other.into(),
                expected: "simple or dynamic".into(),
            })
        }
    };
    let tip_selector = match reader.str("selector")?.as_deref() {
        None | Some("accuracy") => TipSelector::Accuracy {
            alpha,
            normalization,
        },
        Some("random") => TipSelector::Random,
        Some("cumulative") => TipSelector::CumulativeWeight { alpha },
        Some(other) => {
            return Err(ScenarioError::InvalidValue {
                key: reader.path("selector"),
                value: other.into(),
                expected: "accuracy, random or cumulative".into(),
            })
        }
    };
    let publish_gate = match reader.str("publish_gate")?.as_deref() {
        None | Some("averaged") => PublishGate::AveragedReference,
        Some("best-parent") => PublishGate::BestParent,
        Some("always") => PublishGate::Always,
        Some(other) => {
            return Err(ScenarioError::InvalidValue {
                key: reader.path("publish_gate"),
                value: other.into(),
                expected: "averaged, best-parent or always".into(),
            })
        }
    };
    Ok(DagConfig {
        rounds: reader.usize_or("rounds", defaults.rounds)?,
        clients_per_round: reader.usize_or(
            "clients_per_round",
            defaults.clients_per_round.min(dataset.num_clients().max(1)),
        )?,
        local_epochs: reader.usize_or("local_epochs", defaults.local_epochs)?,
        local_batches: reader.usize_or("local_batches", defaults.local_batches)?,
        batch_size: reader.usize_or("batch_size", defaults.batch_size)?,
        learning_rate: reader.f32_or("learning_rate", defaults.learning_rate)?,
        tip_selector,
        walk_depth: (
            reader.u32_or("walk_depth_min", defaults.walk_depth.0)?,
            reader.u32_or("walk_depth_max", defaults.walk_depth.1)?,
        ),
        walk_stop_margin: reader.f32_opt("stop_margin")?,
        publish_gate,
        frozen_prefix: reader.usize_or("frozen_prefix", defaults.frozen_prefix)?,
        publication_dropout: reader.f32_or("publication_dropout", defaults.publication_dropout)?,
        seed: reader.u64_or("seed", defaults.seed)?,
        parallel: reader.bool_or("parallel", defaults.parallel)?,
    })
}

fn read_faults(reader: &Reader<'_>) -> Result<FaultSpec, ScenarioError> {
    let partition = match (
        reader.number::<f64>("partition_start", "a number")?,
        reader.number::<f64>("partition_heal", "a number")?,
        reader.number::<usize>("partition_split", "a non-negative integer")?,
    ) {
        (None, None, None) => None,
        (Some(start), Some(heal), Some(split)) => Some((start, heal, split)),
        _ => {
            return Err(ScenarioError::Invalid(format!(
                "`{}`, `{}` and `{}` must be given together",
                reader.path("partition_start"),
                reader.path("partition_heal"),
                reader.path("partition_split"),
            )))
        }
    };
    let crash = match (
        reader.number::<usize>("crash_peer", "a non-negative integer")?,
        reader.number::<f64>("crash_at", "a number")?,
        reader.number::<f64>("crash_restart", "a number")?,
    ) {
        (None, None, None) => None,
        (Some(peer), Some(at), restart) => Some((peer, at, restart.unwrap_or(f64::INFINITY))),
        _ => {
            return Err(ScenarioError::Invalid(format!(
                "`{}` and `{}` must be given together",
                reader.path("crash_peer"),
                reader.path("crash_at"),
            )))
        }
    };
    Ok(FaultSpec {
        drop: reader.f64_or("drop", 0.0)?,
        duplicate: reader.f64_or("duplicate", 0.0)?,
        reorder: reader.f64_or("reorder", 0.0)?,
        extra_delay: reader.f64_or("extra_delay", 0.0)?,
        delay_boost: reader.f64_or("delay_boost", 1.0)?,
        partition,
        crash,
    })
}

fn read_execution(
    reader: &Reader<'_>,
    dataset: &DatasetSpec,
) -> Result<ExecutionSpec, ScenarioError> {
    let mode = reader.str("mode")?.unwrap_or_else(|| "rounds".into());
    let dag = read_dag(reader, dataset)?;
    match mode.as_str() {
        "rounds" => Ok(ExecutionSpec::Rounds(dag)),
        "async" => {
            let defaults = AsyncConfig::default();
            let stale_policy = match reader.str("stale_policy")?.as_deref() {
                None | Some("publish") => StaleTipPolicy::PublishAnyway,
                Some("reselect") => StaleTipPolicy::Reselect,
                Some("discard") => StaleTipPolicy::Discard,
                Some(other) => {
                    return Err(ScenarioError::InvalidValue {
                        key: reader.path("stale_policy"),
                        value: other.into(),
                        expected: "publish, reselect or discard".into(),
                    })
                }
            };
            let base = reader.f64_or("delay", 2.0)?;
            let jitter = reader.f64_or("jitter", 0.0)?;
            let delay = match reader.str("delay_model")?.as_deref() {
                None | Some("constant") => DelayModel::Constant { delay: base },
                Some("jitter") => DelayModel::UniformJitter { base, jitter },
                Some("cohorts") => DelayModel::Cohorts {
                    slow_fraction: reader.f64_or("slow_fraction", 0.3)?,
                    fast: base,
                    slow: reader.f64_or("slow_delay", 8.0)?,
                    jitter,
                },
                Some(other) => {
                    return Err(ScenarioError::InvalidValue {
                        key: reader.path("delay_model"),
                        value: other.into(),
                        expected: "constant, jitter or cohorts".into(),
                    })
                }
            };
            let compute = match reader.str("compute")?.as_deref() {
                None | Some("uniform") => ComputeProfile::Uniform,
                Some("two-speed") => ComputeProfile::TwoSpeed {
                    slow_fraction: reader.f64_or("compute_slow_fraction", 0.3)?,
                    slowdown: reader.f64_or("slowdown", 4.0)?,
                },
                Some("match-network") => ComputeProfile::MatchNetworkCohort {
                    slowdown: reader.f64_or("slowdown", 4.0)?,
                },
                Some(other) => {
                    return Err(ScenarioError::InvalidValue {
                        key: reader.path("compute"),
                        value: other.into(),
                        expected: "uniform, two-speed or match-network".into(),
                    })
                }
            };
            let transport = read_transport(reader)?;
            Ok(ExecutionSpec::Async {
                config: AsyncConfig {
                    dag,
                    total_activations: reader
                        .usize_or("activations", defaults.total_activations)?,
                    mean_interarrival: reader.f64_or("interarrival", defaults.mean_interarrival)?,
                    delay,
                    compute,
                    train_time: reader.f64_or("train_time", defaults.train_time)?,
                    stale_policy,
                    gossip_fanout: reader.usize_or("fanout", defaults.gossip_fanout)?,
                    workers: reader.usize_or("workers", defaults.workers)?,
                },
                transport,
            })
        }
        other => Err(ScenarioError::InvalidValue {
            key: "execution.mode".into(),
            value: other.into(),
            expected: "rounds or async".into(),
        }),
    }
}

/// Reads `transport` / `tracker` / `port` from an async execution
/// section. The tcp-only keys are rejected explicitly under loopback,
/// so a file that forgets `transport = "tcp"` fails with a pointed
/// message instead of a generic unknown-key error.
fn read_transport(reader: &Reader<'_>) -> Result<TransportSpec, ScenarioError> {
    let mode = reader.str("transport")?;
    let tracker = reader.str("tracker")?;
    let port: Option<u16> = reader.number("port", "a port number (0-65535)")?;
    match mode.as_deref() {
        None | Some("loopback") => {
            if tracker.is_some() || port.is_some() {
                return Err(ScenarioError::Invalid(format!(
                    "`{}` and `{}` are only valid with transport = \"tcp\"",
                    reader.path("tracker"),
                    reader.path("port"),
                )));
            }
            Ok(TransportSpec::Loopback)
        }
        Some("tcp") => Ok(TransportSpec::Tcp {
            tracker: tracker.ok_or_else(|| ScenarioError::MissingKey {
                key: reader.path("tracker"),
            })?,
            port: port.unwrap_or(0),
        }),
        Some(other) => Err(ScenarioError::InvalidValue {
            key: reader.path("transport"),
            value: other.into(),
            expected: "loopback or tcp".into(),
        }),
    }
}

fn read_attack(reader: &Reader<'_>) -> Result<AttackSpec, ScenarioError> {
    let defaults = AttackSpec::default();
    Ok(AttackSpec {
        fraction: reader.f64_or("fraction", defaults.fraction)?,
        clean_rounds: reader.usize_or("clean_rounds", defaults.clean_rounds)?,
        attack_rounds: reader.usize_or("attack_rounds", defaults.attack_rounds)?,
        class_a: reader.usize_or("class_a", defaults.class_a)?,
        class_b: reader.usize_or("class_b", defaults.class_b)?,
        measure_every: reader.usize_or("measure_every", defaults.measure_every)?,
    })
}

fn read_analysis(reader: &Reader<'_>) -> Result<AnalysisSpec, ScenarioError> {
    let defaults = AnalysisSpec::default();
    let k = reader.number::<usize>("k", "a positive integer")?;
    let k_min = reader.number::<usize>("k_min", "a positive integer")?;
    let k_max = reader.number::<usize>("k_max", "a positive integer")?;
    if k.is_some() && (k_min.is_some() || k_max.is_some()) {
        return Err(ScenarioError::Invalid(format!(
            "`{}` fixes the cluster count; it cannot be combined with `{}`/`{}`",
            reader.path("k"),
            reader.path("k_min"),
            reader.path("k_max"),
        )));
    }
    let source = match reader.str("source")?.as_deref() {
        None => defaults.source,
        Some(word) => AnalysisSource::parse(word).ok_or_else(|| ScenarioError::InvalidValue {
            key: reader.path("source"),
            value: word.into(),
            expected: "parameters, approvals or both".into(),
        })?,
    };
    Ok(AnalysisSpec {
        enabled: reader.bool_or("enabled", defaults.enabled)?,
        k,
        k_min: k_min.unwrap_or(defaults.k_min),
        k_max: k_max.unwrap_or(defaults.k_max),
        cadence: reader.usize_or("cadence", defaults.cadence)?,
        source,
    })
}

fn read_output(reader: &Reader<'_>) -> Result<OutputSpec, ScenarioError> {
    let defaults = OutputSpec::default();
    Ok(OutputSpec {
        csv: reader.str("csv")?,
        track_every: reader.usize_or("track_every", defaults.track_every)?,
        recent_window: reader.usize_or("recent_window", defaults.recent_window)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::new(
            "tiny",
            DatasetSpec::Fmnist {
                clients: 4,
                samples: 30,
                relaxation: 0.0,
                seed: 42,
            },
        )
        .rounds(2)
        .clients_per_round(2)
        .local_batches(2)
    }

    #[test]
    fn builder_clamps_clients_per_round_to_dataset() {
        let s = Scenario::new(
            "small",
            DatasetSpec::Fmnist {
                clients: 4,
                samples: 30,
                relaxation: 0.0,
                seed: 42,
            },
        );
        assert_eq!(s.execution.dag().clients_per_round, 4);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn with_seed_reaches_dataset_and_simulation() {
        let s = tiny().with_seed(7);
        assert_eq!(s.dataset.seed(), 7);
        assert_eq!(s.execution.dag().seed, 7);
    }

    #[test]
    fn round_trips_every_execution_shape() {
        let cases = vec![
            tiny(),
            tiny()
                .with_selector(TipSelector::Random)
                .with_csv("series")
                .tracking(2),
            tiny().with_selector(TipSelector::CumulativeWeight { alpha: 2.5 }),
            Scenario::new(
                "poets",
                DatasetSpec::Poets {
                    clients_per_language: 3,
                    samples: 50,
                    seq_len: 12,
                    seed: 1,
                },
            ),
            Scenario::new(
                "fedprox",
                DatasetSpec::FedProx {
                    clients: 8,
                    min_samples: 30,
                    max_samples: 60,
                    seed: 3,
                },
            ),
            Scenario::new(
                "attack",
                DatasetSpec::FmnistAuthor {
                    clients: 6,
                    samples: 40,
                    seed: 5,
                },
            )
            .with_attack(AttackSpec {
                fraction: 0.25,
                clean_rounds: 3,
                attack_rounds: 4,
                class_a: 3,
                class_b: 8,
                measure_every: 2,
            }),
            tiny().asynchronous(AsyncConfig {
                total_activations: 20,
                mean_interarrival: 1.5,
                delay: DelayModel::Cohorts {
                    slow_fraction: 0.3,
                    fast: 1.0,
                    slow: 8.0,
                    jitter: 0.5,
                },
                compute: ComputeProfile::MatchNetworkCohort { slowdown: 4.0 },
                train_time: 0.5,
                stale_policy: StaleTipPolicy::Reselect,
                ..AsyncConfig::default()
            }),
            tiny()
                .asynchronous(AsyncConfig::default())
                .with_transport(TransportSpec::Tcp {
                    tracker: "127.0.0.1:7878".into(),
                    port: 9000,
                }),
        ];
        for scenario in cases {
            let text = scenario.to_toml();
            let reparsed = Scenario::from_toml(&text)
                .unwrap_or_else(|e| panic!("reparsing `{}` failed: {e}\n{text}", scenario.name));
            assert_eq!(scenario, reparsed, "{text}");
        }
    }

    #[test]
    fn matmul_backend_round_trips_and_defaults_stay_silent() {
        // The default (tiled) writes no key, keeping checked-in
        // scenario files byte-stable across the backend introduction.
        let default = tiny();
        assert!(!default.to_toml().contains("matmul_backend"));
        assert_eq!(
            Scenario::from_toml(&default.to_toml())
                .unwrap()
                .matmul_backend,
            MatmulBackendKind::Tiled
        );
        let naive = tiny().with_matmul_backend(MatmulBackendKind::Naive);
        let text = naive.to_toml();
        assert!(text.contains("matmul_backend = \"naive\""), "{text}");
        assert_eq!(naive, Scenario::from_toml(&text).unwrap());
        let err = Scenario::from_toml(&text.replace("\"naive\"", "\"wgpu\"")).unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidValue { .. }), "{err}");
    }

    fn chaos_faults() -> FaultSpec {
        FaultSpec {
            drop: 0.2,
            duplicate: 0.1,
            reorder: 0.05,
            extra_delay: 0.1,
            delay_boost: 2.0,
            partition: Some((5.0, 9.0, 2)),
            crash: Some((3, 10.0, f64::INFINITY)),
        }
    }

    #[test]
    fn faults_round_trip_including_an_infinite_restart() {
        let s = tiny()
            .asynchronous(AsyncConfig {
                gossip_fanout: 2,
                ..AsyncConfig::default()
            })
            .with_faults(chaos_faults());
        let text = s.to_toml();
        assert!(text.contains("[faults]"), "{text}");
        assert!(text.contains("fanout = 2"), "{text}");
        // A never-restarting crash serializes by *omitting* the key.
        assert!(!text.contains("crash_restart"), "{text}");
        let reparsed = Scenario::from_toml(&text).unwrap();
        assert_eq!(s, reparsed, "{text}");
        assert!(s.validate().is_ok());
        // The expanded core plan carries both scripted windows.
        let plan = s.faults.as_ref().unwrap().to_plan();
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.crashes.len(), 1);
        assert_eq!(plan.crashes[0].restart, f64::INFINITY);
    }

    #[test]
    fn empty_faults_section_parses_to_an_inert_plan() {
        let s = Scenario::from_toml(
            "name = \"x\"\n\n[dataset]\nkind = \"fmnist\"\n\n[execution]\nmode = \"async\"\n\n\
             [faults]\n",
        )
        .unwrap();
        let faults = s.faults.expect("section present");
        assert!(faults.to_plan().is_inert());
        assert_eq!(faults.delay_boost, 1.0);
    }

    #[test]
    fn faults_are_rejected_outside_async_loopback() {
        let rounds = tiny().with_faults(chaos_faults());
        assert!(matches!(rounds.validate(), Err(ScenarioError::Invalid(_))));
        let tcp = tiny()
            .asynchronous(AsyncConfig::default())
            .with_transport(TransportSpec::Tcp {
                tracker: "127.0.0.1:7878".into(),
                port: 0,
            })
            .with_faults(chaos_faults());
        assert!(matches!(tcp.validate(), Err(ScenarioError::Invalid(_))));
        let bad_prob = tiny()
            .asynchronous(AsyncConfig::default())
            .with_faults(FaultSpec {
                drop: 1.5,
                ..chaos_faults()
            });
        assert!(matches!(bad_prob.validate(), Err(ScenarioError::Core(_))));
    }

    #[test]
    fn partial_partition_or_crash_keys_are_rejected() {
        let base =
            "name = \"x\"\n\n[dataset]\nkind = \"fmnist\"\n\n[execution]\nmode = \"async\"\n\n";
        let err =
            Scenario::from_toml(&format!("{base}[faults]\npartition_start = 2.0\n")).unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid(_)), "{err:?}");
        let err =
            Scenario::from_toml(&format!("{base}[faults]\ncrash_restart = 9.0\n")).unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn analysis_round_trips_in_both_k_shapes() {
        let auto = tiny().with_analysis(AnalysisSpec {
            cadence: 2,
            source: AnalysisSource::Parameters,
            ..AnalysisSpec::default()
        });
        let text = auto.to_toml();
        assert!(text.contains("[analysis]"), "{text}");
        assert!(text.contains("k_min = 2"), "{text}");
        assert!(!text.contains("\nk = "), "{text}");
        assert_eq!(Scenario::from_toml(&text).unwrap(), auto, "{text}");
        assert!(auto.validate().is_ok());

        let fixed = tiny().with_analysis(AnalysisSpec {
            k: Some(3),
            enabled: false,
            ..AnalysisSpec::default()
        });
        let text = fixed.to_toml();
        assert!(text.contains("k = 3"), "{text}");
        assert!(!text.contains("k_min"), "{text}");
        assert!(text.contains("enabled = false"), "{text}");
        assert_eq!(Scenario::from_toml(&text).unwrap(), fixed, "{text}");
    }

    #[test]
    fn empty_analysis_section_parses_to_the_defaults() {
        let s = Scenario::from_toml("name = \"x\"\n\n[dataset]\nkind = \"fmnist\"\n\n[analysis]\n")
            .unwrap();
        let analysis = s.analysis.clone().expect("section present");
        assert_eq!(analysis, AnalysisSpec::default());
        assert!(analysis.enabled);
        assert!(matches!(
            analysis.to_config(42).k,
            KSelection::Auto { min: 2, max: 6 }
        ));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn analysis_rejects_conflicting_and_invalid_shapes() {
        // k together with a sweep bound is ambiguous — parse error.
        let err = Scenario::from_toml(
            "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[analysis]\nk = 3\nk_min = 2\n",
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid(_)), "{err:?}");
        // Unknown source word.
        let err = Scenario::from_toml(
            "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[analysis]\nsource = \"vibes\"\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, ScenarioError::InvalidValue { ref key, .. } if key == "analysis.source"),
            "{err:?}"
        );
        // Degenerate ranges and k = 0 fail validation.
        let zero_k = tiny().with_analysis(AnalysisSpec {
            k: Some(0),
            ..AnalysisSpec::default()
        });
        assert!(matches!(zero_k.validate(), Err(ScenarioError::Invalid(_))));
        let inverted = tiny().with_analysis(AnalysisSpec {
            k_min: 5,
            k_max: 2,
            ..AnalysisSpec::default()
        });
        assert!(matches!(
            inverted.validate(),
            Err(ScenarioError::Invalid(_))
        ));
        // Analytics need rounds mode without an attack — unless disabled.
        let asynchronous = tiny()
            .asynchronous(AsyncConfig::default())
            .with_analysis(AnalysisSpec::default());
        assert!(matches!(
            asynchronous.validate(),
            Err(ScenarioError::Invalid(_))
        ));
        let disabled = tiny()
            .asynchronous(AsyncConfig::default())
            .with_analysis(AnalysisSpec {
                enabled: false,
                ..AnalysisSpec::default()
            });
        assert!(disabled.validate().is_ok());
        let attacked = tiny()
            .with_attack(AttackSpec::default())
            .with_analysis(AnalysisSpec::default());
        assert!(matches!(
            attacked.validate(),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn minimal_file_uses_defaults() {
        let s = Scenario::from_toml("name = \"mini\"\n\n[dataset]\nkind = \"fmnist\"\n").unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.model, ModelSpec::Mlp { hidden: vec![64] });
        assert!(matches!(s.execution, ExecutionSpec::Rounds(_)));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        let err = Scenario::from_toml("name = \"x\"\n[dataset]\nkind = \"fmnist\"\nclinets = 5\n")
            .unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownKey { ref key } if key == "dataset.clinets"));
        let err =
            Scenario::from_toml("name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[extra]\nk = 1\n")
                .unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownKey { ref key } if key == "[extra]"));
    }

    #[test]
    fn transport_keys_parse_and_reject_inapplicable_combos() {
        let base = "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[execution]\nmode = \"async\"\n";
        // Default is loopback.
        let s = Scenario::from_toml(base).unwrap();
        assert!(matches!(
            s.execution,
            ExecutionSpec::Async {
                transport: TransportSpec::Loopback,
                ..
            }
        ));
        // Explicit tcp with tracker and port.
        let s = Scenario::from_toml(&format!(
            "{base}transport = \"tcp\"\ntracker = \"127.0.0.1:7878\"\nport = 9000\n"
        ))
        .unwrap();
        match &s.execution {
            ExecutionSpec::Async {
                transport: TransportSpec::Tcp { tracker, port },
                ..
            } => {
                assert_eq!(tracker, "127.0.0.1:7878");
                assert_eq!(*port, 9000);
            }
            other => panic!("unexpected execution {other:?}"),
        }
        // tcp without a tracker is incomplete.
        let err = Scenario::from_toml(&format!("{base}transport = \"tcp\"\n")).unwrap_err();
        assert!(matches!(err, ScenarioError::MissingKey { ref key } if key == "execution.tracker"));
        // tracker/port under loopback are explicitly inapplicable.
        let err =
            Scenario::from_toml(&format!("{base}tracker = \"127.0.0.1:7878\"\n")).unwrap_err();
        assert!(err.to_string().contains("tcp"), "{err}");
        // An unknown transport word names the alternatives.
        let err =
            Scenario::from_toml(&format!("{base}transport = \"carrier-pigeon\"\n")).unwrap_err();
        assert!(err.to_string().contains("loopback or tcp"), "{err}");
        // A tcp tracker that is not host:port fails validation.
        let s = tiny()
            .asynchronous(AsyncConfig::default())
            .with_transport(TransportSpec::Tcp {
                tracker: "localhost".into(),
                port: 0,
            });
        assert!(s.validate().unwrap_err().to_string().contains("host:port"));
        // Transport is irrelevant to (and ignored by) rounds mode.
        let s = tiny().with_transport(TransportSpec::Tcp {
            tracker: "127.0.0.1:1".into(),
            port: 0,
        });
        assert!(matches!(s.execution, ExecutionSpec::Rounds(_)));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn missing_name_and_dataset_are_rejected() {
        assert!(matches!(
            Scenario::from_toml("[dataset]\nkind = \"fmnist\"\n").unwrap_err(),
            ScenarioError::MissingKey { ref key } if key == "name"
        ));
        assert!(matches!(
            Scenario::from_toml("name = \"x\"\n").unwrap_err(),
            ScenarioError::MissingKey { ref key } if key == "dataset.kind"
        ));
    }

    #[test]
    fn bad_words_are_rejected_with_expectations() {
        for (text, key) in [
            (
                "name = \"x\"\n[dataset]\nkind = \"imagenet\"\n",
                "dataset.kind",
            ),
            (
                "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[execution]\nmode = \"warp\"\n",
                "execution.mode",
            ),
            (
                "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[execution]\nselector = \"best\"\n",
                "execution.selector",
            ),
            (
                "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[execution]\nmode = \"async\"\nstale_policy = \"retry\"\n",
                "execution.stale_policy",
            ),
            (
                "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[model]\nkind = \"transformer\"\n",
                "model.kind",
            ),
        ] {
            let err = Scenario::from_toml(text).unwrap_err();
            assert!(
                matches!(err, ScenarioError::InvalidValue { key: ref k, .. } if k == key),
                "{text}: {err}"
            );
        }
    }

    #[test]
    fn type_mismatches_are_rejected() {
        let err =
            Scenario::from_toml("name = \"x\"\n[dataset]\nkind = \"fmnist\"\nclients = \"many\"\n")
                .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidValue { .. }), "{err}");
        let err = Scenario::from_toml("name = \"x\"\n[dataset]\nkind = \"fmnist\"\nclients = -3\n")
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidValue { .. }), "{err}");
    }

    #[test]
    fn validate_rejects_semantic_inconsistencies() {
        // clients_per_round above the dataset size.
        let err = tiny().clients_per_round(9).validate().unwrap_err();
        assert!(err.to_string().contains("clients_per_round"), "{err}");
        // Attack in async mode.
        let err = tiny()
            .asynchronous(AsyncConfig::default())
            .with_attack(AttackSpec::default())
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("rounds mode"), "{err}");
        // Attack classes out of range.
        let err = tiny()
            .with_attack(AttackSpec {
                class_a: 3,
                class_b: 12,
                ..AttackSpec::default()
            })
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("classes"), "{err}");
        // Mismatched model and dataset.
        let err = tiny()
            .with_model(ModelSpec::CharRnn {
                embed: 8,
                hidden: 16,
            })
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("char-rnn"), "{err}");
        // Core range checks surface through the scenario.
        let mut bad = tiny();
        bad.execution.dag_mut().learning_rate = -1.0;
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("learning_rate"), "{err}");
        // Tracking in async mode.
        let err = tiny()
            .asynchronous(AsyncConfig::default())
            .tracking(2)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("tracking"), "{err}");
    }

    #[test]
    fn out_of_range_file_fails_validation_not_parsing() {
        let s = Scenario::from_toml(
            "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[execution]\nlearning_rate = -0.5\n",
        )
        .unwrap();
        assert!(s.validate().is_err());
    }

    #[test]
    fn factories_match_dataset_dimensions() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = ModelSpec::Mlp { hidden: vec![8, 4] }.build_factory(20, 10)(&mut rng);
        assert_eq!(mlp.num_parameters(), 20 * 8 + 8 + 8 * 4 + 4 + 4 * 10 + 10);
        let linear = ModelSpec::Linear.build_factory(60, 10)(&mut rng);
        assert_eq!(linear.num_parameters(), 60 * 10 + 10);
        let empty_mlp = ModelSpec::Mlp { hidden: vec![] }.build_factory(60, 10)(&mut rng);
        assert_eq!(empty_mlp.num_parameters(), linear.num_parameters());
        let rnn = ModelSpec::CharRnn {
            embed: 8,
            hidden: 32,
        }
        .build_factory(12, POETS_VOCAB.len())(&mut rng);
        assert!(rnn.num_parameters() > 0);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("dagfl_scenario_io_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/tiny.toml");
        let scenario = tiny();
        scenario.save(&path).unwrap();
        assert_eq!(Scenario::load(&path).unwrap(), scenario);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            Scenario::load(dir.join("missing.toml")).unwrap_err(),
            ScenarioError::Io(_)
        ));
    }
}
