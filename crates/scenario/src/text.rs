//! A dependency-free TOML-subset reader/writer for scenario files.
//!
//! The build environment is offline, so — in the spirit of the CLI's
//! `--key value` parser — scenarios serialize through a hand-rolled
//! subset of TOML instead of a `serde` stack. The subset is exactly what
//! scenario files need and nothing more:
//!
//! * `key = value` pairs, optionally grouped under `[section]` headers
//!   (one level, no nested or array-of-table sections),
//! * values: double-quoted strings (with `\"`, `\\`, `\n`, `\t`
//!   escapes), booleans, decimal numbers, flat arrays of numbers, and
//!   half-open integer ranges (`0..5`, used by sweep axes),
//! * `#` comments (whole-line or trailing) and blank lines.
//!
//! Numbers are kept as their raw tokens and parsed on demand, so an
//! `f32` written with its shortest round-trip representation is
//! recovered bit-for-bit.

use std::fmt::Write as _;

/// A parse failure, pointing at the offending line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A double-quoted string, unescaped.
    Str(String),
    /// A numeric token, kept raw (`"0.05"`, `"42"`, `"-3"`).
    Number(String),
    /// `true` / `false`.
    Bool(bool),
    /// A flat array of numeric tokens.
    NumberList(Vec<String>),
    /// A half-open integer range `start..end` (`end` exclusive), kept as
    /// raw tokens. Sweep axes use this for replicate grids (`seed = 0..5`).
    Range(String, String),
}

/// An ordered `key = value` table (insertion order is preserved so
/// serialized files stay diff-friendly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    entries: Vec<(String, Value)>,
}

impl Table {
    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) a key.
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Iterates over the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed document: bare top-level keys plus named sections, in file
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// Keys that appear before the first `[section]` header.
    pub root: Table,
    sections: Vec<(String, Table)>,
}

impl Document {
    /// The named section, if present.
    pub fn section(&self, name: &str) -> Option<&Table> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// The named section, created on first use.
    pub fn section_mut(&mut self, name: &str) -> &mut Table {
        if !self.sections.iter().any(|(n, _)| n == name) {
            self.sections.push((name.to_string(), Table::default()));
        }
        let idx = self
            .sections
            .iter()
            .position(|(n, _)| n == name)
            .expect("just inserted");
        &mut self.sections[idx].1
    }

    /// All section names, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Parses a document.
    ///
    /// # Errors
    ///
    /// Returns a [`TextError`] pointing at the first malformed line.
    pub fn parse(input: &str) -> Result<Self, TextError> {
        let mut doc = Document::default();
        let mut current: Option<String> = None;
        for (idx, raw_line) in input.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| TextError {
                    line: line_no,
                    message: format!("unterminated section header `{line}`"),
                })?;
                let name = name.trim();
                if name.is_empty() || name.contains(['[', ']']) {
                    return Err(TextError {
                        line: line_no,
                        message: format!("invalid section name `{name}`"),
                    });
                }
                if doc.section(name).is_some() {
                    return Err(TextError {
                        line: line_no,
                        message: format!("duplicate section `[{name}]`"),
                    });
                }
                doc.section_mut(name);
                current = Some(name.to_string());
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| TextError {
                line: line_no,
                message: format!("expected `key = value` or `[section]`, got `{line}`"),
            })?;
            let key = key.trim();
            if key.is_empty() || key.contains(char::is_whitespace) {
                return Err(TextError {
                    line: line_no,
                    message: format!("invalid key `{key}`"),
                });
            }
            let value = parse_value(value.trim(), line_no)?;
            let table = match &current {
                Some(name) => doc.section_mut(name),
                None => &mut doc.root,
            };
            if table.get(key).is_some() {
                return Err(TextError {
                    line: line_no,
                    message: format!("duplicate key `{key}`"),
                });
            }
            table.set(key, value);
        }
        Ok(doc)
    }

    /// Serializes the document back to text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.root.iter() {
            let _ = writeln!(out, "{key} = {}", format_value(value));
        }
        for (name, table) in &self.sections {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "[{name}]");
            for (key, value) in table.iter() {
                let _ = writeln!(out, "{key} = {}", format_value(value));
            }
        }
        out
    }
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_value(token: &str, line: usize) -> Result<Value, TextError> {
    if token.is_empty() {
        return Err(TextError {
            line,
            message: "missing value".into(),
        });
    }
    if let Some(rest) = token.strip_prefix('"') {
        let body = rest.strip_suffix('"').ok_or_else(|| TextError {
            line,
            message: format!("unterminated string `{token}`"),
        })?;
        return Ok(Value::Str(unescape(body, line)?));
    }
    if token == "true" {
        return Ok(Value::Bool(true));
    }
    if token == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = token.strip_prefix('[') {
        let body = rest.strip_suffix(']').ok_or_else(|| TextError {
            line,
            message: format!("unterminated array `{token}`"),
        })?;
        let body = body.trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                items.push(number_token(item.trim(), line)?);
            }
        }
        return Ok(Value::NumberList(items));
    }
    if let Some((start, end)) = token.split_once("..") {
        let (start, end) = (start.trim(), end.trim());
        if start.parse::<u64>().is_ok() && end.parse::<u64>().is_ok() {
            return Ok(Value::Range(start.to_string(), end.to_string()));
        }
        return Err(TextError {
            line,
            message: format!("`{token}` is not an integer range (expected `start..end`)"),
        });
    }
    Ok(Value::Number(number_token(token, line)?))
}

fn number_token(token: &str, line: usize) -> Result<String, TextError> {
    if token.parse::<f64>().map(f64::is_finite) == Ok(true) {
        Ok(token.to_string())
    } else {
        Err(TextError {
            line,
            message: format!("`{token}` is not a finite number"),
        })
    }
}

fn unescape(body: &str, line: usize) -> Result<String, TextError> {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return Err(TextError {
                line,
                message: "unescaped quote inside string".into(),
            });
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => {
                return Err(TextError {
                    line,
                    message: format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                })
            }
        }
    }
    Ok(out)
}

fn format_value(value: &Value) -> String {
    match value {
        Value::Str(s) => format!("\"{}\"", escape(s)),
        Value::Number(n) => n.clone(),
        Value::Bool(b) => b.to_string(),
        Value::NumberList(items) => format!("[{}]", items.join(", ")),
        Value::Range(start, end) => format!("{start}..{end}"),
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            c => vec![c],
        })
        .collect()
}

/// Formats an `f64` so it parses back bit-for-bit and is always
/// recognisable as a float (`{:?}` keeps a `.0` on integral values).
pub fn format_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Formats an `f32` with its shortest round-trip representation.
pub fn format_f32(v: f32) -> String {
    format!("{v:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_comments() {
        let doc = Document::parse(
            "# experiment\nname = \"demo\"\n\n[dataset]\nkind = \"fmnist\" # trailing\nclients = 15\nrelaxation = 0.18\n[model]\nhidden = [64, 32]\nbias = true\n",
        )
        .unwrap();
        assert_eq!(doc.root.get("name"), Some(&Value::Str("demo".into())));
        let dataset = doc.section("dataset").unwrap();
        assert_eq!(dataset.get("kind"), Some(&Value::Str("fmnist".into())));
        assert_eq!(dataset.get("clients"), Some(&Value::Number("15".into())));
        let model = doc.section("model").unwrap();
        assert_eq!(
            model.get("hidden"),
            Some(&Value::NumberList(vec!["64".into(), "32".into()]))
        );
        assert_eq!(model.get("bias"), Some(&Value::Bool(true)));
    }

    #[test]
    fn round_trips_through_text() {
        let input = "name = \"a b # c\"\n\n[x]\nk = 1.5\nflag = false\nlist = [1, 2]\n";
        let doc = Document::parse(input).unwrap();
        assert_eq!(doc.to_text(), input);
        assert_eq!(Document::parse(&doc.to_text()).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (input, needle) in [
            ("just words", "key = value"),
            ("[unterminated", "unterminated section"),
            ("[]", "invalid section name"),
            ("k = ", "missing value"),
            ("k = \"open", "unterminated string"),
            ("k = [1, 2", "unterminated array"),
            ("k = maybe", "not a finite number"),
            ("k = nan", "not a finite number"),
            ("a = 1\na = 2", "duplicate key"),
            ("[s]\nx = 1\n[s]", "duplicate section"),
            ("bad key = 1", "invalid key"),
        ] {
            let err = Document::parse(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{input:?}: expected `{needle}` in `{}`",
                err.message
            );
        }
    }

    #[test]
    fn error_points_at_the_line() {
        let err = Document::parse("a = 1\nb = 2\noops\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().starts_with("line 3"));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let mut doc = Document::default();
        doc.root
            .set("s", Value::Str("quote \" slash \\ nl \n tab \t".into()));
        let reparsed = Document::parse(&doc.to_text()).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.05f32, 1.0, 0.1, f32::MAX, 1e-30] {
            let s = format_f32(v);
            assert_eq!(s.parse::<f32>().unwrap(), v, "{s}");
            assert!(s.contains('.') || s.contains('e'), "{s} looks integral");
        }
        assert_eq!(format_f64(2.0), "2.0");
    }

    #[test]
    fn integer_ranges_parse_and_round_trip() {
        let doc = Document::parse("[axes]\nseed = 0..5\nreplicate = 2 .. 4\n").unwrap();
        let axes = doc.section("axes").unwrap();
        assert_eq!(
            axes.get("seed"),
            Some(&Value::Range("0".into(), "5".into()))
        );
        assert_eq!(
            axes.get("replicate"),
            Some(&Value::Range("2".into(), "4".into()))
        );
        let text = doc.to_text();
        assert!(text.contains("seed = 0..5"), "{text}");
        assert_eq!(Document::parse(&text).unwrap(), doc);
    }

    #[test]
    fn malformed_ranges_are_rejected() {
        for input in ["k = 0..x", "k = ..5", "k = 1.5..3", "k = -1..3"] {
            let err = Document::parse(input).unwrap_err();
            assert!(
                err.message.contains("integer range"),
                "{input:?}: {}",
                err.message
            );
        }
    }

    #[test]
    fn comment_hash_inside_string_is_preserved() {
        let doc = Document::parse("k = \"a # b\"").unwrap();
        assert_eq!(doc.root.get("k"), Some(&Value::Str("a # b".into())));
    }
}
