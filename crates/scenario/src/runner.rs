//! Executes a [`Scenario`] and assembles a structured [`RunReport`].

use std::path::PathBuf;

use dagfl_analysis::AnalysisSnapshot;
use dagfl_core::csv::write_csv;
use dagfl_core::{
    tangle_digest, AsyncMetrics, AsyncSimulation, ExecutionMode, PoisonRoundMetrics,
    PoisoningConfig, PoisoningScenario, Simulation, SpecializationMetrics,
};
use dagfl_tangle::TangleStats;

use crate::spec::{AnalysisSpec, ExecutionSpec, Scenario, ScenarioError};

/// Dataset facts the report carries so downstream tables (e.g. Table 2)
/// need no second dataset build.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Generator name (e.g. `fmnist-clustered`).
    pub name: String,
    /// Number of clients.
    pub clients: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Number of ground-truth clusters.
    pub clusters: usize,
    /// Pureness a uniformly random approval graph would score.
    pub base_pureness: f64,
}

/// Poisoning results of an attack scenario (Figures 12–14).
#[derive(Debug, Clone, PartialEq)]
pub struct PoisoningSummary {
    /// Per-measurement attack-phase metrics.
    pub measurements: Vec<PoisonRoundMetrics>,
    /// `(community, benign, poisoned)` rows of the final Louvain
    /// partition.
    pub distribution: Vec<(usize, usize, usize)>,
    /// The clients whose labels were flipped.
    pub poisoned_clients: Vec<u32>,
}

/// The structured result of one scenario run.
///
/// Everything is a plain value: two runs of the same scenario with the
/// same seed produce equal reports, which the determinism tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The scenario name.
    pub scenario: String,
    /// Execution mode (`"rounds"` or `"async"`).
    pub mode: &'static str,
    /// Completed scheduling units (rounds or activations).
    pub progress: usize,
    /// Mean post-training accuracy over the configured recent window.
    pub recent_accuracy: f32,
    /// Mean post-training accuracy per round (rounds mode; empty for
    /// async runs).
    pub round_accuracy: Vec<f32>,
    /// Mean post-training loss per round (rounds mode; empty for async
    /// runs).
    pub round_loss: Vec<f32>,
    /// Fresh (forward-pass) candidate evaluations per round (rounds
    /// mode; empty for async runs).
    pub round_fresh_evals: Vec<usize>,
    /// Cache-served candidate evaluations per round (rounds mode; empty
    /// for async runs).
    pub round_cached_evals: Vec<usize>,
    /// Total fresh candidate evaluations over the whole run (both
    /// modes) — the walk's dominant cost driver.
    pub fresh_evaluations: usize,
    /// Total cache-served candidate evaluations over the whole run.
    pub cached_evaluations: usize,
    /// The dataset the run trained on.
    pub dataset: DatasetSummary,
    /// Final §4.3 specialization metrics.
    pub specialization: SpecializationMetrics,
    /// `(round, metrics)` pairs when `output.track_every > 0`.
    pub specialization_track: Vec<(usize, SpecializationMetrics)>,
    /// Final analytics snapshot when the scenario enables `[analysis]`.
    pub analysis: Option<AnalysisSnapshot>,
    /// Per-round analytics snapshots when `analysis.cadence > 0` (the
    /// final snapshot is repeated in `analysis`).
    pub analysis_track: Vec<AnalysisSnapshot>,
    /// Structural statistics of the final (globally visible) tangle.
    pub tangle: TangleStats,
    /// Order-independent content digest of the final tangle
    /// ([`dagfl_core::tangle_digest`]): two runs agree on approvals,
    /// parameters, issuers and rounds iff the digests match, so CI can
    /// compare worker counts without shipping whole reports around.
    pub tangle_digest: u64,
    /// Throughput metrics (async mode only).
    pub async_metrics: Option<AsyncMetrics>,
    /// Poisoning metrics (attack scenarios only).
    pub poisoning: Option<PoisoningSummary>,
    /// Where the CSV series was written, if requested.
    pub csv_path: Option<PathBuf>,
}

impl RunReport {
    /// A multi-line human-readable summary (what `dagfl run` prints).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario {} ({} mode): {} {} completed",
            self.scenario,
            self.mode,
            self.progress,
            if self.mode == "async" {
                "activations"
            } else {
                "rounds"
            }
        );
        let _ = writeln!(
            out,
            "dataset {} ({} clients, {} classes, {} clusters, base pureness {:.3})",
            self.dataset.name,
            self.dataset.clients,
            self.dataset.classes,
            self.dataset.clusters,
            self.dataset.base_pureness
        );
        let _ = writeln!(out, "recent accuracy {:.4}", self.recent_accuracy);
        let _ = writeln!(
            out,
            "specialization: pureness {:.3} modularity {:.3} partitions {} misclassification {:.3}",
            self.specialization.approval_pureness,
            self.specialization.modularity,
            self.specialization.partitions,
            self.specialization.misclassification
        );
        let _ = writeln!(
            out,
            "tangle: {} transactions, {} tips, max depth {}",
            self.tangle.transactions, self.tangle.tips, self.tangle.max_depth
        );
        if let Some(m) = &self.async_metrics {
            let _ = writeln!(
                out,
                "async: rate {:.3}/t publish_fraction {:.3} latency mean {:.3} \
                 stale_fraction {:.3} confirmation depth {:.2}",
                m.activation_rate(),
                m.publish_fraction(),
                m.mean_publish_latency,
                m.stale_fraction(),
                m.mean_confirmation_depth
            );
            // Only fault-injected runs print this line, so unfaulted
            // golden outputs stay byte-identical.
            if m.dropped > 0 || m.duplicated > 0 {
                let _ = writeln!(
                    out,
                    "faults: delivered {} dropped {} duplicated {}",
                    m.delivered, m.dropped, m.duplicated
                );
            }
        }
        // Only analysis-enabled runs print these lines, so pre-analysis
        // golden outputs stay byte-identical.
        if let Some(a) = &self.analysis {
            if let Some(p) = &a.parameters {
                let _ = writeln!(
                    out,
                    "analysis/parameters: k {} silhouette {:.3} purity {:.3} ari {:.3}",
                    p.k, p.silhouette, p.purity, p.ari
                );
            }
            if let Some(g) = &a.graph {
                let _ = writeln!(
                    out,
                    "analysis/graph: {} communities modularity {:.3} purity {:.3} ari {:.3}",
                    g.community_count, g.modularity, g.purity, g.ari
                );
            }
            if let Some(agreement) = a.agreement_ari {
                let _ = writeln!(out, "analysis/agreement: ari {agreement:.3}");
            }
        }
        if let Some(p) = &self.poisoning {
            let last = p.measurements.last();
            let _ = writeln!(
                out,
                "poisoning: {} clients flipped, final flipped-predictions {:.3}, \
                 final approved-poisoned {:.2}",
                p.poisoned_clients.len(),
                last.map_or(0.0, |m| m.flipped_fraction),
                last.map_or(0.0, |m| m.approved_poisoned)
            );
        }
        if let Some(path) = &self.csv_path {
            let _ = writeln!(out, "series written to {}", path.display());
        }
        out
    }
}

/// Consumes a [`Scenario`], builds the dataset, model factory and the
/// right simulator behind [`ExecutionMode`], runs it to completion and
/// returns a [`RunReport`].
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    scenario: Scenario,
}

impl ScenarioRunner {
    /// Validates the scenario and wraps it for execution.
    ///
    /// # Errors
    ///
    /// Returns the first [`Scenario::validate`] inconsistency.
    pub fn new(scenario: Scenario) -> Result<Self, ScenarioError> {
        scenario.validate()?;
        Ok(Self { scenario })
    }

    /// The wrapped scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs the experiment to completion.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures and CSV write errors.
    pub fn run(&self) -> Result<RunReport, ScenarioError> {
        let dataset = self.scenario.dataset.build();
        let summary = DatasetSummary {
            name: dataset.name().to_string(),
            clients: dataset.num_clients(),
            classes: dataset.num_classes(),
            clusters: dataset.clusters().len(),
            base_pureness: dataset.base_pureness(),
        };
        let factory = self.scenario.build_factory(&dataset);
        let window = self.scenario.output.recent_window;
        let mut report = match (&self.scenario.execution, &self.scenario.attack) {
            (ExecutionSpec::Rounds(dag), Some(attack)) => {
                let config = PoisoningConfig {
                    dag: *dag,
                    clean_rounds: attack.clean_rounds,
                    attack_rounds: attack.attack_rounds,
                    poison_fraction: attack.fraction,
                    class_a: attack.class_a,
                    class_b: attack.class_b,
                    measure_every: attack.measure_every,
                };
                let mut scenario = PoisoningScenario::new(config, dataset, factory);
                let measurements = scenario.run()?;
                let distribution = scenario.poisoned_cluster_distribution();
                let poisoned_clients = scenario
                    .report()
                    .map(|r| r.poisoned_clients.clone())
                    .unwrap_or_default();
                let sim = scenario.simulation();
                RunReport {
                    scenario: self.scenario.name.clone(),
                    mode: "rounds",
                    progress: sim.round(),
                    recent_accuracy: sim.recent_accuracy(window),
                    round_accuracy: sim.history().iter().map(|m| m.mean_accuracy()).collect(),
                    round_loss: sim.history().iter().map(|m| m.mean_loss()).collect(),
                    round_fresh_evals: sim.history().iter().map(|m| m.fresh_evaluations).collect(),
                    round_cached_evals: sim
                        .history()
                        .iter()
                        .map(|m| m.cached_evaluations)
                        .collect(),
                    fresh_evaluations: sim.history().iter().map(|m| m.fresh_evaluations).sum(),
                    cached_evaluations: sim.history().iter().map(|m| m.cached_evaluations).sum(),
                    dataset: summary,
                    specialization: sim.specialization_metrics(),
                    specialization_track: Vec::new(),
                    analysis: None,
                    analysis_track: Vec::new(),
                    tangle: ExecutionMode::tangle_stats(sim),
                    tangle_digest: tangle_digest(sim.tangle()),
                    async_metrics: None,
                    poisoning: Some(PoisoningSummary {
                        measurements,
                        distribution,
                        poisoned_clients,
                    }),
                    csv_path: None,
                }
            }
            (ExecutionSpec::Rounds(dag), None) => {
                let analysis_spec = self.scenario.analysis.as_ref().filter(|a| a.enabled);
                let cadence = analysis_spec.map_or(0, |a| a.cadence);
                let mut sim = Simulation::new(*dag, dataset, factory);
                let mut track = Vec::new();
                let mut analysis_track = Vec::new();
                if self.scenario.output.track_every > 0 || cadence > 0 {
                    for round in 0..dag.rounds {
                        sim.run_round()?;
                        if self.scenario.output.track_every > 0
                            && (round + 1) % self.scenario.output.track_every == 0
                        {
                            track.push((round + 1, sim.specialization_metrics()));
                        }
                        if cadence > 0 && (round + 1) % cadence == 0 {
                            let spec = analysis_spec.expect("cadence implies analysis");
                            analysis_track.push(analysis_snapshot(
                                &mut sim,
                                round + 1,
                                spec,
                                dag.seed,
                            )?);
                        }
                    }
                } else {
                    sim.run()?;
                }
                // The final snapshot: reuse the last tracked one when the
                // cadence already landed on the final round, so the walk
                // RNG streams are not advanced a second time.
                let final_round = sim.round();
                let analysis = match analysis_spec {
                    Some(spec) => Some(match analysis_track.last() {
                        Some(last) if last.round == final_round => last.clone(),
                        _ => analysis_snapshot(&mut sim, final_round, spec, dag.seed)?,
                    }),
                    None => None,
                };
                RunReport {
                    scenario: self.scenario.name.clone(),
                    mode: "rounds",
                    progress: sim.round(),
                    recent_accuracy: sim.recent_accuracy(window),
                    round_accuracy: sim.history().iter().map(|m| m.mean_accuracy()).collect(),
                    round_loss: sim.history().iter().map(|m| m.mean_loss()).collect(),
                    round_fresh_evals: sim.history().iter().map(|m| m.fresh_evaluations).collect(),
                    round_cached_evals: sim
                        .history()
                        .iter()
                        .map(|m| m.cached_evaluations)
                        .collect(),
                    fresh_evaluations: sim.history().iter().map(|m| m.fresh_evaluations).sum(),
                    cached_evaluations: sim.history().iter().map(|m| m.cached_evaluations).sum(),
                    dataset: summary,
                    specialization: sim.specialization_metrics(),
                    specialization_track: track,
                    analysis,
                    analysis_track,
                    tangle: ExecutionMode::tangle_stats(&sim),
                    tangle_digest: tangle_digest(sim.tangle()),
                    async_metrics: None,
                    poisoning: None,
                    csv_path: None,
                }
            }
            (ExecutionSpec::Async { config, transport }, _) => {
                // The in-process runner can only drive the loopback
                // transport; a tcp scenario is a recipe for separate
                // processes.
                if let crate::TransportSpec::Tcp { tracker, .. } = transport {
                    return Err(ScenarioError::Invalid(format!(
                        "transport = \"tcp\" (tracker {tracker}) cannot run in-process: start a \
                         `dagfl tracker` and one `dagfl peer` per client instead"
                    )));
                }
                let plan = self
                    .scenario
                    .faults
                    .as_ref()
                    .map_or_else(Default::default, crate::FaultSpec::to_plan);
                let mut sim =
                    AsyncSimulation::try_new_with_faults(*config, dataset, factory, plan)?;
                sim.run()?;
                let metrics = sim.metrics();
                RunReport {
                    scenario: self.scenario.name.clone(),
                    mode: "async",
                    progress: sim.activations(),
                    recent_accuracy: sim.recent_accuracy(window),
                    round_accuracy: Vec::new(),
                    round_loss: Vec::new(),
                    round_fresh_evals: Vec::new(),
                    round_cached_evals: Vec::new(),
                    fresh_evaluations: metrics.fresh_evaluations,
                    cached_evaluations: metrics.cached_evaluations,
                    dataset: summary,
                    specialization: sim
                        .specialization_metrics_seeded(config.dag.seed ^ 0xC0FF_EE00),
                    specialization_track: Vec::new(),
                    analysis: None,
                    analysis_track: Vec::new(),
                    tangle: ExecutionMode::tangle_stats(&sim),
                    tangle_digest: tangle_digest(sim.tangle()),
                    async_metrics: Some(metrics),
                    poisoning: None,
                    csv_path: None,
                }
            }
        };
        if let Some(csv) = &self.scenario.output.csv {
            report.csv_path = Some(self.write_csv(csv, &report)?);
        }
        Ok(report)
    }

    fn write_csv(&self, name: &str, report: &RunReport) -> Result<PathBuf, ScenarioError> {
        let dir = std::env::var("DAGFL_RESULTS")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        let path = dir.join(format!("{name}.csv"));
        let (header, rows): (Vec<&str>, Vec<Vec<String>>) = if report.mode == "async" {
            let m = report
                .async_metrics
                .as_ref()
                .expect("async run has metrics");
            (
                vec![
                    "activations",
                    "elapsed",
                    "activation_rate",
                    "publish_fraction",
                    "mean_publish_latency",
                    "stale_fraction",
                    "mean_confirmation_depth",
                    "pureness",
                    "fresh_evals",
                    "cached_evals",
                    "delivered",
                    "dropped",
                    "duplicated",
                ],
                vec![vec![
                    m.activations.to_string(),
                    format!("{:.4}", m.elapsed),
                    format!("{:.4}", m.activation_rate()),
                    format!("{:.4}", m.publish_fraction()),
                    format!("{:.4}", m.mean_publish_latency),
                    format!("{:.4}", m.stale_fraction()),
                    format!("{:.4}", m.mean_confirmation_depth),
                    format!("{:.4}", report.specialization.approval_pureness),
                    m.fresh_evaluations.to_string(),
                    m.cached_evaluations.to_string(),
                    m.delivered.to_string(),
                    m.dropped.to_string(),
                    m.duplicated.to_string(),
                ]],
            )
        } else {
            // The analysis column group exists only for analysis-enabled
            // scenarios, so pre-analysis CSVs stay byte-identical.
            let mut header = vec![
                "round",
                "mean_accuracy",
                "mean_loss",
                "fresh_evals",
                "cached_evals",
            ];
            if report.analysis.is_some() {
                header.extend([
                    "analysis_k",
                    "analysis_silhouette",
                    "analysis_purity",
                    "analysis_ari",
                    "analysis_communities",
                    "analysis_modularity",
                    "analysis_agreement",
                ]);
            }
            let rows = report
                .round_accuracy
                .iter()
                .zip(&report.round_loss)
                .zip(
                    report
                        .round_fresh_evals
                        .iter()
                        .zip(&report.round_cached_evals),
                )
                .enumerate()
                .map(|(i, ((acc, loss), (fresh, cached)))| {
                    let mut row = vec![
                        (i + 1).to_string(),
                        format!("{acc:.4}"),
                        format!("{loss:.4}"),
                        fresh.to_string(),
                        cached.to_string(),
                    ];
                    if report.analysis.is_some() {
                        // Rounds between cadence points carry empty cells,
                        // like the async-only columns of sweep CSVs.
                        let snapshot = report
                            .analysis_track
                            .iter()
                            .chain(&report.analysis)
                            .find(|s| s.round == i + 1);
                        row.extend(analysis_cells(snapshot));
                    }
                    row
                })
                .collect();
            (header, rows)
        };
        write_csv(&path, &header, &rows)
            .map_err(|e| ScenarioError::Io(format!("writing {}: {e}", path.display())))?;
        Ok(path)
    }
}

/// Runs the configured analytics over the simulation's current state:
/// parameter-space k-means over each client's walk-selected reference
/// model and/or community detection over the client approval graph.
///
/// Collecting reference models advances the clients' walk RNG streams
/// (like specialization tracking), deterministically: the same
/// `(seed, scenario)` still produces identical reports.
fn analysis_snapshot(
    sim: &mut Simulation,
    round: usize,
    spec: &AnalysisSpec,
    seed: u64,
) -> Result<AnalysisSnapshot, ScenarioError> {
    let config = spec.to_config(seed);
    let params = if config.source.wants_parameters() {
        Some(sim.reference_parameters().map_err(ScenarioError::Core)?)
    } else {
        None
    };
    let graph = if config.source.wants_approvals() {
        Some(sim.client_graph())
    } else {
        None
    };
    let truth = sim.dataset().cluster_labels();
    Ok(dagfl_analysis::analyze(
        round,
        params.as_deref(),
        graph.as_ref(),
        &truth,
        &config,
    ))
}

/// The run-CSV analysis column group for one round: empty cells when no
/// snapshot landed on that round or a view was not requested.
fn analysis_cells(snapshot: Option<&AnalysisSnapshot>) -> Vec<String> {
    let Some(s) = snapshot else {
        return vec![String::new(); 7];
    };
    let (k, silhouette, purity, ari) = match &s.parameters {
        Some(p) => (
            p.k.to_string(),
            format!("{:.4}", p.silhouette),
            format!("{:.4}", p.purity),
            format!("{:.4}", p.ari),
        ),
        None => Default::default(),
    };
    let (communities, modularity) = match &s.graph {
        Some(g) => (
            g.community_count.to_string(),
            format!("{:.4}", g.modularity),
        ),
        None => Default::default(),
    };
    let agreement = s
        .agreement_ari
        .map_or_else(String::new, |a| format!("{a:.4}"));
    vec![
        k,
        silhouette,
        purity,
        ari,
        communities,
        modularity,
        agreement,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AttackSpec, DatasetSpec};
    use dagfl_core::{AsyncConfig, DagConfig, DelayModel};

    fn tiny() -> Scenario {
        Scenario::new(
            "tiny",
            DatasetSpec::Fmnist {
                clients: 4,
                samples: 30,
                relaxation: 0.0,
                seed: 42,
            },
        )
        .rounds(2)
        .clients_per_round(2)
        .local_batches(2)
    }

    #[test]
    fn rounds_scenario_produces_a_full_report() {
        let report = ScenarioRunner::new(tiny()).unwrap().run().unwrap();
        assert_eq!(report.mode, "rounds");
        assert_eq!(report.progress, 2);
        assert_eq!(report.round_accuracy.len(), 2);
        assert_eq!(report.dataset.clients, 4);
        assert!(report.tangle.transactions >= 1);
        assert!(report.async_metrics.is_none());
        assert!(report.poisoning.is_none());
        assert!((0.0..=1.0).contains(&report.specialization.approval_pureness));
        assert!(report.summary().contains("rounds"));
    }

    #[test]
    fn reports_carry_evaluation_counts() {
        let report = ScenarioRunner::new(tiny()).unwrap().run().unwrap();
        assert_eq!(report.round_fresh_evals.len(), 2);
        assert_eq!(report.round_cached_evals.len(), 2);
        assert_eq!(
            report.fresh_evaluations,
            report.round_fresh_evals.iter().sum::<usize>()
        );
        assert_eq!(
            report.cached_evaluations,
            report.round_cached_evals.iter().sum::<usize>()
        );
        // Async runs report totals from the simulator's metrics.
        let scenario = tiny().asynchronous(AsyncConfig {
            dag: DagConfig {
                local_batches: 2,
                ..DagConfig::default()
            },
            total_activations: 6,
            delay: DelayModel::constant(1.0),
            ..AsyncConfig::default()
        });
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        let metrics = report.async_metrics.as_ref().expect("async metrics");
        assert_eq!(report.fresh_evaluations, metrics.fresh_evaluations);
        assert_eq!(report.cached_evaluations, metrics.cached_evaluations);
        assert!(report.round_fresh_evals.is_empty());
    }

    #[test]
    fn tracking_records_requested_rounds() {
        let scenario = tiny().rounds(4).tracking(2);
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        assert_eq!(report.specialization_track.len(), 2);
        assert_eq!(report.specialization_track[0].0, 2);
        assert_eq!(report.specialization_track[1].0, 4);
    }

    #[test]
    fn analysis_scenario_reports_snapshots_on_cadence() {
        use crate::spec::AnalysisSpec;
        let scenario = tiny().rounds(4).with_analysis(AnalysisSpec {
            k: Some(2),
            cadence: 2,
            ..AnalysisSpec::default()
        });
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        assert_eq!(report.analysis_track.len(), 2);
        assert_eq!(report.analysis_track[0].round, 2);
        assert_eq!(report.analysis_track[1].round, 4);
        let last = report.analysis.as_ref().expect("final snapshot");
        assert_eq!(last, &report.analysis_track[1]);
        let params = last.parameters.as_ref().expect("parameter view");
        assert_eq!(params.assignments.len(), 4);
        assert_eq!(params.k, 2);
        let graph = last.graph.as_ref().expect("graph view");
        assert_eq!(graph.communities.len(), 4);
        assert!(last.agreement_ari.is_some());
        let summary = report.summary();
        assert!(summary.contains("analysis/parameters:"), "{summary}");
        assert!(summary.contains("analysis/graph:"), "{summary}");
        assert!(summary.contains("analysis/agreement:"), "{summary}");
    }

    #[test]
    fn analysis_columns_appear_only_for_analysis_runs() {
        use crate::spec::AnalysisSpec;
        let plain = tiny().with_csv("runner_csv_no_analysis_test");
        let report = ScenarioRunner::new(plain).unwrap().run().unwrap();
        let path = report.csv_path.expect("csv written");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("round,mean_accuracy,mean_loss,fresh_evals,cached_evals\n"));
        let _ = std::fs::remove_file(&path);

        let analysed = tiny()
            .with_csv("runner_csv_analysis_test")
            .with_analysis(AnalysisSpec {
                k: Some(2),
                cadence: 1,
                ..AnalysisSpec::default()
            });
        let report = ScenarioRunner::new(analysed).unwrap().run().unwrap();
        let path = report.csv_path.expect("csv written");
        let content = std::fs::read_to_string(&path).unwrap();
        let header = content.lines().next().unwrap();
        assert!(
            header.ends_with(
                "analysis_k,analysis_silhouette,analysis_purity,analysis_ari,\
                 analysis_communities,analysis_modularity,analysis_agreement"
            ),
            "{header}"
        );
        // Cadence 1: every round carries filled analysis cells.
        for line in content.lines().skip(1) {
            assert!(!line.ends_with(','), "{line}");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(path.parent().expect("results dir"));
    }

    #[test]
    fn disabled_analysis_is_inert() {
        use crate::spec::AnalysisSpec;
        let scenario = tiny().with_analysis(AnalysisSpec {
            enabled: false,
            ..AnalysisSpec::default()
        });
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        assert!(report.analysis.is_none());
        assert!(report.analysis_track.is_empty());
        assert!(!report.summary().contains("analysis/"));
    }

    #[test]
    fn async_scenario_reports_throughput_metrics() {
        let scenario = tiny().asynchronous(AsyncConfig {
            dag: DagConfig {
                local_batches: 2,
                ..DagConfig::default()
            },
            total_activations: 6,
            delay: DelayModel::constant(1.0),
            ..AsyncConfig::default()
        });
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        assert_eq!(report.mode, "async");
        assert_eq!(report.progress, 6);
        let metrics = report.async_metrics.as_ref().expect("async metrics");
        assert_eq!(metrics.activations, 6);
        assert!(report.round_accuracy.is_empty());
        assert!(report.summary().contains("async"));
    }

    #[test]
    fn attack_scenario_reports_poisoning_summary() {
        let scenario = Scenario::new(
            "attack",
            DatasetSpec::FmnistAuthor {
                clients: 6,
                samples: 40,
                seed: 42,
            },
        )
        .clients_per_round(3)
        .local_batches(3)
        .with_attack(AttackSpec {
            fraction: 0.3,
            clean_rounds: 2,
            attack_rounds: 2,
            class_a: 3,
            class_b: 8,
            measure_every: 2,
        });
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        let poisoning = report.poisoning.expect("poisoning summary");
        assert_eq!(poisoning.poisoned_clients.len(), 2);
        assert_eq!(poisoning.measurements.len(), 1);
        assert_eq!(report.progress, 4);
        let clients: usize = poisoning.distribution.iter().map(|(_, b, p)| b + p).sum();
        assert_eq!(clients, 6);
    }

    #[test]
    fn invalid_scenarios_are_rejected_before_running() {
        let err = ScenarioRunner::new(tiny().clients_per_round(99)).unwrap_err();
        assert!(err.to_string().contains("clients_per_round"), "{err}");
    }

    #[test]
    fn csv_output_lands_in_the_results_dir() {
        // Avoid mutating the process environment: exercise the default
        // relative `results/` directory and clean it up afterwards.
        let scenario = tiny().with_csv("scenario_runner_csv_test");
        let runner = ScenarioRunner::new(scenario).unwrap();
        let report = runner.run().unwrap();
        let path = report.csv_path.expect("csv written");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("round,mean_accuracy,mean_loss,fresh_evals,cached_evals\n"));
        assert_eq!(content.lines().count(), 3);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(path.parent().expect("results dir"));
    }
}
