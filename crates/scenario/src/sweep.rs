//! The parameter-grid sweep engine: expand one base [`Scenario`] over
//! typed axes, run the cells on a worker pool, aggregate the reports.
//!
//! The paper's results are all *sweeps* — Figures 5–8 sweep the walk
//! randomness α, Table 1 sweeps datasets, Figures 12–14 sweep poisoning
//! fractions. A [`SweepSpec`] makes the grid itself data:
//!
//! * a **base scenario** ([`SweepBase`]): a preset name, a scenario
//!   file, or an inline [`Scenario`] value,
//! * one or more **axes** ([`SweepAxis`]): a typed field path
//!   ([`SweepField`]) plus the values it takes
//!   (`execution.alpha = [0.1, 1, 10, 100]`, `replicate = 0..5`),
//! * the cross-product of the axes, optionally capped
//!   ([`SweepSpec::max_cells`]).
//!
//! Expansion ([`SweepSpec::expand_at`]) produces concrete, validated
//! [`SweepCell`]s in a deterministic order (axes as listed, last axis
//! fastest). [`SweepRunner::run`] executes them on `jobs` scoped worker
//! threads; every cell is a self-contained [`ScenarioRunner`] run whose
//! randomness derives only from the cell's own scenario seed, so the
//! aggregate [`SweepReport`] — including its cross-cell comparison CSV
//! — is byte-identical for any worker count or scheduling order.
//! Replicate grids use [`dagfl_core::derive_seed`] so per-cell seeds are
//! data, never a function of execution order.
//!
//! Sweeps serialize through the same TOML subset as scenarios
//! ([`SweepSpec::to_toml`] / [`SweepSpec::from_toml`]): a `[sweep]`
//! section naming the base plus an `[axes]` section, checked in as
//! `scenarios/sweep-*.toml` and runnable with `dagfl sweep <file>`.
//!
//! # Example
//!
//! ```
//! use dagfl_scenario::{Scale, SweepRunner, SweepSpec};
//!
//! let spec = SweepSpec::over_preset("alpha-demo", "smoke")
//!     .axis("execution.alpha", ["1", "10"])
//!     .axis("seed", ["42", "43"]);
//! let runner = SweepRunner::at_scale(spec, Scale::Quick)?;
//! assert_eq!(runner.cells().len(), 4);
//! let report = runner.run(2)?;
//! assert_eq!(report.cells.len(), 4);
//! # Ok::<(), dagfl_scenario::ScenarioError>(())
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dagfl_core::csv::{to_csv_string, write_csv};
use dagfl_core::{derive_seed, DelayModel, TipSelector};

use crate::presets::Scale;
use crate::runner::{RunReport, ScenarioRunner};
use crate::spec::{DatasetSpec, ExecutionSpec, Reader, Scenario, ScenarioError};
use crate::text::{Document, Value};

/// The longest expansion a single range axis may produce; a backstop
/// against `0..9999999999` typos, far above any real grid.
const MAX_RANGE_LEN: u64 = 10_000;

// ---------------------------------------------------------------------------
// Typed field paths
// ---------------------------------------------------------------------------

/// A sweepable scenario field, addressed by a typed path.
///
/// Each variant knows its canonical dotted path (used in `[axes]` keys,
/// CSV columns and error messages), which base scenarios it applies to,
/// and how to write a value into a [`Scenario`]. Unknown paths and axes
/// that target a field the base scenario's [`ExecutionSpec`] variant
/// (or dataset, or attack section) does not have are [`SweepSpec::validate`]
/// errors, never silent no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepField {
    /// Master seed (`seed`): dataset generator and simulation together,
    /// like [`Scenario::with_seed`].
    Seed,
    /// Replicate index (`replicate`): sets the master seed to
    /// `derive_seed(base seed, index)`, the canonical way to run
    /// seed-replicated grids (`replicate = 0..5`).
    Replicate,
    /// Walk randomness α (`execution.alpha`); requires a selector that
    /// has an α (accuracy or cumulative).
    Alpha,
    /// Round budget (`execution.rounds`); rounds mode only.
    Rounds,
    /// Active clients per round (`execution.clients_per_round`); rounds
    /// mode only.
    ClientsPerRound,
    /// Local epochs (`execution.local_epochs`).
    LocalEpochs,
    /// Local mini-batches per epoch (`execution.local_batches`).
    LocalBatches,
    /// Mini-batch size (`execution.batch_size`).
    BatchSize,
    /// SGD learning rate (`execution.learning_rate`).
    LearningRate,
    /// Foreign-cluster fraction (`dataset.relaxation`); fmnist only.
    Relaxation,
    /// Number of clients (`dataset.clients`); every dataset except
    /// poets (which sizes by `clients_per_language`).
    Clients,
    /// Samples per client (`dataset.samples`); every dataset except
    /// fedprox (which sizes by `min_samples`/`max_samples`).
    Samples,
    /// Poisoned-client fraction (`attack.fraction`); requires an attack.
    PoisonFraction,
    /// Total activations (`execution.activations`); async mode only.
    Activations,
    /// Mean activation gap (`execution.interarrival`); async mode only.
    Interarrival,
    /// Logical training duration (`execution.train_time`); async only.
    TrainTime,
    /// Base (fast-link) propagation delay (`execution.delay`); async
    /// only. Sets the constant delay, the jitter base or the cohorts
    /// fast-link delay, matching the `delay` key of scenario files.
    Delay,
}

/// All sweepable fields, in listing order.
const ALL_FIELDS: &[SweepField] = &[
    SweepField::Seed,
    SweepField::Replicate,
    SweepField::Alpha,
    SweepField::Rounds,
    SweepField::ClientsPerRound,
    SweepField::LocalEpochs,
    SweepField::LocalBatches,
    SweepField::BatchSize,
    SweepField::LearningRate,
    SweepField::Relaxation,
    SweepField::Clients,
    SweepField::Samples,
    SweepField::PoisonFraction,
    SweepField::Activations,
    SweepField::Interarrival,
    SweepField::TrainTime,
    SweepField::Delay,
];

impl SweepField {
    /// Resolves a field path or short alias (`alpha`, `lr`, ...).
    pub fn parse(word: &str) -> Option<Self> {
        ALL_FIELDS
            .iter()
            .copied()
            .find(|f| f.path() == word || f.short() == word)
            .or(match word {
                "lr" => Some(SweepField::LearningRate),
                "poison_fraction" => Some(SweepField::PoisonFraction),
                _ => None,
            })
    }

    /// The canonical dotted path (the `[axes]` key and CSV column name).
    pub fn path(&self) -> &'static str {
        match self {
            SweepField::Seed => "seed",
            SweepField::Replicate => "replicate",
            SweepField::Alpha => "execution.alpha",
            SweepField::Rounds => "execution.rounds",
            SweepField::ClientsPerRound => "execution.clients_per_round",
            SweepField::LocalEpochs => "execution.local_epochs",
            SweepField::LocalBatches => "execution.local_batches",
            SweepField::BatchSize => "execution.batch_size",
            SweepField::LearningRate => "execution.learning_rate",
            SweepField::Relaxation => "dataset.relaxation",
            SweepField::Clients => "dataset.clients",
            SweepField::Samples => "dataset.samples",
            SweepField::PoisonFraction => "attack.fraction",
            SweepField::Activations => "execution.activations",
            SweepField::Interarrival => "execution.interarrival",
            SweepField::TrainTime => "execution.train_time",
            SweepField::Delay => "execution.delay",
        }
    }

    /// The short name used in cell ids (`alpha=0.1,seed=42`).
    pub fn short(&self) -> &'static str {
        match self {
            SweepField::Seed => "seed",
            SweepField::Replicate => "replicate",
            SweepField::Alpha => "alpha",
            SweepField::Rounds => "rounds",
            SweepField::ClientsPerRound => "clients_per_round",
            SweepField::LocalEpochs => "epochs",
            SweepField::LocalBatches => "batches",
            SweepField::BatchSize => "batch_size",
            SweepField::LearningRate => "learning_rate",
            SweepField::Relaxation => "relaxation",
            SweepField::Clients => "clients",
            SweepField::Samples => "samples",
            SweepField::PoisonFraction => "fraction",
            SweepField::Activations => "activations",
            SweepField::Interarrival => "interarrival",
            SweepField::TrainTime => "train_time",
            SweepField::Delay => "delay",
        }
    }

    /// The scenario location two axes may not both target (`seed` and
    /// `replicate` collide on the master seed).
    fn target(&self) -> &'static str {
        match self {
            SweepField::Seed | SweepField::Replicate => "seed",
            other => other.path(),
        }
    }

    /// Whether values must be non-negative integers.
    fn is_integer(&self) -> bool {
        matches!(
            self,
            SweepField::Seed
                | SweepField::Replicate
                | SweepField::Rounds
                | SweepField::ClientsPerRound
                | SweepField::LocalEpochs
                | SweepField::LocalBatches
                | SweepField::BatchSize
                | SweepField::Clients
                | SweepField::Samples
                | SweepField::Activations
        )
    }

    /// Checks that the base scenario has this field at all.
    fn check_applies(&self, base: &Scenario) -> Result<(), ScenarioError> {
        let path = self.path();
        let fail = |reason: String| {
            Err(ScenarioError::Invalid(format!(
                "sweep axis `{path}` does not apply: {reason}"
            )))
        };
        match self {
            SweepField::Alpha => {
                if matches!(base.execution.dag().tip_selector, TipSelector::Random) {
                    return fail("the base scenario's random tip selector has no alpha".into());
                }
            }
            SweepField::Rounds | SweepField::ClientsPerRound => {
                if matches!(base.execution, ExecutionSpec::Async { .. }) {
                    return fail(format!(
                        "`{path}` needs rounds mode, the base scenario is async"
                    ));
                }
            }
            SweepField::Activations
            | SweepField::Interarrival
            | SweepField::TrainTime
            | SweepField::Delay => {
                if matches!(base.execution, ExecutionSpec::Rounds(_)) {
                    return fail(format!(
                        "`{path}` needs async mode, the base scenario uses rounds"
                    ));
                }
            }
            SweepField::Relaxation if !matches!(base.dataset, DatasetSpec::Fmnist { .. }) => {
                return fail(format!(
                    "only the fmnist dataset has a relaxation, the base uses `{}`",
                    base.dataset.kind()
                ));
            }
            SweepField::Clients => {
                if matches!(base.dataset, DatasetSpec::Poets { .. }) {
                    return fail("the poets dataset sizes by clients_per_language".into());
                }
            }
            SweepField::Samples => {
                if matches!(base.dataset, DatasetSpec::FedProx { .. }) {
                    return fail("the fedprox dataset sizes by min_samples/max_samples".into());
                }
            }
            SweepField::PoisonFraction if base.attack.is_none() => {
                return fail("the base scenario has no [attack] section".into());
            }
            _ => {}
        }
        Ok(())
    }

    /// Parses one raw token into this field's type (error-checking only).
    fn check_token(&self, token: &str) -> Result<(), ScenarioError> {
        let ok = if self.is_integer() {
            token.parse::<u64>().is_ok()
        } else {
            token.parse::<f64>().map(f64::is_finite).unwrap_or(false)
        };
        if ok {
            Ok(())
        } else {
            Err(ScenarioError::InvalidValue {
                key: format!("axes.{}", self.path()),
                value: token.to_string(),
                expected: if self.is_integer() {
                    "a non-negative integer".into()
                } else {
                    "a finite number".into()
                },
            })
        }
    }

    /// Writes one value into a cell scenario. The token was checked by
    /// [`SweepField::check_token`] and the base by
    /// [`SweepField::check_applies`].
    fn apply(&self, scenario: &mut Scenario, token: &str) -> Result<(), ScenarioError> {
        self.check_token(token)?;
        let int = || token.parse::<u64>().expect("checked integer token");
        let float = || token.parse::<f64>().expect("checked float token");
        match self {
            SweepField::Seed => {
                let seed = int();
                scenario.dataset.set_seed(seed);
                scenario.execution.dag_mut().seed = seed;
            }
            SweepField::Replicate => {
                let seed = derive_seed(scenario.execution.dag().seed, int());
                scenario.dataset.set_seed(seed);
                scenario.execution.dag_mut().seed = seed;
            }
            SweepField::Alpha => match &mut scenario.execution.dag_mut().tip_selector {
                TipSelector::Accuracy { alpha, .. } | TipSelector::CumulativeWeight { alpha } => {
                    *alpha = float() as f32;
                }
                TipSelector::Random => unreachable!("checked by check_applies"),
            },
            SweepField::Rounds => {
                if let ExecutionSpec::Rounds(dag) = &mut scenario.execution {
                    dag.rounds = int() as usize;
                }
            }
            SweepField::ClientsPerRound => {
                scenario.execution.dag_mut().clients_per_round = int() as usize;
            }
            SweepField::LocalEpochs => scenario.execution.dag_mut().local_epochs = int() as usize,
            SweepField::LocalBatches => scenario.execution.dag_mut().local_batches = int() as usize,
            SweepField::BatchSize => scenario.execution.dag_mut().batch_size = int() as usize,
            SweepField::LearningRate => {
                scenario.execution.dag_mut().learning_rate = float() as f32;
            }
            SweepField::Relaxation => {
                if let DatasetSpec::Fmnist { relaxation, .. } = &mut scenario.dataset {
                    *relaxation = float() as f32;
                }
            }
            SweepField::Clients => match &mut scenario.dataset {
                DatasetSpec::Fmnist { clients, .. }
                | DatasetSpec::FmnistStreamed { clients, .. }
                | DatasetSpec::FmnistAuthor { clients, .. }
                | DatasetSpec::Cifar { clients, .. }
                | DatasetSpec::FedProx { clients, .. } => *clients = int() as usize,
                DatasetSpec::Poets { .. } => unreachable!("checked by check_applies"),
            },
            SweepField::Samples => match &mut scenario.dataset {
                DatasetSpec::Fmnist { samples, .. }
                | DatasetSpec::FmnistStreamed { samples, .. }
                | DatasetSpec::FmnistAuthor { samples, .. }
                | DatasetSpec::Poets { samples, .. }
                | DatasetSpec::Cifar { samples, .. } => *samples = int() as usize,
                DatasetSpec::FedProx { .. } => unreachable!("checked by check_applies"),
            },
            SweepField::PoisonFraction => {
                if let Some(attack) = &mut scenario.attack {
                    attack.fraction = float();
                }
            }
            SweepField::Activations => {
                if let ExecutionSpec::Async { config, .. } = &mut scenario.execution {
                    config.total_activations = int() as usize;
                }
            }
            SweepField::Interarrival => {
                if let ExecutionSpec::Async { config, .. } = &mut scenario.execution {
                    config.mean_interarrival = float();
                }
            }
            SweepField::TrainTime => {
                if let ExecutionSpec::Async { config, .. } = &mut scenario.execution {
                    config.train_time = float();
                }
            }
            SweepField::Delay => {
                if let ExecutionSpec::Async { config, .. } = &mut scenario.execution {
                    match &mut config.delay {
                        DelayModel::Constant { delay } => *delay = float(),
                        DelayModel::UniformJitter { base, .. } => *base = float(),
                        DelayModel::Cohorts { fast, .. } => *fast = float(),
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The spec
// ---------------------------------------------------------------------------

/// One sweep axis: a field path (raw, resolved at validation) plus the
/// raw value tokens it takes, in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// The field path as authored (canonical path or short alias).
    pub field: String,
    /// The values, as raw number tokens (`"0.1"`, `"42"`). Raw tokens
    /// keep cell ids and CSV columns byte-stable.
    pub values: Vec<String>,
}

impl SweepAxis {
    /// Expands a half-open integer range (`start..end`) into raw value
    /// tokens, enforcing the shared `MAX_RANGE_LEN` backstop — the one
    /// range expansion both sweep files and the CLI `--axes` flag go
    /// through, so a typo'd `0..9999999999` is rejected instead of
    /// eagerly allocated.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] for empty or oversized ranges.
    pub fn range_tokens(field: &str, start: u64, end: u64) -> Result<Vec<String>, ScenarioError> {
        if start >= end {
            return Err(ScenarioError::Invalid(format!(
                "sweep axis `{field}`: range {start}..{end} is empty"
            )));
        }
        if end - start > MAX_RANGE_LEN {
            return Err(ScenarioError::Invalid(format!(
                "sweep axis `{field}`: range {start}..{end} expands to more than \
                 {MAX_RANGE_LEN} values"
            )));
        }
        Ok((start..end).map(|v| v.to_string()).collect())
    }
}

/// Where the base scenario of a sweep comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepBase {
    /// A preset name, resolved at the sweep's [`Scale`].
    Preset(String),
    /// A scenario file, loaded at expansion time.
    File(PathBuf),
    /// An inline scenario value (embedded in the sweep file; boxed to
    /// keep the enum small next to the name variants).
    Inline(Box<Scenario>),
}

/// A declarative parameter grid over one base scenario.
///
/// Built three equivalent ways — the fluent builder
/// ([`SweepSpec::over_preset`] + [`SweepSpec::axis`]), a sweep preset
/// name ([`SweepSpec::preset`]), or a TOML file
/// ([`SweepSpec::from_toml`]) — and executed by a [`SweepRunner`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (one line; prefixes cell scenario names and output
    /// files).
    pub name: String,
    /// The base scenario every cell starts from.
    pub base: SweepBase,
    /// The axes, in sweep order (last axis varies fastest).
    pub axes: Vec<SweepAxis>,
    /// Refuse to expand more than this many cells (`None` = unlimited).
    pub max_cells: Option<usize>,
    /// Write the cross-cell comparison CSV as
    /// `<results dir>/<name>.csv` (`DAGFL_RESULTS`, default `results/`).
    pub comparison_csv: Option<String>,
    /// Give every cell its own per-cell CSV series
    /// (`<sweep name>-<cell index>`).
    pub cell_csv: bool,
}

impl SweepSpec {
    /// Starts a sweep over a preset base.
    pub fn over_preset(name: impl Into<String>, preset: impl Into<String>) -> Self {
        Self::new(name, SweepBase::Preset(preset.into()))
    }

    /// Starts a sweep over a scenario file base.
    pub fn over_file(name: impl Into<String>, path: impl Into<PathBuf>) -> Self {
        Self::new(name, SweepBase::File(path.into()))
    }

    /// Starts a sweep over an inline scenario base.
    pub fn over_scenario(name: impl Into<String>, scenario: Scenario) -> Self {
        Self::new(name, SweepBase::Inline(Box::new(scenario)))
    }

    fn new(name: impl Into<String>, base: SweepBase) -> Self {
        Self {
            name: name.into(),
            base,
            axes: Vec::new(),
            max_cells: None,
            comparison_csv: None,
            cell_csv: false,
        }
    }

    /// Adds an axis (builder style). `field` is a [`SweepField`] path or
    /// alias; unknown fields surface in [`SweepSpec::validate`].
    pub fn axis<I, S>(mut self, field: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        self.axes.push(SweepAxis {
            field: field.into(),
            values: values.into_iter().map(|v| v.to_string()).collect(),
        });
        self
    }

    /// Adds an integer-range axis (builder style); `range` is half-open,
    /// like `replicate = 0..5` in sweep files.
    pub fn axis_range(self, field: impl Into<String>, range: std::ops::Range<u64>) -> Self {
        self.axis(field, range.map(|v| v.to_string()))
    }

    /// Caps the expansion size (builder style).
    pub fn with_max_cells(mut self, cap: usize) -> Self {
        self.max_cells = Some(cap);
        self
    }

    /// Requests the cross-cell comparison CSV (builder style).
    pub fn with_comparison_csv(mut self, name: impl Into<String>) -> Self {
        self.comparison_csv = Some(name.into());
        self
    }

    /// Enables per-cell CSV series (builder style).
    pub fn with_cell_csv(mut self, enabled: bool) -> Self {
        self.cell_csv = enabled;
        self
    }

    /// Resolves the raw axis fields, rejecting unknown paths, empty
    /// value lists and duplicate/conflicting axes.
    fn resolved_axes(&self) -> Result<Vec<(SweepField, &SweepAxis)>, ScenarioError> {
        if self.axes.is_empty() {
            return Err(ScenarioError::Invalid(
                "a sweep needs at least one axis (a zero-axis sweep is `dagfl run`)".into(),
            ));
        }
        let mut resolved: Vec<(SweepField, &SweepAxis)> = Vec::with_capacity(self.axes.len());
        for axis in &self.axes {
            let field =
                SweepField::parse(&axis.field).ok_or_else(|| ScenarioError::UnknownKey {
                    key: format!("axes.{}", axis.field),
                })?;
            if axis.values.is_empty() {
                return Err(ScenarioError::Invalid(format!(
                    "sweep axis `{}` has no values",
                    field.path()
                )));
            }
            if let Some((prev, prev_axis)) =
                resolved.iter().find(|(f, _)| f.target() == field.target())
            {
                return Err(ScenarioError::Invalid(format!(
                    "duplicate sweep axis for `{}`: `{}` and `{}` target the same field",
                    prev.path(),
                    prev_axis.field,
                    axis.field
                )));
            }
            resolved.push((field, axis));
        }
        Ok(resolved)
    }

    /// Resolves the base scenario at the given scale.
    fn resolve_base(&self, scale: Scale) -> Result<Scenario, ScenarioError> {
        match &self.base {
            SweepBase::Preset(name) => Scenario::preset_at(name, scale),
            SweepBase::File(path) => Scenario::load(path),
            SweepBase::Inline(scenario) => Ok(scenario.as_ref().clone()),
        }
    }

    /// Expands the grid into concrete, validated cells at the scale read
    /// from `DAGFL_FULL`.
    ///
    /// # Errors
    ///
    /// Returns the first spec or cell inconsistency.
    pub fn expand(&self) -> Result<Vec<SweepCell>, ScenarioError> {
        self.expand_at(Scale::from_env())
    }

    /// Expands the grid at an explicit scale. Cells come out in a
    /// deterministic order — axes as listed, the last axis varying
    /// fastest — independent of how they will later be scheduled.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency: unknown/duplicate/inapplicable
    /// axes, malformed values, an exceeded [`SweepSpec::max_cells`] cap,
    /// or a cell whose scenario fails [`Scenario::validate`].
    pub fn expand_at(&self, scale: Scale) -> Result<Vec<SweepCell>, ScenarioError> {
        if self.name.trim().is_empty() || self.name.contains('\n') {
            return Err(ScenarioError::Invalid(
                "sweep name must be a non-empty single line".into(),
            ));
        }
        let base = self.resolve_base(scale)?;
        base.validate()
            .map_err(|e| ScenarioError::Invalid(format!("sweep base scenario is invalid: {e}")))?;
        let axes = self.resolved_axes()?;
        for (field, axis) in &axes {
            field.check_applies(&base)?;
            for token in &axis.values {
                field.check_token(token)?;
            }
        }
        let mut total: usize = 1;
        for (_, axis) in &axes {
            total = total.checked_mul(axis.values.len()).ok_or_else(|| {
                ScenarioError::Invalid("sweep expansion overflows the cell counter".into())
            })?;
        }
        if let Some(cap) = self.max_cells {
            if total > cap {
                return Err(ScenarioError::Invalid(format!(
                    "sweep expands to {total} cells, exceeding max_cells ({cap})"
                )));
            }
        }
        let mut cells = Vec::with_capacity(total);
        for index in 0..total {
            // Mixed-radix odometer, last axis fastest.
            let mut digits = vec![0usize; axes.len()];
            let mut rem = index;
            for pos in (0..axes.len()).rev() {
                let len = axes[pos].1.values.len();
                digits[pos] = rem % len;
                rem /= len;
            }
            let mut scenario = base.clone();
            let mut values = Vec::with_capacity(axes.len());
            let mut id_parts = Vec::with_capacity(axes.len());
            for (pos, (field, axis)) in axes.iter().enumerate() {
                let token = &axis.values[digits[pos]];
                field.apply(&mut scenario, token)?;
                values.push((field.path().to_string(), token.clone()));
                id_parts.push(format!("{}={}", field.short(), token));
            }
            let id = id_parts.join(",");
            scenario.name = format!("{}/{}", self.name, id);
            if self.cell_csv {
                scenario.output.csv = Some(format!("{}-{index:03}", self.name));
            }
            scenario.validate().map_err(|e| {
                ScenarioError::Invalid(format!("sweep cell `{id}` is invalid: {e}"))
            })?;
            cells.push(SweepCell {
                index,
                id,
                values,
                scenario,
            });
        }
        Ok(cells)
    }

    /// Checks the complete spec by performing a full (quick-scale)
    /// expansion: base resolution, axis typing and compatibility,
    /// duplicate axes, the cell cap, and per-cell scenario validation.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found, naming the offending axis
    /// field path.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.expand_at(Scale::Quick).map(|_| ())
    }

    /// Serializes the sweep as TOML-subset text; the exact inverse of
    /// [`SweepSpec::from_toml`].
    pub fn to_toml(&self) -> String {
        let mut doc = Document::default();
        doc.root.set("name", Value::Str(self.name.clone()));
        {
            let sweep = doc.section_mut("sweep");
            match &self.base {
                SweepBase::Preset(preset) => sweep.set("preset", Value::Str(preset.clone())),
                SweepBase::File(path) => {
                    sweep.set("scenario", Value::Str(path.display().to_string()));
                }
                SweepBase::Inline(scenario) => {
                    sweep.set("scenario_name", Value::Str(scenario.name.clone()));
                }
            }
            if let Some(cap) = self.max_cells {
                sweep.set("max_cells", Value::Number(cap.to_string()));
            }
            if let Some(csv) = &self.comparison_csv {
                sweep.set("comparison_csv", Value::Str(csv.clone()));
            }
            sweep.set("cell_csv", Value::Bool(self.cell_csv));
        }
        if let SweepBase::Inline(scenario) = &self.base {
            let base_doc =
                Document::parse(&scenario.to_toml()).expect("scenario TOML always reparses");
            for section in [
                "dataset",
                "model",
                "execution",
                "attack",
                "analysis",
                "output",
            ] {
                if let Some(table) = base_doc.section(section) {
                    *doc.section_mut(section) = table.clone();
                }
            }
        }
        {
            let axes = doc.section_mut("axes");
            for axis in &self.axes {
                axes.set(&axis.field, Value::NumberList(axis.values.clone()));
            }
        }
        doc.to_text()
    }

    /// Parses a sweep from TOML-subset text: a root `name`, a `[sweep]`
    /// section naming the base (`preset`, `scenario` file path, or
    /// `scenario_name` plus inline scenario sections) and an `[axes]`
    /// section mapping field paths to value arrays or integer ranges.
    /// The result is *not* yet validated — call [`SweepSpec::validate`]
    /// (or hand it to [`SweepRunner::new`], which does).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the first problem.
    pub fn from_toml(text: &str) -> Result<Self, ScenarioError> {
        let doc = Document::parse(text).map_err(|e| ScenarioError::Parse {
            line: e.line,
            message: e.message,
        })?;
        for section in doc.section_names() {
            if !matches!(
                section,
                "sweep"
                    | "axes"
                    | "dataset"
                    | "model"
                    | "execution"
                    | "attack"
                    | "analysis"
                    | "output"
            ) {
                return Err(ScenarioError::UnknownKey {
                    key: format!("[{section}]"),
                });
            }
        }
        let root = Reader::new("", Some(&doc.root));
        let name = root.req_str("name")?;
        root.finish()?;
        let sweep_table = doc.section("sweep").ok_or(ScenarioError::MissingKey {
            key: "[sweep]".into(),
        })?;
        let reader = Reader::new("sweep", Some(sweep_table));
        let preset = reader.str("preset")?;
        let file = reader.str("scenario")?;
        let inline_name = reader.str("scenario_name")?;
        let max_cells = reader.number::<usize>("max_cells", "a positive integer")?;
        let comparison_csv = reader.str("comparison_csv")?;
        let cell_csv = reader.bool_or("cell_csv", false)?;
        reader.finish()?;
        let has_scenario_sections = [
            "dataset",
            "model",
            "execution",
            "attack",
            "analysis",
            "output",
        ]
        .iter()
        .any(|s| doc.section(s).is_some());
        let base = match (preset, file, inline_name) {
            (Some(preset), None, None) => {
                if has_scenario_sections {
                    return Err(ScenarioError::Invalid(
                        "inline scenario sections are only allowed with `sweep.scenario_name`"
                            .into(),
                    ));
                }
                SweepBase::Preset(preset)
            }
            (None, Some(path), None) => {
                if has_scenario_sections {
                    return Err(ScenarioError::Invalid(
                        "inline scenario sections are only allowed with `sweep.scenario_name`"
                            .into(),
                    ));
                }
                SweepBase::File(PathBuf::from(path))
            }
            (None, None, Some(scenario_name)) => {
                let mut base_doc = Document::default();
                base_doc.root.set("name", Value::Str(scenario_name));
                for section in [
                    "dataset",
                    "model",
                    "execution",
                    "attack",
                    "analysis",
                    "output",
                ] {
                    if let Some(table) = doc.section(section) {
                        *base_doc.section_mut(section) = table.clone();
                    }
                }
                SweepBase::Inline(Box::new(Scenario::from_toml(&base_doc.to_text())?))
            }
            _ => {
                return Err(ScenarioError::Invalid(
                    "the [sweep] section needs exactly one of `preset`, `scenario` or \
                     `scenario_name` (with inline scenario sections)"
                        .into(),
                ))
            }
        };
        let axes_table = doc.section("axes").ok_or(ScenarioError::MissingKey {
            key: "[axes]".into(),
        })?;
        let mut axes = Vec::new();
        for (key, value) in axes_table.iter() {
            let values = match value {
                Value::NumberList(items) => items.clone(),
                Value::Range(start, end) => SweepAxis::range_tokens(
                    key,
                    start.parse::<u64>().expect("parser checked"),
                    end.parse::<u64>().expect("parser checked"),
                )?,
                other => {
                    return Err(ScenarioError::InvalidValue {
                        key: format!("axes.{key}"),
                        value: match other {
                            Value::Str(s) => s.clone(),
                            Value::Number(n) => n.clone(),
                            Value::Bool(b) => b.to_string(),
                            _ => unreachable!("list and range handled above"),
                        },
                        expected: "an array of numbers or an integer range".into(),
                    })
                }
            };
            axes.push(SweepAxis {
                field: key.to_string(),
                values,
            });
        }
        Ok(SweepSpec {
            name,
            base,
            axes,
            max_cells,
            comparison_csv,
            cell_csv,
        })
    }

    /// Reads and parses a sweep file.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] on read failures and parse errors
    /// otherwise.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("reading {}: {e}", path.display())))?;
        let mut spec = Self::from_toml(&text)?;
        // A relative `scenario = "base.toml"` refers to a sibling of the
        // sweep file, not of the process working directory — anchor it,
        // so file-based sweeps are portable.
        if let SweepBase::File(base) = &mut spec.base {
            if base.is_relative() {
                if let Some(parent) = path.parent() {
                    *base = parent.join(&*base);
                }
            }
        }
        Ok(spec)
    }

    /// Writes the sweep as a TOML file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] on write failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ScenarioError::Io(format!("creating {}: {e}", parent.display())))?;
        }
        std::fs::write(path, self.to_toml())
            .map_err(|e| ScenarioError::Io(format!("writing {}: {e}", path.display())))
    }
}

// ---------------------------------------------------------------------------
// Expansion and execution
// ---------------------------------------------------------------------------

/// One concrete grid point: a fully resolved, validated scenario plus
/// the axis coordinates that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position in the deterministic expansion order.
    pub index: usize,
    /// Human-readable coordinates (`alpha=0.1,seed=42`).
    pub id: String,
    /// `(canonical field path, raw value token)` pairs, in axis order.
    pub values: Vec<(String, String)>,
    /// The cell's scenario (base plus this cell's axis values).
    pub scenario: Scenario,
}

/// One executed cell: its coordinates plus the run's [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellReport {
    /// Position in the deterministic expansion order.
    pub index: usize,
    /// Human-readable coordinates (`alpha=0.1,seed=42`).
    pub id: String,
    /// `(canonical field path, raw value token)` pairs, in axis order.
    pub values: Vec<(String, String)>,
    /// The cell's full run report.
    pub report: RunReport,
}

/// The aggregate result of a sweep: every cell's report in expansion
/// order plus the cross-cell comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The sweep name.
    pub name: String,
    /// Canonical axis field paths, in sweep order.
    pub axes: Vec<String>,
    /// Per-cell reports, in expansion order (independent of scheduling).
    pub cells: Vec<SweepCellReport>,
    /// Where the comparison CSV was written, if requested.
    pub comparison_csv: Option<PathBuf>,
}

impl SweepReport {
    /// The comparison-table header: `cell`, one column per axis, then
    /// the shared headline metrics (async columns are empty for rounds
    /// cells).
    pub fn comparison_header(&self) -> Vec<String> {
        let mut header = vec!["cell".to_string()];
        header.extend(self.axes.iter().cloned());
        header.extend(
            [
                "mode",
                "progress",
                "recent_accuracy",
                "pureness",
                "modularity",
                "partitions",
                "misclassification",
                "transactions",
                "tips",
                "activation_rate",
                "publish_fraction",
                "stale_fraction",
                "mean_publish_latency",
                "delivered",
                "dropped",
                "duplicated",
                "fresh_evals",
                "cached_evals",
            ]
            .map(String::from),
        );
        // The analysis column group exists only when at least one cell
        // ran with `[analysis]`, so pre-analysis sweep CSVs stay
        // byte-identical.
        if self.has_analysis() {
            header.extend(
                [
                    "analysis_k",
                    "analysis_silhouette",
                    "analysis_purity",
                    "analysis_ari",
                    "analysis_communities",
                    "analysis_modularity",
                    "analysis_agreement",
                ]
                .map(String::from),
            );
        }
        header
    }

    /// Whether any cell carries an analytics snapshot (and the
    /// comparison table therefore its analysis column group).
    pub fn has_analysis(&self) -> bool {
        self.cells.iter().any(|c| c.report.analysis.is_some())
    }

    /// The comparison-table rows, one per cell in expansion order. All
    /// values format deterministically, so the table is byte-identical
    /// for any worker count.
    pub fn comparison_rows(&self) -> Vec<Vec<String>> {
        self.cells
            .iter()
            .map(|cell| {
                let r = &cell.report;
                let mut row = vec![cell.id.clone()];
                for path in &self.axes {
                    let token = cell
                        .values
                        .iter()
                        .find(|(p, _)| p == path)
                        .map(|(_, t)| t.clone())
                        .unwrap_or_default();
                    row.push(token);
                }
                row.push(r.mode.to_string());
                row.push(r.progress.to_string());
                row.push(format!("{:.4}", r.recent_accuracy));
                row.push(format!("{:.4}", r.specialization.approval_pureness));
                row.push(format!("{:.4}", r.specialization.modularity));
                row.push(r.specialization.partitions.to_string());
                row.push(format!("{:.4}", r.specialization.misclassification));
                row.push(r.tangle.transactions.to_string());
                row.push(r.tangle.tips.to_string());
                match &r.async_metrics {
                    Some(m) => {
                        row.push(format!("{:.4}", m.activation_rate()));
                        row.push(format!("{:.4}", m.publish_fraction()));
                        row.push(format!("{:.4}", m.stale_fraction()));
                        row.push(format!("{:.4}", m.mean_publish_latency));
                        row.push(m.delivered.to_string());
                        row.push(m.dropped.to_string());
                        row.push(m.duplicated.to_string());
                    }
                    None => row.extend(std::iter::repeat(String::new()).take(7)),
                }
                row.push(r.fresh_evaluations.to_string());
                row.push(r.cached_evaluations.to_string());
                if self.has_analysis() {
                    match &r.analysis {
                        Some(s) => {
                            match &s.parameters {
                                Some(p) => {
                                    row.push(p.k.to_string());
                                    row.push(format!("{:.4}", p.silhouette));
                                    row.push(format!("{:.4}", p.purity));
                                    row.push(format!("{:.4}", p.ari));
                                }
                                None => row.extend(std::iter::repeat(String::new()).take(4)),
                            }
                            match &s.graph {
                                Some(g) => {
                                    row.push(g.community_count.to_string());
                                    row.push(format!("{:.4}", g.modularity));
                                }
                                None => row.extend(std::iter::repeat(String::new()).take(2)),
                            }
                            row.push(
                                s.agreement_ari
                                    .map_or_else(String::new, |a| format!("{a:.4}")),
                            );
                        }
                        None => row.extend(std::iter::repeat(String::new()).take(7)),
                    }
                }
                row
            })
            .collect()
    }

    /// The comparison table as CSV text (what the comparison file
    /// holds).
    pub fn comparison_csv_text(&self) -> String {
        let header = self.comparison_header();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        to_csv_string(&header_refs, &self.comparison_rows())
    }

    /// A multi-line human-readable summary (what `dagfl sweep` prints).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep {}: {} cells over [{}]",
            self.name,
            self.cells.len(),
            self.axes.join(", ")
        );
        for cell in &self.cells {
            let r = &cell.report;
            let _ = write!(
                out,
                "  {:<32} accuracy {:.4} pureness {:.3} ({} {}",
                cell.id,
                r.recent_accuracy,
                r.specialization.approval_pureness,
                r.progress,
                if r.mode == "async" {
                    "activations"
                } else {
                    "rounds"
                },
            );
            let _ = match &r.async_metrics {
                Some(m) => writeln!(out, ", rate {:.3}/t)", m.activation_rate()),
                None => writeln!(out, ")"),
            };
        }
        if let Some(path) = &self.comparison_csv {
            let _ = writeln!(out, "comparison written to {}", path.display());
        }
        out
    }

    fn write_comparison_csv(&self, name: &str) -> Result<PathBuf, ScenarioError> {
        let dir = std::env::var("DAGFL_RESULTS")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        let path = dir.join(format!("{name}.csv"));
        let header = self.comparison_header();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        write_csv(&path, &header_refs, &self.comparison_rows())
            .map_err(|e| ScenarioError::Io(format!("writing {}: {e}", path.display())))?;
        Ok(path)
    }
}

/// Validates a [`SweepSpec`] and executes its cells on a pool of scoped
/// worker threads.
///
/// Workers pull cell indices from a shared atomic counter, so `jobs`
/// only controls wall-clock parallelism: every cell is a self-contained
/// deterministic scenario run, results are re-assembled in expansion
/// order, and the resulting [`SweepReport`] (and comparison CSV) is
/// byte-identical for `--jobs 1` and `--jobs N`.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    spec: SweepSpec,
    cells: Vec<SweepCell>,
}

impl SweepRunner {
    /// Validates the spec (at the `DAGFL_FULL` scale), expands the grid
    /// once and wraps both for execution.
    ///
    /// # Errors
    ///
    /// Returns the first [`SweepSpec::validate`]-style inconsistency.
    pub fn new(spec: SweepSpec) -> Result<Self, ScenarioError> {
        Self::at_scale(spec, Scale::from_env())
    }

    /// Validates and expands at an explicit scale. The expansion is
    /// captured here, so later [`SweepRunner::run`] calls execute
    /// exactly the cells that were validated — a file base edited or
    /// deleted in between cannot change (or fail) the run.
    ///
    /// # Errors
    ///
    /// Returns the first expansion inconsistency.
    pub fn at_scale(spec: SweepSpec, scale: Scale) -> Result<Self, ScenarioError> {
        let cells = spec.expand_at(scale)?;
        Ok(Self { spec, cells })
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The expanded cells, in deterministic order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Runs every cell on `jobs` worker threads and aggregates the
    /// reports (clamped to at least 1 and at most the cell count).
    ///
    /// # Errors
    ///
    /// Propagates the first failing cell (by expansion order), naming
    /// its id.
    pub fn run(&self, jobs: usize) -> Result<SweepReport, ScenarioError> {
        let cells = &self.cells;
        let n = cells.len();
        let jobs = jobs.clamp(1, n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunReport, ScenarioError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    if index >= n {
                        break;
                    }
                    let mut scenario = cells[index].scenario.clone();
                    if jobs > 1 {
                        // Cell-level workers already saturate the cores;
                        // stacking the per-round client fan-out on top
                        // would oversubscribe them. Safe to disable: the
                        // parallel round path is bit-deterministic
                        // against the sequential one (pinned by the
                        // RunReport-equality regression test).
                        scenario.execution.dag_mut().parallel = false;
                    }
                    let outcome = ScenarioRunner::new(scenario).and_then(|runner| runner.run());
                    *slots[index].lock().expect("cell slot lock") = Some(outcome);
                });
            }
        });
        let mut reports = Vec::with_capacity(n);
        for (cell, slot) in cells.iter().zip(slots) {
            let report = slot
                .into_inner()
                .expect("cell slot lock")
                .expect("every cell index was claimed by a worker")
                .map_err(|e| {
                    ScenarioError::Invalid(format!("sweep cell `{}` failed: {e}", cell.id))
                })?;
            reports.push(SweepCellReport {
                index: cell.index,
                id: cell.id.clone(),
                values: cell.values.clone(),
                report,
            });
        }
        let axes = self
            .spec
            .resolved_axes()
            .expect("spec validated at construction")
            .iter()
            .map(|(field, _)| field.path().to_string())
            .collect();
        let mut report = SweepReport {
            name: self.spec.name.clone(),
            axes,
            cells: reports,
            comparison_csv: None,
        };
        if let Some(csv) = &self.spec.comparison_csv {
            report.comparison_csv = Some(report.write_comparison_csv(csv)?);
        }
        Ok(report)
    }
}

/// Whether TOML text is a sweep spec (it holds a real `[sweep]`
/// section) rather than a plain scenario — the one classifier shared by
/// `dagfl scenarios --check` and the integration tests, so the two
/// front doors can never disagree. Comments or strings that merely
/// mention `[sweep]` do not count.
pub fn is_sweep_toml(text: &str) -> bool {
    Document::parse(text)
        .map(|doc| doc.section("sweep").is_some())
        .unwrap_or(false)
}

// ---------------------------------------------------------------------------
// The sweep preset registry
// ---------------------------------------------------------------------------

/// The canonical sweep preset names with one-line descriptions, in
/// listing order. The checked-in `scenarios/sweep-*.toml` files are
/// dumps of these specs (regenerated by `dagfl scenarios --dump`).
pub const SWEEP_PRESET_NAMES: &[(&str, &str)] = &[
    (
        "sweep-smoke",
        "2-cell seed sweep over the smoke scenario (CI smoke test, seconds)",
    ),
    (
        "sweep-fig05-alpha",
        "Figure 5: alpha in {1, 10, 100} with tracked cluster metrics",
    ),
    (
        "sweep-fig06-alpha",
        "Figure 6: alpha in {0.1, 1, 10, 100}, simple normalization",
    ),
    (
        "sweep-fig07-alpha",
        "Figure 7: alpha in {0.1, 1, 10, 100}, dynamic normalization",
    ),
    (
        "sweep-fig08-alpha",
        "Figure 8: alpha in {0.1, 1, 10, 100} on relaxed clusters",
    ),
    (
        "sweep-poisoning-fraction",
        "Figures 12-14: poisoned-client fraction in {0, 0.2, 0.3}",
    ),
    (
        "sweep-async-delay",
        "async link delay in {0, 2, 10} at the round-matched budget",
    ),
];

fn build_preset(name: &str) -> Option<SweepSpec> {
    let alpha_sweep = |base: &str, alphas: &[&str]| {
        SweepSpec::over_preset(name, base)
            .axis("execution.alpha", alphas.iter().copied())
            .with_comparison_csv(name.replace('-', "_"))
    };
    match name {
        "sweep-smoke" => Some(
            SweepSpec::over_preset(name, "smoke")
                .axis("seed", ["42", "43"])
                .with_comparison_csv("sweep_smoke"),
        ),
        "sweep-fig05-alpha" => Some(alpha_sweep("fig05-alpha10", &["1", "10", "100"])),
        "sweep-fig06-alpha" => Some(alpha_sweep("fig06-alpha10", &["0.1", "1", "10", "100"])),
        "sweep-fig07-alpha" => Some(alpha_sweep("fig07-alpha10", &["0.1", "1", "10", "100"])),
        "sweep-fig08-alpha" => Some(alpha_sweep("fig08-alpha10", &["0.1", "1", "10", "100"])),
        "sweep-poisoning-fraction" => Some(
            SweepSpec::over_preset(name, "poisoning-p0.2")
                .axis("attack.fraction", ["0.0", "0.2", "0.3"])
                .with_comparison_csv("sweep_poisoning_fraction"),
        ),
        "sweep-async-delay" => Some(
            SweepSpec::over_preset(name, "async-delay2")
                .axis("execution.delay", ["0.0", "2.0", "10.0"])
                .with_comparison_csv("sweep_async_delay"),
        ),
        _ => None,
    }
}

impl SweepSpec {
    /// Resolves a sweep preset by name.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownPreset`] for unregistered names.
    pub fn preset(name: &str) -> Result<SweepSpec, ScenarioError> {
        build_preset(name).ok_or_else(|| ScenarioError::UnknownPreset(name.to_string()))
    }

    /// The canonical sweep preset names with one-line descriptions.
    pub fn preset_names() -> &'static [(&'static str, &'static str)] {
        SWEEP_PRESET_NAMES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn smoke_scenario() -> Scenario {
        Scenario::preset_at("smoke", Scale::Quick).unwrap()
    }

    fn tiny_sweep() -> SweepSpec {
        SweepSpec::over_scenario("tiny-sweep", smoke_scenario())
            .axis("execution.alpha", ["1", "10"])
            .axis("seed", ["42", "43"])
    }

    #[test]
    fn expansion_is_a_deterministic_cross_product() {
        let cells = tiny_sweep().expand_at(Scale::Quick).unwrap();
        assert_eq!(cells.len(), 4);
        // Last axis fastest.
        let ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "alpha=1,seed=42",
                "alpha=1,seed=43",
                "alpha=10,seed=42",
                "alpha=10,seed=43"
            ]
        );
        assert_eq!(cells[3].index, 3);
        assert_eq!(cells[3].scenario.dataset.seed(), 43);
        assert_eq!(cells[3].scenario.execution.dag().seed, 43);
        match cells[3].scenario.execution.dag().tip_selector {
            TipSelector::Accuracy { alpha, .. } => assert_eq!(alpha, 10.0),
            ref other => panic!("unexpected selector {other:?}"),
        }
        // Cell names carry the sweep context.
        assert_eq!(cells[0].scenario.name, "tiny-sweep/alpha=1,seed=42");
        // Expansion is pure.
        assert_eq!(cells, tiny_sweep().expand_at(Scale::Quick).unwrap());
    }

    #[test]
    fn replicate_axis_derives_independent_seeds() {
        let cells = SweepSpec::over_scenario("rep", smoke_scenario())
            .axis_range("replicate", 0..3)
            .expand_at(Scale::Quick)
            .unwrap();
        assert_eq!(cells.len(), 3);
        let base_seed = smoke_scenario().execution.dag().seed;
        for (k, cell) in cells.iter().enumerate() {
            assert_eq!(
                cell.scenario.execution.dag().seed,
                derive_seed(base_seed, k as u64)
            );
            assert_eq!(
                cell.scenario.dataset.seed(),
                derive_seed(base_seed, k as u64)
            );
        }
    }

    #[test]
    fn unknown_and_duplicate_axes_are_rejected_with_the_field_path() {
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .axis("warp_factor", ["1"])
            .validate()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnknownKey { ref key } if key == "axes.warp_factor"),
            "{err}"
        );
        // The same field twice, via an alias.
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .axis("execution.alpha", ["1"])
            .axis("alpha", ["10"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("execution.alpha"), "{err}");
        assert!(err.to_string().contains("duplicate"), "{err}");
        // seed and replicate target the same master seed.
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .axis("seed", ["1"])
            .axis("replicate", ["0"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn inapplicable_axes_are_rejected_with_the_field_path() {
        // Async field on a rounds base.
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .axis("execution.delay", ["1.0"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("execution.delay"), "{err}");
        assert!(err.to_string().contains("async"), "{err}");
        // Rounds field on an async base.
        let err = SweepSpec::over_preset("bad", "async-delay2")
            .axis("execution.rounds", ["5"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("execution.rounds"), "{err}");
        // Attack field without an attack.
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .axis("attack.fraction", ["0.1"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("attack.fraction"), "{err}");
        // Alpha on a random selector.
        let mut random = smoke_scenario();
        random.execution.dag_mut().tip_selector = TipSelector::Random;
        let err = SweepSpec::over_scenario("bad", random)
            .axis("alpha", ["1"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("execution.alpha"), "{err}");
        // Relaxation on a non-fmnist dataset.
        let mut author = smoke_scenario();
        author.dataset = DatasetSpec::FmnistAuthor {
            clients: 4,
            samples: 30,
            seed: 42,
        };
        let err = SweepSpec::over_scenario("bad", author)
            .axis("dataset.relaxation", ["0.1"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("dataset.relaxation"), "{err}");
    }

    #[test]
    fn empty_axes_bad_tokens_and_caps_are_rejected() {
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("at least one axis"), "{err}");
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .axis("alpha", Vec::<String>::new())
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("no values"), "{err}");
        // An integer field rejects float tokens.
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .axis("seed", ["1.5"])
            .validate()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::InvalidValue { ref key, .. } if key == "axes.seed"),
            "{err}"
        );
        // The cell cap refuses oversized grids.
        let err = tiny_sweep().with_max_cells(3).validate().unwrap_err();
        assert!(err.to_string().contains("max_cells"), "{err}");
        assert!(tiny_sweep().with_max_cells(4).validate().is_ok());
    }

    #[test]
    fn invalid_cells_name_their_coordinates() {
        // alpha = 0 fails DagConfig range checks only after application.
        let err = SweepSpec::over_scenario("bad", smoke_scenario())
            .axis("alpha", ["-1"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("alpha=-1"), "{err}");
    }

    #[test]
    fn toml_round_trips_every_base_shape() {
        let cases = vec![
            tiny_sweep(),
            SweepSpec::over_preset("over-preset", "smoke")
                .axis("seed", ["1", "2"])
                .with_max_cells(8)
                .with_comparison_csv("cmp")
                .with_cell_csv(true),
            SweepSpec::over_file("over-file", "scenarios/smoke.toml").axis("alpha", ["1"]),
        ];
        for spec in cases {
            let text = spec.to_toml();
            let reparsed = SweepSpec::from_toml(&text)
                .unwrap_or_else(|e| panic!("reparsing `{}` failed: {e}\n{text}", spec.name));
            assert_eq!(spec, reparsed, "{text}");
        }
    }

    #[test]
    fn toml_ranges_expand_to_value_lists() {
        let spec = SweepSpec::from_toml(
            "name = \"r\"\n[sweep]\npreset = \"smoke\"\n[axes]\nreplicate = 0..3\n",
        )
        .unwrap();
        assert_eq!(spec.axes[0].values, ["0", "1", "2"]);
        // Builder ranges expand identically, so the round trip stays exact.
        let built = SweepSpec::over_preset("r", "smoke").axis_range("replicate", 0..3);
        assert_eq!(spec.axes, built.axes);
    }

    #[test]
    fn malformed_sweep_files_are_rejected() {
        // Missing [sweep].
        let err = SweepSpec::from_toml("name = \"x\"\n[axes]\nseed = [1]\n").unwrap_err();
        assert!(
            matches!(err, ScenarioError::MissingKey { ref key } if key == "[sweep]"),
            "{err}"
        );
        // Missing [axes].
        let err = SweepSpec::from_toml("name = \"x\"\n[sweep]\npreset = \"smoke\"\n").unwrap_err();
        assert!(
            matches!(err, ScenarioError::MissingKey { ref key } if key == "[axes]"),
            "{err}"
        );
        // Two bases at once.
        let err = SweepSpec::from_toml(
            "name = \"x\"\n[sweep]\npreset = \"a\"\nscenario = \"b\"\n[axes]\nseed = [1]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
        // Scenario sections without an inline base.
        let err = SweepSpec::from_toml(
            "name = \"x\"\n[sweep]\npreset = \"smoke\"\n[dataset]\nkind = \"fmnist\"\n\
             [axes]\nseed = [1]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("scenario_name"), "{err}");
        // Unknown section and unknown [sweep] key.
        let err = SweepSpec::from_toml(
            "name = \"x\"\n[sweep]\npreset = \"smoke\"\n[axes]\nseed = [1]\n[extra]\nk = 1\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnknownKey { ref key } if key == "[extra]"),
            "{err}"
        );
        let err = SweepSpec::from_toml(
            "name = \"x\"\n[sweep]\npreset = \"smoke\"\npresett = \"y\"\n[axes]\nseed = [1]\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnknownKey { ref key } if key == "sweep.presett"),
            "{err}"
        );
        // A non-list axis value.
        let err = SweepSpec::from_toml(
            "name = \"x\"\n[sweep]\npreset = \"smoke\"\n[axes]\nseed = \"many\"\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, ScenarioError::InvalidValue { ref key, .. } if key == "axes.seed"),
            "{err}"
        );
        // An empty range.
        let err = SweepSpec::from_toml(
            "name = \"x\"\n[sweep]\npreset = \"smoke\"\n[axes]\nseed = 5..5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("dagfl_sweep_io_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/tiny.toml");
        let spec = tiny_sweep();
        spec.save(&path).unwrap();
        assert_eq!(SweepSpec::load(&path).unwrap(), spec);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            SweepSpec::load(dir.join("missing.toml")).unwrap_err(),
            ScenarioError::Io(_)
        ));
    }

    #[test]
    fn file_base_resolves_at_expansion_time() {
        let dir = std::env::temp_dir().join("dagfl_sweep_file_base_test");
        let _ = std::fs::remove_dir_all(&dir);
        let base_path = dir.join("base.toml");
        smoke_scenario().save(&base_path).unwrap();
        let spec = SweepSpec::over_file("file-base", &base_path).axis("seed", ["1", "2"]);
        let cells = spec.expand_at(Scale::Quick).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scenario.dataset.seed(), 1);
        // A runner captures the expansion at construction, so deleting
        // the base file afterwards neither changes nor fails the run.
        let runner = SweepRunner::at_scale(spec.clone(), Scale::Quick).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            spec.expand_at(Scale::Quick).unwrap_err(),
            ScenarioError::Io(_)
        ));
        assert_eq!(runner.cells().len(), 2);
        assert_eq!(runner.run(1).unwrap().cells.len(), 2);
    }

    #[test]
    fn loaded_relative_file_bases_anchor_to_the_sweep_file() {
        // `scenario = "base.toml"` in a sweep file means a sibling of
        // that file, wherever the process happens to run from.
        let dir = std::env::temp_dir().join("dagfl_sweep_relative_base_test");
        let _ = std::fs::remove_dir_all(&dir);
        smoke_scenario().save(dir.join("base.toml")).unwrap();
        let sweep_path = dir.join("sweep.toml");
        SweepSpec::over_file("relative", "base.toml")
            .axis("seed", ["1"])
            .save(&sweep_path)
            .unwrap();
        let spec = SweepSpec::load(&sweep_path).unwrap();
        assert_eq!(spec.base, SweepBase::File(dir.join("base.toml")));
        assert_eq!(spec.expand_at(Scale::Quick).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn is_sweep_toml_requires_a_real_sweep_section() {
        assert!(is_sweep_toml(
            "name = \"x\"\n[sweep]\npreset = \"smoke\"\n[axes]\nseed = [1]\n"
        ));
        // Mentions in comments or strings do not count.
        assert!(!is_sweep_toml(
            "# migrated from [sweep] format\nname = \"x\"\n"
        ));
        assert!(!is_sweep_toml("name = \"a [sweep] b\"\n"));
        assert!(!is_sweep_toml("not toml at all"));
    }

    #[test]
    fn run_aggregates_cells_in_expansion_order() {
        let spec = SweepSpec::over_scenario("order", smoke_scenario()).axis("seed", ["42", "43"]);
        let report = SweepRunner::at_scale(spec, Scale::Quick)
            .unwrap()
            .run(1)
            .unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].id, "seed=42");
        assert_eq!(report.cells[1].id, "seed=43");
        assert_eq!(report.axes, ["seed"]);
        // Different seeds actually produced different runs.
        assert_ne!(
            report.cells[0].report.round_accuracy,
            report.cells[1].report.round_accuracy
        );
        assert!(report.summary().contains("seed=43"));
    }

    #[test]
    fn worker_count_does_not_change_the_report_or_the_csv() {
        // The acceptance grid: >= 4 cells, --jobs 1 vs --jobs 2,
        // byte-identical comparison CSVs.
        let runner = SweepRunner::at_scale(tiny_sweep(), Scale::Quick).unwrap();
        let serial = runner.run(1).unwrap();
        let pooled = runner.run(2).unwrap();
        assert_eq!(serial, pooled);
        let a = serial.comparison_csv_text();
        let b = pooled.comparison_csv_text();
        assert_eq!(a.as_bytes(), b.as_bytes());
        // The table has one row per cell plus the header.
        assert_eq!(a.lines().count(), 5);
        assert!(
            a.starts_with("cell,execution.alpha,seed,mode,progress,"),
            "{a}"
        );
    }

    #[test]
    fn oversized_jobs_clamp_to_the_cell_count() {
        let spec = SweepSpec::over_scenario("clamp", smoke_scenario()).axis("seed", ["42"]);
        let report = SweepRunner::at_scale(spec, Scale::Quick)
            .unwrap()
            .run(64)
            .unwrap();
        assert_eq!(report.cells.len(), 1);
    }

    #[test]
    fn cell_csv_names_follow_the_expansion_index() {
        let cells = tiny_sweep()
            .with_cell_csv(true)
            .expand_at(Scale::Quick)
            .unwrap();
        assert_eq!(
            cells[0].scenario.output.csv.as_deref(),
            Some("tiny-sweep-000")
        );
        assert_eq!(
            cells[3].scenario.output.csv.as_deref(),
            Some("tiny-sweep-003")
        );
    }

    #[test]
    fn zero_activation_async_reports_format_without_nan() {
        // An async run whose horizon elapses before any activation:
        // every AsyncMetrics rate guard returns 0.0, and neither the
        // human summary nor the sweep comparison CSV may leak a NaN.
        use crate::runner::DatasetSummary;
        use dagfl_core::{AsyncMetrics, SpecializationMetrics};
        use dagfl_tangle::TangleStats;
        let metrics = AsyncMetrics {
            activations: 0,
            publications: 0,
            discarded_stale: 0,
            reselections: 0,
            elapsed: 0.0,
            mean_publish_latency: 0.0,
            max_publish_latency: 0.0,
            staleness_histogram: [0; 3],
            mean_confirmation_depth: 0.0,
            tips: 1,
            transactions: 1,
            fresh_evaluations: 0,
            cached_evaluations: 0,
            delivered: 0,
            dropped: 0,
            duplicated: 0,
        };
        assert_eq!(metrics.fresh_eval_ratio(), 0.0);
        assert_eq!(metrics.activation_rate(), 0.0);
        assert_eq!(metrics.publish_fraction(), 0.0);
        assert_eq!(metrics.stale_fraction(), 0.0);
        let report = RunReport {
            scenario: "empty-horizon".into(),
            mode: "async",
            progress: 0,
            recent_accuracy: 0.0,
            round_accuracy: Vec::new(),
            round_loss: Vec::new(),
            round_fresh_evals: Vec::new(),
            round_cached_evals: Vec::new(),
            fresh_evaluations: 0,
            cached_evaluations: 0,
            dataset: DatasetSummary {
                name: "fmnist-clustered".into(),
                clients: 4,
                classes: 10,
                clusters: 3,
                base_pureness: 0.33,
            },
            specialization: SpecializationMetrics {
                modularity: 0.0,
                partitions: 1,
                misclassification: 0.0,
                approval_pureness: 1.0,
                partition: vec![0; 4],
            },
            specialization_track: Vec::new(),
            analysis: None,
            analysis_track: Vec::new(),
            tangle: TangleStats {
                transactions: 1,
                tips: 1,
                edges: 0,
                max_depth: 0,
                mean_parents: 0.0,
                mean_children: 0.0,
            },
            tangle_digest: 0,
            async_metrics: Some(metrics),
            poisoning: None,
            csv_path: None,
        };
        let summary = report.summary();
        assert!(!summary.contains("NaN"), "{summary}");
        let sweep = SweepReport {
            name: "empty".into(),
            axes: vec!["execution.delay".into()],
            cells: vec![SweepCellReport {
                index: 0,
                id: "delay=2.0".into(),
                values: vec![("execution.delay".into(), "2.0".into())],
                report,
            }],
            comparison_csv: None,
        };
        let csv = sweep.comparison_csv_text();
        assert!(!csv.contains("NaN"), "{csv}");
        assert!(csv.contains("0.0000"), "{csv}");
        assert!(!sweep.summary().contains("NaN"));
    }

    #[test]
    fn every_sweep_preset_builds_validates_and_round_trips() {
        for (name, _) in SWEEP_PRESET_NAMES {
            let spec = SweepSpec::preset(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, *name);
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let reparsed = SweepSpec::from_toml(&spec.to_toml()).unwrap();
            assert_eq!(spec, reparsed, "{name}");
        }
        assert!(matches!(
            SweepSpec::preset("sweep-nothing"),
            Err(ScenarioError::UnknownPreset(_))
        ));
    }

    #[test]
    fn async_delay_preset_sweeps_the_delay_field() {
        let cells = SweepSpec::preset("sweep-async-delay")
            .unwrap()
            .expand_at(Scale::Quick)
            .unwrap();
        assert_eq!(cells.len(), 3);
        let delays: Vec<f64> = cells
            .iter()
            .map(|c| match &c.scenario.execution {
                ExecutionSpec::Async { config, .. } => match config.delay {
                    DelayModel::Constant { delay } => delay,
                    ref other => panic!("unexpected delay model {other:?}"),
                },
                other => panic!("unexpected execution {other:?}"),
            })
            .collect();
        assert_eq!(delays, [0.0, 2.0, 10.0]);
    }

    #[test]
    fn poisoning_preset_sweeps_the_attack_fraction() {
        let cells = SweepSpec::preset("sweep-poisoning-fraction")
            .unwrap()
            .expand_at(Scale::Quick)
            .unwrap();
        let fractions: Vec<f64> = cells
            .iter()
            .map(|c| c.scenario.attack.expect("attack").fraction)
            .collect();
        assert_eq!(fractions, [0.0, 0.2, 0.3]);
    }
}
