//! The preset registry: the paper's experiments as named scenarios.
//!
//! Every preset resolves to a complete [`Scenario`] value at one of two
//! [`Scale`]s — *quick* (minutes on a laptop, qualitative shapes
//! preserved) or the paper's *full* configuration (`DAGFL_FULL=1`).
//! The per-figure binaries in `dagfl-bench`, `dagfl run --preset` and
//! the checked-in `scenarios/*.toml` files all resolve through this one
//! table, so an experiment's definition lives in exactly one place.

use dagfl_core::{
    AsyncConfig, ComputeProfile, DagConfig, DelayModel, Normalization, StaleTipPolicy, TipSelector,
};

use crate::spec::{AnalysisSpec, AttackSpec, DatasetSpec, FaultSpec, Scenario, ScenarioError};

/// Experiment scale: quick (default) or the paper's full scale
/// (`DAGFL_FULL=1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down runs preserving the qualitative result shapes.
    Quick,
    /// The paper's configuration (Table 1).
    Full,
}

impl Scale {
    /// Reads the scale from the `DAGFL_FULL` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("DAGFL_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks `quick` or `full` depending on the scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The canonical preset names with one-line descriptions, in listing
/// order.
pub const PRESET_NAMES: &[(&str, &str)] = &[
    ("smoke", "tiny 2-round FMNIST run (CI smoke test, seconds)"),
    (
        "quickstart",
        "25 rounds on 15-client FMNIST-clustered with the default selector",
    ),
    ("table1-fmnist", "Table 1, FMNIST-clustered row"),
    ("table1-poets", "Table 1, Poets row (dynamic normalization)"),
    (
        "table1-cifar",
        "Table 1, CIFAR-100 row (dynamic normalization)",
    ),
    (
        "fig05-alpha10",
        "Figure 5: tracked cluster metrics on FMNIST (also -alpha1, -alpha100)",
    ),
    (
        "fig06-alpha10",
        "Figure 6: accuracy vs alpha, simple normalization (also -alpha0.1/1/100)",
    ),
    (
        "fig07-alpha10",
        "Figure 7: accuracy vs alpha, dynamic normalization (also -alpha0.1/1/100)",
    ),
    (
        "fig08-alpha10",
        "Figure 8: relaxed clusters, 18% foreign data (also -alpha0.1/1/100)",
    ),
    (
        "poisoning-p0.2",
        "label-flip attack on 20% of clients, accuracy selector (also -p0.0, -p0.3)",
    ),
    (
        "poisoning-random-p0.2",
        "label-flip attack on 20% of clients, random-selector baseline",
    ),
    (
        "async-delay2",
        "asynchronous run, constant 2-unit link delay (also -delay0, -delay10)",
    ),
    (
        "async-cohorts",
        "asynchronous run, slow/fast cohorts with matched compute stragglers",
    ),
    (
        "chaos-smoke",
        "fault-injected async run: drops, duplicates, reorders, a partition and a crash",
    ),
    (
        "analysis-smoke",
        "tiny clustered run with the full analytics pipeline (CI smoke test, seconds)",
    ),
    (
        "scale-10k",
        "10,000-client async run over the sharded store (4 workers; full scale deepens the DAG)",
    ),
];

/// The FMNIST-clustered dataset at the given scale.
fn fmnist_dataset(scale: Scale, relaxation: f32) -> DatasetSpec {
    DatasetSpec::Fmnist {
        clients: scale.pick(15, 99),
        samples: scale.pick(60, 120),
        relaxation,
        seed: 42,
    }
}

/// The Table 1 FMNIST-clustered hyperparameter row at the given scale.
fn fmnist_dag(scale: Scale) -> DagConfig {
    DagConfig {
        rounds: scale.pick(30, 100),
        clients_per_round: scale.pick(6, 10),
        local_epochs: 1,
        local_batches: scale.pick(5, 10),
        batch_size: 10,
        learning_rate: 0.05,
        ..DagConfig::default()
    }
}

fn alpha_scenario(
    name: &str,
    scale: Scale,
    alpha: f32,
    normalization: Normalization,
    relaxation: f32,
) -> Scenario {
    Scenario::new(name, fmnist_dataset(scale, relaxation))
        .with_execution(crate::spec::ExecutionSpec::Rounds(fmnist_dag(scale)))
        .with_selector(TipSelector::Accuracy {
            alpha,
            normalization,
        })
}

fn poisoning_scenario(name: &str, scale: Scale, fraction: f64, selector: TipSelector) -> Scenario {
    Scenario::new(
        name,
        DatasetSpec::FmnistAuthor {
            clients: scale.pick(12, 40),
            samples: scale.pick(80, 120),
            seed: 42,
        },
    )
    .with_execution(crate::spec::ExecutionSpec::Rounds(DagConfig {
        clients_per_round: scale.pick(4, 10),
        local_batches: scale.pick(5, 10),
        ..DagConfig::default()
    }))
    .with_selector(selector)
    .with_attack(AttackSpec {
        fraction,
        clean_rounds: scale.pick(20, 100),
        attack_rounds: scale.pick(20, 100),
        class_a: 3,
        class_b: 8,
        measure_every: scale.pick(4, 10),
    })
}

fn async_scenario(name: &str, scale: Scale, delay: DelayModel) -> Scenario {
    let dag = fmnist_dag(scale);
    // The same training budget as the round-based reference run.
    let activations = dag.rounds * dag.clients_per_round;
    Scenario::new(name, fmnist_dataset(scale, 0.0))
        .asynchronous(AsyncConfig {
            dag,
            total_activations: activations,
            mean_interarrival: 1.0,
            delay,
            ..AsyncConfig::default()
        })
        .with_recent_window(dag.clients_per_round * 5)
}

fn build(name: &str, scale: Scale) -> Option<Scenario> {
    if let Some(alpha) = name.strip_prefix("fig05-alpha") {
        let alpha: f32 = alpha.parse().ok().filter(|a| *a > 0.0)?;
        return Some(
            alpha_scenario(name, scale, alpha, Normalization::Simple, 0.0)
                .tracking(scale.pick(3, 10))
                // The analytics counterpart of the tracked §4.3 metrics:
                // k-means at the ground-truth cluster count, so the
                // sweep's purity column reads directly against alpha.
                .with_analysis(AnalysisSpec {
                    k: Some(3),
                    cadence: scale.pick(3, 10),
                    ..AnalysisSpec::default()
                }),
        );
    }
    if let Some(alpha) = name.strip_prefix("fig06-alpha") {
        let alpha: f32 = alpha.parse().ok().filter(|a| *a > 0.0)?;
        return Some(alpha_scenario(
            name,
            scale,
            alpha,
            Normalization::Simple,
            0.0,
        ));
    }
    if let Some(alpha) = name.strip_prefix("fig07-alpha") {
        let alpha: f32 = alpha.parse().ok().filter(|a| *a > 0.0)?;
        return Some(alpha_scenario(
            name,
            scale,
            alpha,
            Normalization::Dynamic,
            0.0,
        ));
    }
    if let Some(alpha) = name.strip_prefix("fig08-alpha") {
        let alpha: f32 = alpha.parse().ok().filter(|a| *a > 0.0)?;
        // 18% foreign-cluster data, the middle of the paper's 15-20%.
        return Some(alpha_scenario(
            name,
            scale,
            alpha,
            Normalization::Simple,
            0.18,
        ));
    }
    match name {
        "smoke" => Some(
            Scenario::new(
                name,
                DatasetSpec::Fmnist {
                    clients: 4,
                    samples: 30,
                    relaxation: 0.0,
                    seed: 42,
                },
            )
            .rounds(2)
            .clients_per_round(2)
            .local_batches(2),
        ),
        "quickstart" => Some(
            Scenario::new(
                name,
                DatasetSpec::Fmnist {
                    clients: 15,
                    samples: 80,
                    relaxation: 0.0,
                    seed: 42,
                },
            )
            .rounds(25)
            .clients_per_round(5)
            .with_model(crate::spec::ModelSpec::Mlp { hidden: vec![32] }),
        ),
        "table1-fmnist" => Some(
            Scenario::new(name, fmnist_dataset(scale, 0.0))
                .with_execution(crate::spec::ExecutionSpec::Rounds(fmnist_dag(scale))),
        ),
        "table1-poets" => Some(
            Scenario::new(
                name,
                DatasetSpec::Poets {
                    clients_per_language: scale.pick(6, 20),
                    samples: scale.pick(400, 600),
                    seq_len: scale.pick(12, 20),
                    seed: 42,
                },
            )
            .with_execution(crate::spec::ExecutionSpec::Rounds(DagConfig {
                rounds: scale.pick(40, 100),
                clients_per_round: scale.pick(6, 10),
                local_epochs: 1,
                local_batches: scale.pick(15, 35),
                batch_size: 10,
                // Table 1 uses SGD(0.8) for the LEAF LSTM; the smaller
                // GRU trains more stably at 0.3 on the scaled-down
                // corpus.
                learning_rate: scale.pick(0.3, 0.8),
                // Next-character accuracies differ only slightly between
                // the language clusters, so the spread-scaled dynamic
                // normalization (Eq. 3) is required (section 4.2).
                tip_selector: TipSelector::Accuracy {
                    alpha: 10.0,
                    normalization: Normalization::Dynamic,
                },
                ..DagConfig::default()
            })),
        ),
        "table1-cifar" => Some(
            Scenario::new(
                name,
                DatasetSpec::Cifar {
                    clients: scale.pick(30, 94),
                    samples: 60,
                    seed: 42,
                },
            )
            .with_execution(crate::spec::ExecutionSpec::Rounds(DagConfig {
                rounds: scale.pick(30, 100),
                clients_per_round: scale.pick(6, 10),
                local_epochs: scale.pick(3, 5),
                local_batches: scale.pick(10, 45),
                batch_size: 10,
                learning_rate: scale.pick(0.03, 0.01),
                // Clients hold superclass *mixtures*, so candidate
                // accuracies differ only modestly; the dynamic
                // normalization keeps the walk discriminating.
                tip_selector: TipSelector::Accuracy {
                    alpha: 10.0,
                    normalization: Normalization::Dynamic,
                },
                ..DagConfig::default()
            })),
        ),
        "poisoning-p0.0" => Some(poisoning_scenario(name, scale, 0.0, TipSelector::default())),
        "poisoning-p0.2" => Some(poisoning_scenario(name, scale, 0.2, TipSelector::default())),
        "poisoning-p0.3" => Some(poisoning_scenario(name, scale, 0.3, TipSelector::default())),
        "poisoning-random-p0.2" => Some(poisoning_scenario(name, scale, 0.2, TipSelector::Random)),
        "chaos-smoke" => Some(
            // Deliberately scale-independent: a correctness harness for
            // the fault-injection seam, not a paper figure. Every fault
            // kind is active at once, yet the run stays seconds-fast.
            Scenario::new(
                name,
                DatasetSpec::Fmnist {
                    clients: 6,
                    samples: 30,
                    relaxation: 0.0,
                    seed: 42,
                },
            )
            .asynchronous(AsyncConfig {
                dag: DagConfig {
                    clients_per_round: 3,
                    local_batches: 2,
                    ..DagConfig::default()
                },
                total_activations: 60,
                mean_interarrival: 1.0,
                delay: DelayModel::constant(1.0),
                gossip_fanout: 2,
                ..AsyncConfig::default()
            })
            .with_faults(FaultSpec {
                drop: 0.15,
                duplicate: 0.1,
                reorder: 0.1,
                extra_delay: 0.1,
                delay_boost: 2.0,
                partition: Some((10.0, 20.0, 3)),
                crash: Some((5, 25.0, 35.0)),
            })
            .with_recent_window(15),
        ),
        "analysis-smoke" => Some(
            // Deliberately scale-independent: a correctness harness for
            // the analytics pipeline, not a paper figure. Auto-k, both
            // views and a mid-run cadence are all active, yet the run
            // stays seconds-fast.
            Scenario::new(
                name,
                DatasetSpec::Fmnist {
                    clients: 6,
                    samples: 30,
                    relaxation: 0.0,
                    seed: 42,
                },
            )
            .rounds(4)
            .clients_per_round(3)
            .local_batches(2)
            .with_analysis(AnalysisSpec {
                cadence: 2,
                ..AnalysisSpec::default()
            }),
        ),
        "scale-10k" => Some(
            // The sharded-core scaling scenario: 10,000 clients at BOTH
            // scales — the population is the point; `quick` only trims
            // the activation budget and per-client data so the run
            // finishes in CI minutes. Gossip keeps each replica's view
            // (and memory) bounded, the shared segment registry stores
            // every model exactly once, and four event-loop workers
            // exercise the deterministic batch barrier.
            Scenario::new(
                name,
                DatasetSpec::FmnistStreamed {
                    clients: 10_000,
                    samples: scale.pick(12, 60),
                    relaxation: 0.0,
                    seed: 42,
                },
            )
            .asynchronous(AsyncConfig {
                dag: DagConfig {
                    local_batches: 2,
                    batch_size: 5,
                    ..DagConfig::default()
                },
                total_activations: scale.pick(2_000, 20_000),
                // Slow per-client cadence: with 10k clients the *global*
                // activation rate is still ~200/t, but the run now spans
                // enough logical time for gossip (delay 1.0) to land, so
                // later publications approve real tips instead of piling
                // onto the genesis.
                mean_interarrival: 50.0,
                delay: DelayModel::constant(1.0),
                train_time: 0.5,
                gossip_fanout: 8,
                workers: 4,
                ..AsyncConfig::default()
            })
            .with_model(crate::spec::ModelSpec::Mlp { hidden: vec![16] })
            .with_recent_window(200),
        ),
        "async-delay0" => Some(async_scenario(name, scale, DelayModel::constant(0.0))),
        "async-delay2" => Some(async_scenario(name, scale, DelayModel::constant(2.0))),
        "async-delay10" => Some(async_scenario(name, scale, DelayModel::constant(10.0))),
        "async-cohorts" => {
            let mut scenario = async_scenario(
                name,
                scale,
                DelayModel::Cohorts {
                    slow_fraction: 0.3,
                    fast: 1.0,
                    slow: 8.0,
                    jitter: 1.0,
                },
            );
            if let crate::spec::ExecutionSpec::Async { config, .. } = &mut scenario.execution {
                // The same clients are network-slow and 4x compute-slow
                // (the realistic straggler regime), training takes
                // logical time, and superseded tips are re-selected.
                config.compute = ComputeProfile::MatchNetworkCohort { slowdown: 4.0 };
                config.train_time = 0.5;
                config.stale_policy = StaleTipPolicy::Reselect;
            }
            Some(scenario)
        }
        _ => None,
    }
}

impl Scenario {
    /// Resolves a preset at the scale read from `DAGFL_FULL`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownPreset`] for unregistered names.
    pub fn preset(name: &str) -> Result<Scenario, ScenarioError> {
        Self::preset_at(name, Scale::from_env())
    }

    /// Resolves a preset at an explicit scale.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownPreset`] for unregistered names.
    pub fn preset_at(name: &str, scale: Scale) -> Result<Scenario, ScenarioError> {
        build(name, scale).ok_or_else(|| ScenarioError::UnknownPreset(name.to_string()))
    }

    /// The canonical preset names with one-line descriptions.
    pub fn preset_names() -> &'static [(&'static str, &'static str)] {
        PRESET_NAMES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExecutionSpec;

    #[test]
    fn every_listed_preset_builds_and_validates_at_both_scales() {
        for (name, _) in PRESET_NAMES {
            for scale in [Scale::Quick, Scale::Full] {
                let scenario = Scenario::preset_at(name, scale)
                    .unwrap_or_else(|e| panic!("{name} at {scale:?}: {e}"));
                assert_eq!(scenario.name, *name);
                scenario
                    .validate()
                    .unwrap_or_else(|e| panic!("{name} at {scale:?}: {e}"));
                // Every preset survives a file round-trip.
                let reparsed = Scenario::from_toml(&scenario.to_toml()).unwrap();
                assert_eq!(scenario, reparsed, "{name}");
            }
        }
    }

    #[test]
    fn alpha_presets_parse_the_suffix() {
        for (name, alpha) in [
            ("fig06-alpha0.1", 0.1f32),
            ("fig06-alpha1", 1.0),
            ("fig06-alpha100", 100.0),
            ("fig05-alpha10", 10.0),
        ] {
            let scenario = Scenario::preset_at(name, Scale::Quick).unwrap();
            match scenario.execution.dag().tip_selector {
                TipSelector::Accuracy { alpha: a, .. } => assert_eq!(a, alpha, "{name}"),
                other => panic!("{name}: unexpected selector {other:?}"),
            }
        }
        assert!(Scenario::preset_at("fig06-alpha-3", Scale::Quick).is_err());
        assert!(Scenario::preset_at("fig06-alphaX", Scale::Quick).is_err());
    }

    #[test]
    fn unknown_presets_error() {
        assert!(matches!(
            Scenario::preset_at("fig99", Scale::Quick),
            Err(ScenarioError::UnknownPreset(_))
        ));
    }

    #[test]
    fn table1_presets_match_the_paper_at_full_scale() {
        let fmnist = Scenario::preset_at("table1-fmnist", Scale::Full).unwrap();
        let dag = fmnist.execution.dag();
        assert_eq!(
            (dag.rounds, dag.clients_per_round, dag.local_batches),
            (100, 10, 10)
        );
        assert_eq!(dag.learning_rate, 0.05);
        let poets = Scenario::preset_at("table1-poets", Scale::Full).unwrap();
        assert_eq!(poets.execution.dag().local_batches, 35);
        assert_eq!(poets.execution.dag().learning_rate, 0.8);
        let cifar = Scenario::preset_at("table1-cifar", Scale::Full).unwrap();
        assert_eq!(cifar.execution.dag().local_epochs, 5);
        assert_eq!(cifar.execution.dag().learning_rate, 0.01);
    }

    #[test]
    fn poisoning_presets_carry_the_attack() {
        let scenario = Scenario::preset_at("poisoning-p0.3", Scale::Quick).unwrap();
        let attack = scenario.attack.expect("attack configured");
        assert_eq!(attack.fraction, 0.3);
        assert_eq!((attack.class_a, attack.class_b), (3, 8));
        let random = Scenario::preset_at("poisoning-random-p0.2", Scale::Quick).unwrap();
        assert_eq!(random.execution.dag().tip_selector, TipSelector::Random);
    }

    #[test]
    fn async_presets_match_the_round_budget() {
        let scenario = Scenario::preset_at("async-delay2", Scale::Quick).unwrap();
        match &scenario.execution {
            ExecutionSpec::Async { config, .. } => {
                assert_eq!(config.total_activations, 30 * 6);
                assert_eq!(config.delay, DelayModel::constant(2.0));
            }
            other => panic!("unexpected execution {other:?}"),
        }
        let cohorts = Scenario::preset_at("async-cohorts", Scale::Quick).unwrap();
        match &cohorts.execution {
            ExecutionSpec::Async { config, .. } => {
                assert_eq!(
                    config.compute,
                    ComputeProfile::MatchNetworkCohort { slowdown: 4.0 }
                );
                assert_eq!(config.stale_policy, StaleTipPolicy::Reselect);
            }
            other => panic!("unexpected execution {other:?}"),
        }
    }

    #[test]
    fn analysis_presets_carry_the_analytics() {
        let smoke = Scenario::preset_at("analysis-smoke", Scale::Quick).unwrap();
        let analysis = smoke.analysis.clone().expect("analysis configured");
        assert!(analysis.enabled);
        assert!(analysis.k.is_none(), "auto-k exercises the sweep");
        assert_eq!(analysis.cadence, 2);
        // Scale-independent, like chaos-smoke.
        assert_eq!(
            smoke,
            Scenario::preset_at("analysis-smoke", Scale::Full).unwrap()
        );
        let fig05 = Scenario::preset_at("fig05-alpha10", Scale::Quick).unwrap();
        assert_eq!(fig05.analysis.expect("analysis configured").k, Some(3));
    }

    #[test]
    fn scale_pick_selects_correctly() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
