//! Experiment runners shared by the per-figure binaries.

use dagfl_baselines::{FedConfig, FederatedServer};
use dagfl_core::{
    DagConfig, ModelFactory, Normalization, Simulation, SpecializationMetrics, TipSelector,
};
use dagfl_datasets::{
    cifar100_like, fedprox_synthetic, fmnist_by_author, fmnist_clustered, poets, Cifar100Config,
    FedProxConfig, FederatedDataset, FmnistConfig, PoetsConfig,
};

use crate::Scale;

/// One experiment run specification (DAG or centralized).
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Training rounds.
    pub rounds: usize,
    /// Clients sampled per round.
    pub clients_per_round: usize,
    /// Local epochs.
    pub local_epochs: usize,
    /// Mini-batches per epoch.
    pub local_batches: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Tip-selection strategy (DAG runs only).
    pub selector: TipSelector,
    /// Master seed.
    pub seed: u64,
}

impl RunSpec {
    /// Converts to a Specializing-DAG configuration.
    pub fn dag_config(&self) -> DagConfig {
        DagConfig {
            rounds: self.rounds,
            clients_per_round: self.clients_per_round,
            local_epochs: self.local_epochs,
            local_batches: self.local_batches,
            batch_size: self.batch_size,
            learning_rate: self.learning_rate,
            tip_selector: self.selector,
            seed: self.seed,
            ..DagConfig::default()
        }
    }

    /// Converts to a centralized configuration with the given proximal μ
    /// (0.0 = FedAvg).
    pub fn fed_config(&self, proximal_mu: f32) -> FedConfig {
        FedConfig {
            rounds: self.rounds,
            clients_per_round: self.clients_per_round,
            local_epochs: self.local_epochs,
            local_batches: self.local_batches,
            batch_size: self.batch_size,
            learning_rate: self.learning_rate,
            proximal_mu,
            seed: self.seed,
            ..FedConfig::default()
        }
    }

    /// Overrides the tip selector.
    pub fn with_selector(mut self, selector: TipSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The FMNIST-clustered run (Table 1 column 1; quick scale shrinks clients
/// and rounds).
pub fn fmnist_spec(scale: Scale) -> RunSpec {
    RunSpec {
        rounds: scale.pick(30, 100),
        clients_per_round: scale.pick(6, 10),
        local_epochs: 1,
        local_batches: scale.pick(5, 10),
        batch_size: 10,
        learning_rate: 0.05,
        selector: TipSelector::default(),
        seed: 42,
    }
}

/// The FMNIST-clustered dataset at the given scale; `relaxation > 0`
/// produces the relaxed variant of Figure 8.
pub fn fmnist_dataset(scale: Scale, relaxation: f32, seed: u64) -> FederatedDataset {
    fmnist_clustered(&FmnistConfig {
        num_clients: scale.pick(15, 99),
        samples_per_client: scale.pick(60, 120),
        relaxation,
        seed,
        ..FmnistConfig::default()
    })
}

/// The by-author FMNIST dataset (poisoning/scalability experiments).
pub fn fmnist_author_dataset(scale: Scale, num_clients: usize, seed: u64) -> FederatedDataset {
    fmnist_by_author(&FmnistConfig {
        num_clients,
        samples_per_client: scale.pick(80, 120),
        seed,
        ..FmnistConfig::default()
    })
}

/// The Poets run (Table 1 column 2).
pub fn poets_spec(scale: Scale) -> RunSpec {
    RunSpec {
        rounds: scale.pick(40, 100),
        clients_per_round: scale.pick(6, 10),
        local_epochs: 1,
        local_batches: scale.pick(15, 35),
        batch_size: 10,
        // Table 1 uses SGD(0.8) for the LEAF LSTM; our smaller GRU trains
        // more stably at 0.3 on the scaled-down corpus.
        learning_rate: scale.pick(0.3, 0.8),
        // Next-character accuracies differ only slightly between the
        // language clusters, so the spread-scaled dynamic normalization
        // (Eq. 3) is required for good specialization (§4.2).
        selector: TipSelector::Accuracy {
            alpha: 10.0,
            normalization: Normalization::Dynamic,
        },
        seed: 42,
    }
}

/// The Poets dataset at the given scale.
///
/// Clients need enough held-out samples that candidate accuracies are not
/// too coarsely quantized for the biased walk (the paper's LEAF clients
/// hold ≥ 1000 samples each).
pub fn poets_dataset(scale: Scale, seed: u64) -> FederatedDataset {
    poets(&PoetsConfig {
        clients_per_language: scale.pick(6, 20),
        samples_per_client: scale.pick(400, 600),
        seq_len: scale.pick(12, 20),
        seed,
    })
}

/// The CIFAR-100-like run (Table 1 column 3).
pub fn cifar_spec(scale: Scale) -> RunSpec {
    RunSpec {
        rounds: scale.pick(30, 100),
        clients_per_round: scale.pick(6, 10),
        local_epochs: scale.pick(3, 5),
        local_batches: scale.pick(10, 45),
        batch_size: 10,
        learning_rate: scale.pick(0.03, 0.01),
        // Clients hold superclass *mixtures*, so candidate accuracies
        // differ only modestly; the dynamic normalization keeps the walk
        // discriminating (§4.2).
        selector: TipSelector::Accuracy {
            alpha: 10.0,
            normalization: Normalization::Dynamic,
        },
        seed: 42,
    }
}

/// The CIFAR-100-like dataset at the given scale (94 clients at full
/// scale, as in the paper).
pub fn cifar_dataset(scale: Scale, seed: u64) -> FederatedDataset {
    cifar100_like(&Cifar100Config {
        num_clients: scale.pick(30, 94),
        samples_per_client: scale.pick(60, 60),
        seed,
        ..Cifar100Config::default()
    })
}

/// The FedProx synthetic(0.5, 0.5) run (Figures 10–11: 30 clients, 10 per
/// round).
pub fn fedprox_spec(scale: Scale) -> RunSpec {
    RunSpec {
        rounds: scale.pick(30, 100),
        clients_per_round: scale.pick(10, 10),
        // Enough local work that client updates actually drift apart —
        // the regime in which the proximal term pays off.
        local_epochs: 2,
        local_batches: scale.pick(15, 20),
        batch_size: 10,
        learning_rate: 0.03,
        selector: TipSelector::default(),
        seed: 42,
    }
}

/// The FedProx synthetic dataset (30 clients, α = β = 0.5).
pub fn fedprox_dataset(scale: Scale, seed: u64) -> FederatedDataset {
    fedprox_synthetic(&FedProxConfig {
        num_clients: 30,
        min_samples: scale.pick(50, 50),
        max_samples: scale.pick(200, 300),
        seed,
        ..FedProxConfig::default()
    })
}

/// Runs a Specializing-DAG simulation to completion.
///
/// # Panics
///
/// Panics on simulation errors — experiment binaries should fail loudly.
pub fn run_dag(spec: RunSpec, dataset: FederatedDataset, factory: ModelFactory) -> Simulation {
    let mut sim = Simulation::new(spec.dag_config(), dataset, factory);
    sim.run().expect("DAG simulation failed");
    sim
}

/// Runs a DAG simulation, recording the specialization metrics every
/// `every` rounds. Returns the simulation and `(round, metrics)` pairs.
///
/// # Panics
///
/// Panics on simulation errors.
pub fn run_dag_tracking_specialization(
    spec: RunSpec,
    dataset: FederatedDataset,
    factory: ModelFactory,
    every: usize,
) -> (Simulation, Vec<(usize, SpecializationMetrics)>) {
    let mut sim = Simulation::new(spec.dag_config(), dataset, factory);
    let mut tracked = Vec::new();
    for round in 0..spec.rounds {
        sim.run_round().expect("DAG round failed");
        if (round + 1) % every == 0 {
            tracked.push((round + 1, sim.specialization_metrics()));
        }
    }
    (sim, tracked)
}

/// Runs a centralized baseline (FedAvg for `mu == 0`, FedProx otherwise).
///
/// # Panics
///
/// Panics on training errors.
pub fn run_fed(
    spec: RunSpec,
    proximal_mu: f32,
    dataset: FederatedDataset,
    factory: ModelFactory,
) -> FederatedServer {
    let mut server = FederatedServer::new(spec.fed_config(proximal_mu), dataset, factory);
    server.run().expect("centralized training failed");
    server
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmnist_model_factory;

    #[test]
    fn specs_scale_down_for_quick_runs() {
        assert!(fmnist_spec(Scale::Quick).rounds < fmnist_spec(Scale::Full).rounds);
        assert!(poets_spec(Scale::Quick).local_batches < poets_spec(Scale::Full).local_batches);
        assert_eq!(cifar_spec(Scale::Full).local_epochs, 5);
    }

    #[test]
    fn full_specs_match_table1() {
        let f = fmnist_spec(Scale::Full);
        assert_eq!(
            (f.rounds, f.clients_per_round, f.local_batches, f.batch_size),
            (100, 10, 10, 10)
        );
        assert_eq!(f.learning_rate, 0.05);
        let p = poets_spec(Scale::Full);
        assert_eq!(p.local_batches, 35);
        assert_eq!(p.learning_rate, 0.8);
        let c = cifar_spec(Scale::Full);
        assert_eq!((c.local_epochs, c.local_batches), (5, 45));
        assert_eq!(c.learning_rate, 0.01);
    }

    #[test]
    fn tiny_dag_run_completes() {
        let spec = RunSpec {
            rounds: 2,
            clients_per_round: 2,
            local_epochs: 1,
            local_batches: 2,
            batch_size: 5,
            learning_rate: 0.05,
            selector: TipSelector::default(),
            seed: 1,
        };
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 4,
            samples_per_client: 30,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let sim = run_dag(spec, dataset, fmnist_model_factory(features, 10));
        assert_eq!(sim.round(), 2);
    }

    #[test]
    fn tracking_records_requested_rounds() {
        let spec = RunSpec {
            rounds: 4,
            clients_per_round: 2,
            local_epochs: 1,
            local_batches: 2,
            batch_size: 5,
            learning_rate: 0.05,
            selector: TipSelector::default(),
            seed: 1,
        };
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 4,
            samples_per_client: 30,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let (_, tracked) =
            run_dag_tracking_specialization(spec, dataset, fmnist_model_factory(features, 10), 2);
        assert_eq!(tracked.len(), 2);
        assert_eq!(tracked[0].0, 2);
        assert_eq!(tracked[1].0, 4);
    }
}
