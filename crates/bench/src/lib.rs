//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the evaluation section has a dedicated binary
//! in `src/bin/` (see DESIGN.md §5 for the index); this library provides
//! the pieces they share: experiment scales, model factories, dataset
//! builders and result output.
//!
//! # Scales
//!
//! Experiments run at *quick* scale by default (minutes on a laptop,
//! preserving the qualitative shape of every result) and at the paper's
//! *full* scale when the environment variable `DAGFL_FULL=1` is set.
//!
//! # Output
//!
//! Each binary prints its series as a readable table and writes a CSV into
//! `results/` (override with `DAGFL_RESULTS`).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod output;
pub mod poisoning_suite;

use std::sync::Arc;

use rand::rngs::StdRng;

use dagfl_core::ModelFactory;
use dagfl_datasets::POETS_VOCAB;
use dagfl_nn::{CharRnn, Dense, Model, Relu, Sequential};

/// Experiment scale: quick (default) or the paper's full scale
/// (`DAGFL_FULL=1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down runs preserving the qualitative result shapes.
    Quick,
    /// The paper's configuration (Table 1).
    Full,
}

impl Scale {
    /// Reads the scale from the `DAGFL_FULL` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("DAGFL_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks `quick` or `full` depending on the scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The MLP used for the FMNIST experiments (the pixel-level stand-in for
/// the paper's LEAF CNN; see DESIGN.md §3).
pub fn fmnist_model_factory(features: usize, classes: usize) -> ModelFactory {
    Arc::new(move |rng: &mut StdRng| {
        Box::new(Sequential::new(vec![
            Box::new(Dense::new(rng, features, 64)),
            Box::new(Relu::new()),
            Box::new(Dense::new(rng, 64, classes)),
        ])) as Box<dyn Model>
    })
}

/// The next-character GRU used for the Poets experiments.
pub fn poets_model_factory() -> ModelFactory {
    Arc::new(move |rng: &mut StdRng| {
        Box::new(CharRnn::new(rng, POETS_VOCAB.len(), 8, 32)) as Box<dyn Model>
    })
}

/// The MLP used for the CIFAR-100-like experiments.
pub fn cifar_model_factory(features: usize) -> ModelFactory {
    Arc::new(move |rng: &mut StdRng| {
        Box::new(Sequential::new(vec![
            Box::new(Dense::new(rng, features, 128)),
            Box::new(Relu::new()),
            Box::new(Dense::new(rng, 128, 100)),
        ])) as Box<dyn Model>
    })
}

/// The logistic-regression model of the FedProx synthetic benchmark.
pub fn fedprox_model_factory() -> ModelFactory {
    Arc::new(move |rng: &mut StdRng| {
        Box::new(Sequential::new(vec![Box::new(Dense::new(rng, 60, 10))])) as Box<dyn Model>
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scale_pick_selects_correctly() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn factories_build_consistent_architectures() {
        let mut rng = StdRng::seed_from_u64(0);
        let f = fmnist_model_factory(196, 10);
        let a = f(&mut rng);
        let b = f(&mut rng);
        assert_eq!(a.num_parameters(), b.num_parameters());
        assert_eq!(a.num_parameters(), 196 * 64 + 64 + 64 * 10 + 10);
        let p = poets_model_factory()(&mut rng);
        assert!(p.num_parameters() > 0);
        let c = cifar_model_factory(32)(&mut rng);
        assert_eq!(c.num_parameters(), 32 * 128 + 128 + 128 * 100 + 100);
        let l = fedprox_model_factory()(&mut rng);
        assert_eq!(l.num_parameters(), 60 * 10 + 10);
    }
}
