//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the evaluation section has a dedicated binary
//! in `src/bin/` (see DESIGN.md §5 for the index); this library provides
//! the pieces they share: experiment scales, model factories, dataset
//! builders and result output.
//!
//! # Scales
//!
//! Experiments run at *quick* scale by default (minutes on a laptop,
//! preserving the qualitative shape of every result) and at the paper's
//! *full* scale when the environment variable `DAGFL_FULL=1` is set.
//!
//! # Output
//!
//! Each binary prints its series as a readable table and writes a CSV into
//! `results/` (override with `DAGFL_RESULTS`).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod output;
pub mod poisoning_suite;

use dagfl_core::ModelFactory;
use dagfl_datasets::POETS_VOCAB;
use dagfl_scenario::{ModelSpec, SweepCellReport, SweepReport, SweepRunner, SweepSpec};

pub use dagfl_scenario::Scale;

/// Runs a sweep preset on all available cores and returns the aggregate
/// report — the standard entry point of the figure binaries, which are
/// thin preset lookups plus CSV reshaping.
///
/// # Panics
///
/// Panics if the preset is unknown, fails validation or a cell fails;
/// experiment binaries fail loudly.
pub fn run_sweep_preset(name: &str) -> SweepReport {
    let spec = SweepSpec::preset(name).expect("sweep preset exists");
    let jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    SweepRunner::new(spec)
        .expect("sweep preset validates")
        .run(jobs)
        .expect("sweep run failed")
}

/// Reads one axis coordinate of a sweep cell as a number.
///
/// # Panics
///
/// Panics if the cell has no such axis or the token is not numeric.
pub fn axis_f64(cell: &SweepCellReport, path: &str) -> f64 {
    cell.values
        .iter()
        .find(|(p, _)| p == path)
        .unwrap_or_else(|| panic!("cell `{}` has no `{path}` axis", cell.id))
        .1
        .parse()
        .expect("axis tokens are numeric")
}

/// The MLP used for the FMNIST experiments (the pixel-level stand-in for
/// the paper's LEAF CNN; see DESIGN.md §3).
///
/// A thin wrapper over the shared [`ModelSpec`]-driven constructors —
/// architecture definitions live in `dagfl-scenario`.
pub fn fmnist_model_factory(features: usize, classes: usize) -> ModelFactory {
    ModelSpec::Mlp { hidden: vec![64] }.build_factory(features, classes)
}

/// The next-character GRU used for the Poets experiments.
pub fn poets_model_factory() -> ModelFactory {
    // The RNN embeds class (vocabulary) indices; the feature width is
    // the sequence length and does not shape the model.
    ModelSpec::CharRnn {
        embed: 8,
        hidden: 32,
    }
    .build_factory(0, POETS_VOCAB.len())
}

/// The MLP used for the CIFAR-100-like experiments.
pub fn cifar_model_factory(features: usize) -> ModelFactory {
    ModelSpec::Mlp { hidden: vec![128] }.build_factory(features, 100)
}

/// The logistic-regression model of the FedProx synthetic benchmark.
pub fn fedprox_model_factory() -> ModelFactory {
    ModelSpec::Linear.build_factory(60, 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scale_pick_selects_correctly() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn factories_build_consistent_architectures() {
        let mut rng = StdRng::seed_from_u64(0);
        let f = fmnist_model_factory(196, 10);
        let a = f(&mut rng);
        let b = f(&mut rng);
        assert_eq!(a.num_parameters(), b.num_parameters());
        assert_eq!(a.num_parameters(), 196 * 64 + 64 + 64 * 10 + 10);
        let p = poets_model_factory()(&mut rng);
        assert!(p.num_parameters() > 0);
        let c = cifar_model_factory(32)(&mut rng);
        assert_eq!(c.num_parameters(), 32 * 128 + 128 + 128 * 100 + 100);
        let l = fedprox_model_factory()(&mut rng);
        assert_eq!(l.num_parameters(), 60 * 10 + 10);
    }
}
