//! Communication cost: DAG vs FedAvg on identical training budgets.
//!
//! The related-work discussion (§3.2, Hegedűs et al.) notes that
//! peer-to-peer learning pays more network traffic than a star topology.
//! This experiment accounts for both directions:
//!
//! * **FedAvg**: every active client downloads the global model and
//!   uploads its update — `2 · |params|` per activation.
//! * **Specializing DAG**: every active client downloads each candidate
//!   model its walks evaluate (the dominant term, counted exactly from the
//!   recorded walk statistics) plus the two parents, and uploads its
//!   update if published.

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec, run_dag, run_fed};
use dagfl_bench::output::{emit, f, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let spec = fmnist_spec(scale);
    let dataset = fmnist_dataset(scale, 0.0, 42);
    let features = dataset.feature_len();
    let factory = fmnist_model_factory(features, 10);
    let params = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        factory(&mut rng).num_parameters()
    };
    let bytes_per_model = params * 4;

    // DAG: count candidate downloads and uploads from the round metrics.
    let sim = run_dag(spec, dataset.clone(), factory.clone());
    let mut dag_download = 0u64;
    let mut dag_upload = 0u64;
    for m in sim.history() {
        // Each evaluated candidate and both selected parents are fetched.
        dag_download += (m.candidates_evaluated as u64 + 2 * m.active_clients.len() as u64)
            * bytes_per_model as u64;
        dag_upload += m.published as u64 * bytes_per_model as u64;
    }

    // FedAvg: broadcast + update per active client per round.
    let server = run_fed(spec, 0.0, dataset, factory);
    let mut fed_download = 0u64;
    let mut fed_upload = 0u64;
    for m in server.history() {
        fed_download += m.active_clients.len() as u64 * bytes_per_model as u64;
        fed_upload += m.active_clients.len() as u64 * bytes_per_model as u64;
    }

    let activations = (spec.rounds * spec.clients_per_round) as u64;
    let rows = vec![
        vec![
            "dag".into(),
            int(bytes_per_model),
            int(dag_download as usize),
            int(dag_upload as usize),
            f((dag_download + dag_upload) as f64 / activations as f64 / 1024.0),
        ],
        vec![
            "fedavg".into(),
            int(bytes_per_model),
            int(fed_download as usize),
            int(fed_upload as usize),
            f((fed_download + fed_upload) as f64 / activations as f64 / 1024.0),
        ],
    ];
    emit(
        "communication_cost",
        &[
            "algorithm",
            "bytes_per_model",
            "total_download_bytes",
            "total_upload_bytes",
            "kib_per_activation",
        ],
        &rows,
    );
    println!(
        "note: DAG downloads are dominated by walk evaluations; caching \
         (already modelled client-side) amortises repeat visits across rounds."
    );
}
