//! Figure 14: the distribution of poisoned clients over the Louvain
//! communities inferred from the final client graph, for p = 0.3.
//!
//! Paper shape: most poisoned clients end up in communities where the
//! majority of members are also poisoned — the attack is contained, but
//! hard for the affected clients to detect.

use dagfl_bench::output::{emit, int};
use dagfl_bench::poisoning_suite::run_preset;
use dagfl_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let result = run_preset("poisoning-p0.3", scale);
    let rows: Vec<Vec<String>> = result
        .distribution
        .iter()
        .map(|&(community, benign, poisoned)| vec![int(community), int(benign), int(poisoned)])
        .collect();
    emit(
        "fig14_poisoned_cluster_distribution",
        &["community", "benign", "poisoned"],
        &rows,
    );
}
