//! Table 2: approval pureness in the DAG after training, per dataset.
//!
//! Paper reference values (100 rounds, α = 10): FMNIST-clustered 1.0
//! (base 0.33), Poets 0.95 (base 0.5), CIFAR-100 0.51 (base 0.05).

use dagfl_bench::experiments::{
    cifar_dataset, cifar_spec, fmnist_dataset, fmnist_spec, poets_dataset, poets_spec, run_dag,
};
use dagfl_bench::output::{emit, f, int};
use dagfl_bench::{cifar_model_factory, fmnist_model_factory, poets_model_factory, Scale};

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();

    // FMNIST-clustered: 3 clusters.
    let dataset = fmnist_dataset(scale, 0.0, 42);
    let features = dataset.feature_len();
    let clusters = dataset.clusters().len();
    let base = dataset.base_pureness();
    let sim = run_dag(
        fmnist_spec(scale),
        dataset,
        fmnist_model_factory(features, 10),
    );
    rows.push(vec![
        "FMNIST-clustered".into(),
        int(clusters),
        f(base),
        f(sim.approval_pureness()),
    ]);

    // Poets: 2 clusters.
    let dataset = poets_dataset(scale, 42);
    let clusters = dataset.clusters().len();
    let base = dataset.base_pureness();
    let sim = run_dag(poets_spec(scale), dataset, poets_model_factory());
    rows.push(vec![
        "Poets".into(),
        int(clusters),
        f(base),
        f(sim.approval_pureness()),
    ]);

    // CIFAR-100-like: up to 20 superclass clusters.
    let dataset = cifar_dataset(scale, 42);
    let features = dataset.feature_len();
    let clusters = dataset.clusters().len();
    let base = dataset.base_pureness();
    let sim = run_dag(cifar_spec(scale), dataset, cifar_model_factory(features));
    rows.push(vec![
        "CIFAR-100".into(),
        int(clusters),
        f(base),
        f(sim.approval_pureness()),
    ]);

    emit(
        "table2_pureness",
        &["dataset", "clusters", "base_pureness", "pureness"],
        &rows,
    );
}
