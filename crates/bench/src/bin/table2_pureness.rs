//! Table 2: approval pureness in the DAG after training, per dataset.
//!
//! Paper reference values (100 rounds, α = 10): FMNIST-clustered 1.0
//! (base 0.33), Poets 0.95 (base 0.5), CIFAR-100 0.51 (base 0.05).
//!
//! The three runs are exactly the Table 1 scenario presets; the report
//! carries the dataset facts, so this binary is a pure reshaping step.

use dagfl_bench::output::{emit, f, int};
use dagfl_scenario::{Scenario, ScenarioRunner};

fn main() {
    let mut rows = Vec::new();
    for (label, preset) in [
        ("FMNIST-clustered", "table1-fmnist"),
        ("Poets", "table1-poets"),
        ("CIFAR-100", "table1-cifar"),
    ] {
        let scenario = Scenario::preset(preset).expect("preset exists");
        let report = ScenarioRunner::new(scenario)
            .expect("preset validates")
            .run()
            .expect("scenario run failed");
        rows.push(vec![
            label.into(),
            int(report.dataset.clusters),
            f(report.dataset.base_pureness),
            f(report.specialization.approval_pureness),
        ]);
    }
    emit(
        "table2_pureness",
        &["dataset", "clusters", "base_pureness", "pureness"],
        &rows,
    );
}
