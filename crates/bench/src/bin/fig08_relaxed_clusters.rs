//! Figure 8: accuracy per round on the *relaxed* FMNIST-clustered dataset
//! (each cluster holds 15–20 % foreign-cluster data) for
//! α ∈ {0.1, 1, 10, 100}.
//!
//! Paper shape: relaxation helps low-α runs generalise faster while
//! slightly slowing the highly specialized high-α runs — the α ordering
//! remains but the gap narrows compared to Figure 6.
//!
//! The grid is the `sweep-fig08-alpha` sweep preset (base `fig08-alpha10`
//! at 18 % foreign data, axis `execution.alpha`).

use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{axis_f64, run_sweep_preset};

fn main() {
    let sweep = run_sweep_preset("sweep-fig08-alpha");
    let mut rows = Vec::new();
    for cell in &sweep.cells {
        let alpha = axis_f64(cell, "execution.alpha");
        for (round, accuracy) in cell.report.round_accuracy.iter().enumerate() {
            rows.push(vec![f(alpha), int(round + 1), f32c(*accuracy)]);
        }
    }
    emit(
        "fig08_relaxed_clusters",
        &["alpha", "round", "accuracy"],
        &rows,
    );
}
