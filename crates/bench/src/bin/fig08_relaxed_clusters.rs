//! Figure 8: accuracy per round on the *relaxed* FMNIST-clustered dataset
//! (each cluster holds 15–20 % foreign-cluster data) for
//! α ∈ {0.1, 1, 10, 100}.
//!
//! Paper shape: relaxation helps low-α runs generalise faster while
//! slightly slowing the highly specialized high-α runs — the α ordering
//! remains but the gap narrows compared to Figure 6.

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec, run_dag};
use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{Normalization, TipSelector};

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for alpha in [0.1f32, 1.0, 10.0, 100.0] {
        // 18 % foreign-cluster data, the middle of the paper's 15–20 %.
        let dataset = fmnist_dataset(scale, 0.18, 42);
        let features = dataset.feature_len();
        let spec = fmnist_spec(scale).with_selector(TipSelector::Accuracy {
            alpha,
            normalization: Normalization::Simple,
        });
        let sim = run_dag(spec, dataset, fmnist_model_factory(features, 10));
        for m in sim.history() {
            rows.push(vec![
                f(alpha as f64),
                int(m.round + 1),
                f32c(m.mean_accuracy()),
            ]);
        }
    }
    emit(
        "fig08_relaxed_clusters",
        &["alpha", "round", "accuracy"],
        &rows,
    );
}
