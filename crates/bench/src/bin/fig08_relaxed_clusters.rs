//! Figure 8: accuracy per round on the *relaxed* FMNIST-clustered dataset
//! (each cluster holds 15–20 % foreign-cluster data) for
//! α ∈ {0.1, 1, 10, 100}.
//!
//! Paper shape: relaxation helps low-α runs generalise faster while
//! slightly slowing the highly specialized high-α runs — the α ordering
//! remains but the gap narrows compared to Figure 6.
//!
//! Each curve is a `fig08-alpha*` scenario preset (18 % foreign data, the
//! middle of the paper's range).

use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_scenario::{Scenario, ScenarioRunner};

fn main() {
    let mut rows = Vec::new();
    for alpha in [0.1f32, 1.0, 10.0, 100.0] {
        let scenario = Scenario::preset(&format!("fig08-alpha{alpha}")).expect("preset exists");
        let report = ScenarioRunner::new(scenario)
            .expect("preset validates")
            .run()
            .expect("scenario run failed");
        for (round, accuracy) in report.round_accuracy.iter().enumerate() {
            rows.push(vec![f(alpha as f64), int(round + 1), f32c(*accuracy)]);
        }
    }
    emit(
        "fig08_relaxed_clusters",
        &["alpha", "round", "accuracy"],
        &rows,
    );
}
