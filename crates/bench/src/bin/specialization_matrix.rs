//! The cluster specialization matrix: each cluster's consensus model
//! evaluated on every cluster's pooled test data, plus pairwise parameter
//! divergence.
//!
//! A parameter-space companion to Table 2 / Figure 5: implicit
//! specialization should produce a diagonal-dominant accuracy matrix and
//! growing inter-cluster parameter distance. Also runs the local-only
//! baseline (no communication) for the mean-own-accuracy comparison the
//! paper's introduction motivates.

use dagfl_baselines::LocalOnly;
use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec, run_dag};
use dagfl_bench::output::{emit, f32c, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::analysis::cluster_specialization;

fn main() {
    let scale = Scale::from_env();
    let spec = fmnist_spec(scale);
    let dataset = fmnist_dataset(scale, 0.0, 42);
    let features = dataset.feature_len();

    // Specializing DAG.
    let mut sim = run_dag(spec, dataset.clone(), fmnist_model_factory(features, 10));
    let analysis = cluster_specialization(&mut sim).expect("analysis failed");

    let mut rows = Vec::new();
    for (a_idx, &a) in analysis.clusters.iter().enumerate() {
        for (b_idx, &b) in analysis.clusters.iter().enumerate() {
            rows.push(vec![
                int(a),
                int(b),
                f32c(analysis.accuracy[a_idx][b_idx]),
                f32c(analysis.divergence[a_idx][b_idx]),
            ]);
        }
    }
    emit(
        "specialization_matrix",
        &["model_cluster", "data_cluster", "accuracy", "parameter_l2"],
        &rows,
    );

    // Summary row including the local-only baseline.
    let mut local = LocalOnly::new(
        dataset,
        fmnist_model_factory(features, 10),
        spec.learning_rate,
        spec.local_batches,
        spec.batch_size,
        spec.seed,
    );
    // Match the *expected* per-client budget of the DAG run: each client
    // is active clients_per_round / num_clients of the time.
    let expected_rounds =
        (spec.rounds * spec.clients_per_round / sim.dataset().num_clients()).max(1);
    local.run(expected_rounds).expect("local training failed");

    emit(
        "specialization_summary",
        &[
            "dag_own_cluster_accuracy",
            "dag_foreign_cluster_accuracy",
            "dag_specialization_gap",
            "local_only_accuracy",
        ],
        &[vec![
            f32c(analysis.mean_own_accuracy()),
            f32c(analysis.mean_foreign_accuracy()),
            f32c(analysis.specialization_gap()),
            f32c(local.mean_accuracy().expect("evaluation failed")),
        ]],
    );
}
