//! Figure 7: accuracy per round with the *dynamic* normalization (Eq. 3)
//! for α ∈ {0.1, 1, 10, 100} on FMNIST-clustered.
//!
//! Paper shape: dynamic normalization improves α = 1 (its approval
//! pureness rises from 0.40 to 0.51), leaving high-α behaviour unchanged.
//! The emitted series includes the final pureness per α so the comparison
//! against Figure 6 is direct.
//!
//! Simple-normalization runs are the `fig06-alpha*` presets, dynamic runs
//! the `fig07-alpha*` presets — the two figures share one definition of
//! "the α sweep" in the preset registry.

use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_scenario::{Scenario, ScenarioRunner};

fn main() {
    let mut rows = Vec::new();
    let mut pureness_rows = Vec::new();
    for alpha in [0.1f32, 1.0, 10.0, 100.0] {
        for (norm_name, preset_prefix) in [("simple", "fig06"), ("dynamic", "fig07")] {
            let scenario =
                Scenario::preset(&format!("{preset_prefix}-alpha{alpha}")).expect("preset exists");
            let report = ScenarioRunner::new(scenario)
                .expect("preset validates")
                .run()
                .expect("scenario run failed");
            if norm_name == "dynamic" {
                for (round, accuracy) in report.round_accuracy.iter().enumerate() {
                    rows.push(vec![f(alpha as f64), int(round + 1), f32c(*accuracy)]);
                }
            }
            pureness_rows.push(vec![
                f(alpha as f64),
                norm_name.into(),
                f(report.specialization.approval_pureness),
            ]);
        }
    }
    emit(
        "fig07_dynamic_normalization",
        &["alpha", "round", "accuracy"],
        &rows,
    );
    emit(
        "fig07_pureness_by_normalization",
        &["alpha", "normalization", "pureness"],
        &pureness_rows,
    );
}
