//! Figure 7: accuracy per round with the *dynamic* normalization (Eq. 3)
//! for α ∈ {0.1, 1, 10, 100} on FMNIST-clustered.
//!
//! Paper shape: dynamic normalization improves α = 1 (its approval
//! pureness rises from 0.40 to 0.51), leaving high-α behaviour unchanged.
//! The emitted series includes the final pureness per α so the comparison
//! against Figure 6 is direct.
//!
//! Simple-normalization runs are the `sweep-fig06-alpha` sweep, dynamic
//! runs the `sweep-fig07-alpha` sweep — the two figures share one
//! definition of "the α grid" in the sweep preset registry.

use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{axis_f64, run_sweep_preset};

fn main() {
    let simple = run_sweep_preset("sweep-fig06-alpha");
    let dynamic = run_sweep_preset("sweep-fig07-alpha");
    assert_eq!(
        simple.cells.len(),
        dynamic.cells.len(),
        "the fig06 and fig07 sweeps must cover the same alpha grid"
    );
    let mut rows = Vec::new();
    let mut pureness_rows = Vec::new();
    for (simple_cell, dynamic_cell) in simple.cells.iter().zip(&dynamic.cells) {
        let alpha = axis_f64(dynamic_cell, "execution.alpha");
        assert_eq!(
            alpha,
            axis_f64(simple_cell, "execution.alpha"),
            "the two sweeps share one alpha grid"
        );
        for (round, accuracy) in dynamic_cell.report.round_accuracy.iter().enumerate() {
            rows.push(vec![f(alpha), int(round + 1), f32c(*accuracy)]);
        }
        for (norm_name, cell) in [("simple", simple_cell), ("dynamic", dynamic_cell)] {
            pureness_rows.push(vec![
                f(alpha),
                norm_name.into(),
                f(cell.report.specialization.approval_pureness),
            ]);
        }
    }
    emit(
        "fig07_dynamic_normalization",
        &["alpha", "round", "accuracy"],
        &rows,
    );
    emit(
        "fig07_pureness_by_normalization",
        &["alpha", "normalization", "pureness"],
        &pureness_rows,
    );
}
