//! Figure 7: accuracy per round with the *dynamic* normalization (Eq. 3)
//! for α ∈ {0.1, 1, 10, 100} on FMNIST-clustered.
//!
//! Paper shape: dynamic normalization improves α = 1 (its approval
//! pureness rises from 0.40 to 0.51), leaving high-α behaviour unchanged.
//! The emitted series includes the final pureness per α so the comparison
//! against Figure 6 is direct.

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec, run_dag};
use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{Normalization, TipSelector};

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    let mut pureness_rows = Vec::new();
    for alpha in [0.1f32, 1.0, 10.0, 100.0] {
        for normalization in [Normalization::Simple, Normalization::Dynamic] {
            let dataset = fmnist_dataset(scale, 0.0, 42);
            let features = dataset.feature_len();
            let spec = fmnist_spec(scale).with_selector(TipSelector::Accuracy {
                alpha,
                normalization,
            });
            let sim = run_dag(spec, dataset, fmnist_model_factory(features, 10));
            let norm_name = match normalization {
                Normalization::Simple => "simple",
                Normalization::Dynamic => "dynamic",
            };
            if normalization == Normalization::Dynamic {
                for m in sim.history() {
                    rows.push(vec![
                        f(alpha as f64),
                        int(m.round + 1),
                        f32c(m.mean_accuracy()),
                    ]);
                }
            }
            pureness_rows.push(vec![
                f(alpha as f64),
                norm_name.into(),
                f(sim.approval_pureness()),
            ]);
        }
    }
    emit(
        "fig07_dynamic_normalization",
        &["alpha", "round", "accuracy"],
        &rows,
    );
    emit(
        "fig07_pureness_by_normalization",
        &["alpha", "normalization", "pureness"],
        &pureness_rows,
    );
}
