//! Figure 15: wall-clock duration of the biased random walk per client,
//! over training rounds, for 5/10/20/40 concurrently active clients.
//!
//! Paper shape: the walk cost is dominated by candidate model evaluation;
//! it spikes early (imbalanced child counts while accuracies differ
//! widely) and levels out, with only marginal differences between
//! concurrency levels — i.e. the approach scales.

use dagfl_bench::experiments::{fmnist_author_dataset, RunSpec};
use dagfl_bench::output::{emit, f, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{Simulation, TipSelector};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(15, 100);
    let mut rows = Vec::new();
    // One fixed client pool for every concurrency level, so the series
    // isolates the effect of concurrent activity (like the paper's fixed
    // author-split FMNIST).
    let num_clients = 120;
    for active in [5usize, 10, 20, 40] {
        let dataset = fmnist_author_dataset(scale, num_clients, 42);
        let features = dataset.feature_len();
        let spec = RunSpec {
            rounds,
            clients_per_round: active,
            local_epochs: 1,
            local_batches: scale.pick(5, 10),
            batch_size: 10,
            learning_rate: 0.05,
            selector: TipSelector::default(),
            seed: 42,
        };
        let mut sim = Simulation::new(
            spec.dag_config(),
            dataset,
            fmnist_model_factory(features, 10),
        );
        for _ in 0..rounds {
            let m = sim.run_round().expect("round failed");
            rows.push(vec![
                int(active),
                int(m.round + 1),
                f(m.mean_walk_duration.as_secs_f64() * 1000.0),
                int(m.candidates_evaluated),
                int(m.walk_steps),
            ]);
        }
    }
    emit(
        "fig15_walk_scalability",
        &[
            "active_clients",
            "round",
            "walk_duration_ms",
            "candidates_evaluated",
            "walk_steps",
        ],
        &rows,
    );
}
