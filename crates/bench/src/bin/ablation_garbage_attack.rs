//! The random-weight flooding attack (§4.4, argued but not measured in the
//! paper): accuracy-aware vs random tip selection, with and without the
//! accuracy-cliff guard.
//!
//! Expected shape: the random selector lets garbage into references
//! freely; the accuracy selector avoids it; the cliff guard eliminates the
//! remaining *forced* selections (paths whose only continuation is
//! garbage).

use dagfl_bench::experiments::fmnist_author_dataset;
use dagfl_bench::output::{emit, f, f32c};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{DagConfig, GarbageAttackConfig, GarbageAttackScenario, PublishGate, TipSelector};

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    // The hardened arm combines the cliff guard with the best-parent
    // publish gate; the others run the paper's plain configuration.
    let arms: [(&str, TipSelector, Option<f32>, PublishGate); 3] = [
        (
            "accuracy+hardened",
            TipSelector::default(),
            Some(0.25),
            PublishGate::BestParent,
        ),
        (
            "accuracy",
            TipSelector::default(),
            None,
            PublishGate::default(),
        ),
        ("random", TipSelector::Random, None, PublishGate::default()),
    ];
    for (name, selector, margin, gate) in arms {
        let dataset = fmnist_author_dataset(scale, scale.pick(10, 40), 42);
        let features = dataset.feature_len();
        let config = GarbageAttackConfig {
            dag: DagConfig {
                rounds: scale.pick(24, 200),
                clients_per_round: scale.pick(5, 10),
                local_batches: scale.pick(5, 10),
                walk_stop_margin: margin,
                publish_gate: gate,
                ..DagConfig::default()
            }
            .with_tip_selector(selector),
            clean_rounds: scale.pick(12, 100),
            attacks_per_round: 1,
            weight_scale: 1.0,
        };
        let mut scenario =
            GarbageAttackScenario::new(config, dataset, fmnist_model_factory(features, 10));
        scenario.run().expect("scenario failed");
        let m = scenario.measure().expect("measurement failed");
        let late = scenario
            .simulation()
            .history()
            .iter()
            .rev()
            .take(5)
            .map(|r| r.mean_accuracy())
            .sum::<f32>()
            / 5.0;
        rows.push(vec![
            name.to_string(),
            f32c(late),
            f(m.garbage_tip_fraction),
            f(m.garbage_in_cone),
        ]);
    }
    emit(
        "ablation_garbage_attack",
        &[
            "variant",
            "late_accuracy",
            "garbage_tip_fraction",
            "garbage_in_reference_cone",
        ],
        &rows,
    );
}
