//! Runs the complete experiment suite — every table and figure — and
//! writes all CSVs into the results directory.
//!
//! ```sh
//! cargo run --release -p dagfl-bench --bin run_all            # quick scale
//! DAGFL_FULL=1 cargo run --release -p dagfl-bench --bin run_all  # paper scale
//! ```

use std::process::Command;
use std::time::Instant;

use dagfl_scenario::{Scale, Scenario, ScenarioRunner, SweepRunner, SweepSpec};

/// The experiment binaries in execution order.
const EXPERIMENTS: &[&str] = &[
    "table1_hyperparams",
    "table2_pureness",
    "fig05_alpha_cluster_metrics",
    "fig06_alpha_accuracy",
    "fig07_dynamic_normalization",
    "fig08_relaxed_clusters",
    "fig09_fedavg_comparison",
    "fig10_11_fedprox_comparison",
    "fig12_poisoning_flipped",
    "fig13_poisoned_approvals",
    "fig14_poisoned_cluster_distribution",
    "fig15_walk_scalability",
    "ablation_design_choices",
    "ablation_garbage_attack",
    "specialization_matrix",
    "fig04_dag_dot",
    "async_vs_rounds",
    "mode_comparison",
    "communication_cost",
];

/// Every preset the suite's binaries resolve: the canonical registry
/// names plus the α-sweep, poisoning and delay variants the figure
/// binaries iterate over.
fn executed_presets() -> Vec<String> {
    let mut names: Vec<String> = Scenario::preset_names()
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    for alpha in ["1", "10", "100"] {
        names.push(format!("fig05-alpha{alpha}"));
    }
    for prefix in ["fig06", "fig07", "fig08"] {
        for alpha in ["0.1", "1", "10", "100"] {
            names.push(format!("{prefix}-alpha{alpha}"));
        }
    }
    names.extend(
        dagfl_bench::poisoning_suite::POISONING_PRESETS
            .iter()
            .map(|name| name.to_string()),
    );
    for delay in ["0", "2", "10"] {
        names.push(format!("async-delay{delay}"));
    }
    names.sort();
    names.dedup();
    names
}

/// Resolves and validates every scenario preset the suite will execute
/// at the current scale before any experiment burns compute, so a
/// drifted preset fails the suite in milliseconds instead of mid-run.
fn validate_presets() {
    let scale = Scale::from_env();
    let presets = executed_presets();
    let mut failures = 0;
    for name in &presets {
        match Scenario::preset_at(name, scale).and_then(ScenarioRunner::new) {
            Ok(_) => {}
            Err(e) => {
                eprintln!("preset `{name}` is invalid at {scale:?} scale: {e}");
                failures += 1;
            }
        }
    }
    // The figure binaries resolve their grids through the sweep
    // registry; expand every sweep preset up front as well.
    let sweeps = SweepSpec::preset_names();
    for (name, _) in sweeps {
        match SweepSpec::preset(name).and_then(|spec| SweepRunner::at_scale(spec, scale)) {
            Ok(_) => {}
            Err(e) => {
                eprintln!("sweep preset `{name}` is invalid at {scale:?} scale: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} invalid presets; aborting");
        std::process::exit(1);
    }
    println!(
        "validated {} scenario presets and {} sweep presets at {scale:?} scale\n",
        presets.len(),
        sweeps.len()
    );
}

fn main() {
    validate_presets();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("binary directory");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let path = bin_dir.join(name);
        println!("=== running {name} ===");
        let started = Instant::now();
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when the sibling binary has not been
            // built (e.g. `cargo run --bin run_all` without `--bins`).
            Command::new("cargo")
                .args(["run", "--release", "-p", "dagfl-bench", "--bin", name])
                .status()
        };
        match status {
            Ok(s) if s.success() => {
                println!("=== {name} finished in {:.1?} ===\n", started.elapsed());
            }
            Ok(s) => {
                eprintln!("=== {name} FAILED with {s} ===\n");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("=== {name} could not start: {e} ===\n");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
