//! Runs the complete experiment suite — every table and figure — and
//! writes all CSVs into the results directory.
//!
//! ```sh
//! cargo run --release -p dagfl-bench --bin run_all            # quick scale
//! DAGFL_FULL=1 cargo run --release -p dagfl-bench --bin run_all  # paper scale
//! ```

use std::process::Command;
use std::time::Instant;

/// The experiment binaries in execution order.
const EXPERIMENTS: &[&str] = &[
    "table1_hyperparams",
    "table2_pureness",
    "fig05_alpha_cluster_metrics",
    "fig06_alpha_accuracy",
    "fig07_dynamic_normalization",
    "fig08_relaxed_clusters",
    "fig09_fedavg_comparison",
    "fig10_11_fedprox_comparison",
    "fig12_poisoning_flipped",
    "fig13_poisoned_approvals",
    "fig14_poisoned_cluster_distribution",
    "fig15_walk_scalability",
    "ablation_design_choices",
    "ablation_garbage_attack",
    "specialization_matrix",
    "fig04_dag_dot",
    "async_vs_rounds",
    "mode_comparison",
    "communication_cost",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("binary directory");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let path = bin_dir.join(name);
        println!("=== running {name} ===");
        let started = Instant::now();
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when the sibling binary has not been
            // built (e.g. `cargo run --bin run_all` without `--bins`).
            Command::new("cargo")
                .args(["run", "--release", "-p", "dagfl-bench", "--bin", name])
                .status()
        };
        match status {
            Ok(s) if s.success() => {
                println!("=== {name} finished in {:.1?} ===\n", started.elapsed());
            }
            Ok(s) => {
                eprintln!("=== {name} FAILED with {s} ===\n");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("=== {name} could not start: {e} ===\n");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
