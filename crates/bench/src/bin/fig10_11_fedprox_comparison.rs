//! Figures 10 & 11: average accuracy (Fig. 10) and loss (Fig. 11) per
//! round on the FedProx synthetic(0.5, 0.5) benchmark — Specializing DAG
//! vs FedAvg vs FedProx, 30 clients with 10 active per round.
//!
//! Following Li et al.'s systems-heterogeneity setup, half of the active
//! clients are stragglers each round: FedAvg *drops* their partial
//! updates, FedProx *incorporates* them (the proximal term keeps partial
//! work useful). The DAG has no stragglers — it is asynchronous by
//! design (§5.3.3).
//!
//! Paper shape: the centralized approaches are steadier early; the DAG is
//! noisier (statistical tip selection) but eventually outperforms FedAvg
//! on both metrics and approaches FedProx on loss.

use dagfl_baselines::FederatedServer;
use dagfl_bench::experiments::{fedprox_dataset, fedprox_spec, run_dag};
use dagfl_bench::output::{emit, f32c, int};
use dagfl_bench::{fedprox_model_factory, Scale};

fn main() {
    let scale = Scale::from_env();
    let spec = fedprox_spec(scale);
    let mut rows = Vec::new();

    // Specializing DAG.
    let sim = run_dag(spec, fedprox_dataset(scale, 42), fedprox_model_factory());
    for m in sim.history() {
        rows.push(vec![
            "dag".into(),
            int(m.round + 1),
            f32c(m.mean_accuracy()),
            f32c(m.mean_loss()),
        ]);
    }

    // Centralized baselines under 50 % stragglers.
    for (name, mu, drop) in [("fedavg", 0.0f32, true), ("fedprox", 0.1, false)] {
        let mut config = spec.fed_config(mu);
        config.straggler_fraction = 0.5;
        config.drop_stragglers = drop;
        let mut server =
            FederatedServer::new(config, fedprox_dataset(scale, 42), fedprox_model_factory());
        server.run().expect("centralized training failed");
        for m in server.history() {
            rows.push(vec![
                name.into(),
                int(m.round + 1),
                f32c(m.mean_accuracy()),
                f32c(m.mean_loss()),
            ]);
        }
    }

    emit(
        "fig10_11_fedprox_comparison",
        &["algorithm", "round", "accuracy", "loss"],
        &rows,
    );
}
