//! Table 1: the fixed training hyperparameters per dataset.
//!
//! This binary prints the hyperparameter table encoded in
//! [`dagfl_core::Hyperparameters`] — the same values the simulation
//! configs are built from, so the table can never drift from the code.

use dagfl_bench::output::emit;
use dagfl_core::Hyperparameters;

fn main() {
    let columns = [
        ("FMNIST-clustered", Hyperparameters::fmnist()),
        ("Poets", Hyperparameters::poets()),
        ("CIFAR-100", Hyperparameters::cifar()),
    ];
    let rows: Vec<Vec<String>> = columns
        .iter()
        .map(|(name, h)| {
            vec![
                name.to_string(),
                h.rounds.to_string(),
                h.clients_per_round.to_string(),
                h.local_epochs.to_string(),
                h.local_batches.to_string(),
                h.batch_size.to_string(),
                format!("SGD({})", h.learning_rate),
            ]
        })
        .collect();
    emit(
        "table1_hyperparams",
        &[
            "dataset",
            "training_rounds",
            "clients_per_round",
            "local_epochs",
            "local_batches",
            "batch_size",
            "optimizer",
        ],
        &rows,
    );
}
