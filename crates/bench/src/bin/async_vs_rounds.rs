//! Asynchronous operation (§5.3.3): the paper's algorithm needs no
//! rounds — this experiment runs the event-driven simulator against the
//! round-based one on the same dataset and training budget and compares
//! learning progress and specialization.
//!
//! Expected shape: comparable final accuracy and pureness; larger
//! propagation delays widen the DAG frontier (more tips) without breaking
//! convergence — the asynchrony-tolerance the tangle design buys.

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec, run_dag};
use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{AsyncConfig, AsyncSimulation, DelayModel};

fn main() {
    let scale = Scale::from_env();
    let spec = fmnist_spec(scale);
    let mut rows = Vec::new();

    // Round-based reference run.
    let dataset = fmnist_dataset(scale, 0.0, 42);
    let features = dataset.feature_len();
    let sim = run_dag(spec, dataset, fmnist_model_factory(features, 10));
    let late: f32 = sim
        .history()
        .iter()
        .rev()
        .take(5)
        .map(|m| m.mean_accuracy())
        .sum::<f32>()
        / 5.0;
    rows.push(vec![
        "rounds".into(),
        f(0.0),
        f32c(late),
        f(sim.approval_pureness()),
        int(sim.tangle().read().stats().tips),
        int(sim.tangle().len()),
    ]);

    // Asynchronous runs with increasing propagation delay. The total
    // number of activations matches the round-based training budget.
    let activations = spec.rounds * spec.clients_per_round;
    for delay in [0.0f64, 2.0, 10.0] {
        let dataset = fmnist_dataset(scale, 0.0, 42);
        let mut async_sim = AsyncSimulation::new(
            AsyncConfig {
                dag: spec.dag_config(),
                total_activations: activations,
                mean_interarrival: 1.0,
                delay: DelayModel::constant(delay),
                ..AsyncConfig::default()
            },
            dataset,
            fmnist_model_factory(features, 10),
        );
        async_sim.run().expect("async simulation failed");
        rows.push(vec![
            format!("async_delay_{delay}"),
            f(delay),
            f32c(async_sim.recent_accuracy(spec.clients_per_round * 5)),
            f(async_sim.approval_pureness()),
            int(async_sim.tangle().stats().tips),
            int(async_sim.tangle().len()),
        ]);
    }

    emit(
        "async_vs_rounds",
        &[
            "mode",
            "visibility_delay",
            "late_accuracy",
            "pureness",
            "tips",
            "transactions",
        ],
        &rows,
    );
}
