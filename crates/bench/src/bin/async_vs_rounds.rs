//! Asynchronous operation (§5.3.3): the paper's algorithm needs no
//! rounds — this experiment runs the event-driven simulator against the
//! round-based one on the same dataset and training budget and compares
//! learning progress and specialization.
//!
//! Expected shape: comparable final accuracy and pureness; larger
//! propagation delays widen the DAG frontier (more tips) without breaking
//! convergence — the asynchrony-tolerance the tangle design buys.
//!
//! The round reference is the `table1-fmnist` preset; the asynchronous
//! runs are the budget-matched `async-delay*` presets.

use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_scenario::{RunReport, Scenario, ScenarioRunner};

fn run_preset(name: &str) -> RunReport {
    ScenarioRunner::new(Scenario::preset(name).expect("preset exists"))
        .expect("preset validates")
        .run()
        .expect("scenario run failed")
}

fn main() {
    let mut rows = Vec::new();

    // Round-based reference run: late accuracy over the last 5 rounds.
    let rounds = run_preset("table1-fmnist");
    let late: f32 = rounds.round_accuracy.iter().rev().take(5).sum::<f32>() / 5.0;
    rows.push(vec![
        "rounds".into(),
        f(0.0),
        f32c(late),
        f(rounds.specialization.approval_pureness),
        int(rounds.tangle.tips),
        int(rounds.tangle.transactions),
    ]);

    // Asynchronous runs with increasing propagation delay; the presets
    // match the round-based training budget (rounds x clients_per_round
    // activations) and report accuracy over an equivalent late window.
    for delay in [0.0f64, 2.0, 10.0] {
        let report = run_preset(&format!("async-delay{delay:.0}"));
        rows.push(vec![
            format!("async_delay_{delay}"),
            f(delay),
            f32c(report.recent_accuracy),
            f(report.specialization.approval_pureness),
            int(report.tangle.tips),
            int(report.tangle.transactions),
        ]);
    }

    emit(
        "async_vs_rounds",
        &[
            "mode",
            "visibility_delay",
            "late_accuracy",
            "pureness",
            "tips",
            "transactions",
        ],
        &rows,
    );
}
