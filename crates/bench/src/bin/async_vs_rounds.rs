//! Asynchronous operation (§5.3.3): the paper's algorithm needs no
//! rounds — this experiment runs the event-driven simulator against the
//! round-based one on the same dataset and training budget and compares
//! learning progress and specialization.
//!
//! Expected shape: comparable final accuracy and pureness; larger
//! propagation delays widen the DAG frontier (more tips) without breaking
//! convergence — the asynchrony-tolerance the tangle design buys.
//!
//! The round reference is the `table1-fmnist` preset; the asynchronous
//! delay grid is the `sweep-async-delay` sweep preset (base
//! `async-delay2`, axis `execution.delay`, budget-matched to the round
//! reference).

use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{axis_f64, run_sweep_preset};
use dagfl_scenario::{Scenario, ScenarioRunner};

fn main() {
    let mut rows = Vec::new();

    // Round-based reference run: late accuracy over the last 5 rounds.
    let rounds = ScenarioRunner::new(Scenario::preset("table1-fmnist").expect("preset exists"))
        .expect("preset validates")
        .run()
        .expect("scenario run failed");
    let late: f32 = rounds.round_accuracy.iter().rev().take(5).sum::<f32>() / 5.0;
    rows.push(vec![
        "rounds".into(),
        f(0.0),
        f32c(late),
        f(rounds.specialization.approval_pureness),
        int(rounds.tangle.tips),
        int(rounds.tangle.transactions),
    ]);

    // Asynchronous cells with increasing propagation delay; the sweep
    // matches the round-based training budget (rounds x clients_per_round
    // activations) and reports accuracy over an equivalent late window.
    let sweep = run_sweep_preset("sweep-async-delay");
    for cell in &sweep.cells {
        let delay = axis_f64(cell, "execution.delay");
        rows.push(vec![
            format!("async_delay_{delay}"),
            f(delay),
            f32c(cell.report.recent_accuracy),
            f(cell.report.specialization.approval_pureness),
            int(cell.report.tangle.tips),
            int(cell.report.tangle.transactions),
        ]);
    }

    emit(
        "async_vs_rounds",
        &[
            "mode",
            "visibility_delay",
            "late_accuracy",
            "pureness",
            "tips",
            "transactions",
        ],
        &rows,
    );
}
