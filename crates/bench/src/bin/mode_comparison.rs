//! Round-based vs asynchronous execution on an equal logical-time
//! budget with identical seeds.
//!
//! The round simulator compresses one logical time unit into one round
//! of `clients_per_round` parallel activations; the asynchronous
//! simulator spreads the same activation budget over the same expected
//! logical time through per-client Poisson clocks: `mean_interarrival =
//! num_clients / clients_per_round`, scaled by the compute profile's
//! expected mean speed so that scenarios with a slow cohort keep the
//! same aggregate activation rate. Every mode therefore performs the
//! same amount of training work in the same expected logical time, from
//! the same seeds — what differs is purely the network model (the
//! realised `logical_time` column shows the residual Poisson noise).
//!
//! Expected shape: comparable accuracy and pureness across modes;
//! heterogeneous links (cohorts) raise publish latency and widen the
//! DAG without breaking convergence; positive training time introduces
//! stale tips, which the re-selection policy absorbs.

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec};
use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{
    AsyncConfig, AsyncSimulation, ComputeProfile, DelayModel, ExecutionMode, Simulation,
    StaleTipPolicy,
};

/// The asynchronous network scenarios compared against the round mode.
fn async_scenarios() -> Vec<(
    &'static str,
    DelayModel,
    ComputeProfile,
    f64,
    StaleTipPolicy,
)> {
    vec![
        (
            "async_constant",
            DelayModel::Constant { delay: 2.0 },
            ComputeProfile::Uniform,
            0.0,
            StaleTipPolicy::PublishAnyway,
        ),
        (
            "async_jitter",
            DelayModel::UniformJitter {
                base: 1.0,
                jitter: 2.0,
            },
            ComputeProfile::Uniform,
            0.0,
            StaleTipPolicy::PublishAnyway,
        ),
        (
            "async_cohorts",
            DelayModel::Cohorts {
                slow_fraction: 0.3,
                fast: 1.0,
                slow: 8.0,
                jitter: 1.0,
            },
            // The same clients are network-slow and compute-slow — the
            // realistic straggler regime.
            ComputeProfile::MatchNetworkCohort { slowdown: 4.0 },
            0.5,
            StaleTipPolicy::Reselect,
        ),
    ]
}

/// The mode-agnostic columns, collected through [`ExecutionMode`].
fn shared_columns(mode: &mut dyn ExecutionMode, seed: u64, window: usize) -> Vec<String> {
    mode.run_to_completion().expect("simulation failed");
    let stats = mode.tangle_stats();
    let spec = mode.specialization_metrics_seeded(seed ^ 0xC0FF_EE00);
    vec![
        mode.mode_name().to_string(),
        seed.to_string(),
        int(mode.progress()),
        f32c(mode.recent_accuracy(window)),
        f(mode.approval_pureness()),
        f(spec.modularity),
        int(stats.tips),
        int(stats.transactions),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let spec = fmnist_spec(scale);
    let budget = spec.rounds * spec.clients_per_round;
    let window = spec.clients_per_round * 5;
    let seeds: &[u64] = &[42, 43];
    let mut rows = Vec::new();

    for &seed in seeds {
        // Round-based reference: `spec.rounds` logical time units.
        let dataset = fmnist_dataset(scale, 0.0, seed);
        let num_clients = dataset.num_clients();
        let features = dataset.feature_len();
        let mut sim = Simulation::new(
            spec.with_seed(seed).dag_config(),
            dataset,
            fmnist_model_factory(features, 10),
        );
        let mut row = shared_columns(&mut sim, seed, window);
        row[2] = int(budget); // progress in activations, not rounds
        row.extend((0..6).map(|_| String::new()));
        rows.push(row);

        // Asynchronous runs: same seeds, same activation budget, same
        // expected aggregate rate — one logical time unit per round
        // equivalent, with the per-client gap shrunk by the expected
        // mean speed so slow cohorts do not stretch the budget.
        for (name, delay, compute, train_time, stale_policy) in async_scenarios() {
            let mean_interarrival = num_clients as f64 / spec.clients_per_round as f64
                * compute.expected_mean_speed(delay.slow_fraction());
            let dataset = fmnist_dataset(scale, 0.0, seed);
            let mut sim = AsyncSimulation::new(
                AsyncConfig {
                    dag: spec.with_seed(seed).dag_config(),
                    total_activations: budget,
                    mean_interarrival,
                    delay,
                    compute,
                    train_time,
                    stale_policy,
                    gossip_fanout: 0,
                    workers: 1,
                },
                dataset,
                fmnist_model_factory(features, 10),
            );
            let mut row = shared_columns(&mut sim, seed, window);
            row[0] = name.to_string();
            let m = sim.metrics();
            row.extend([
                f(m.activation_rate()),
                f(m.mean_publish_latency),
                f(m.stale_fraction()),
                int(m.reselections),
                f(m.mean_confirmation_depth),
                f(m.elapsed),
            ]);
            rows.push(row);
        }
    }

    emit(
        "mode_comparison",
        &[
            "mode",
            "seed",
            "activations",
            "late_accuracy",
            "pureness",
            "modularity",
            "tips",
            "transactions",
            "activation_rate",
            "mean_publish_latency",
            "stale_fraction",
            "reselections",
            "confirmation_depth",
            "logical_time",
        ],
        &rows,
    );
}
