//! Figure 2/4 companion: exports the DAG of a short FMNIST-clustered run
//! as Graphviz DOT, with transactions coloured by their issuer's
//! ground-truth cluster — rendering it shows the cluster formation of
//! Figure 4.
//!
//! ```sh
//! cargo run --release -p dagfl-bench --bin fig04_dag_dot
//! dot -Tsvg results/fig04_dag.dot -o dag.svg   # if graphviz is installed
//! ```

use std::fs;

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec, run_dag};
use dagfl_bench::output::results_dir;
use dagfl_bench::{fmnist_model_factory, Scale};

/// Distinct fill colours per ground-truth cluster.
const COLORS: [&str; 6] = [
    "lightblue",
    "lightsalmon",
    "palegreen",
    "plum",
    "khaki",
    "lightcyan",
];

fn main() {
    let scale = Scale::from_env();
    // A short run keeps the graph small enough to render readably.
    let mut spec = fmnist_spec(scale);
    spec.rounds = spec.rounds.min(12);
    let dataset = fmnist_dataset(scale, 0.0, 42);
    let features = dataset.feature_len();
    let sim = run_dag(spec, dataset, fmnist_model_factory(features, 10));
    let clusters = sim.dataset().cluster_labels();
    let tangle = sim.tangle().to_tangle();
    let dot = tangle.to_dot(|tx| match tx.issuer() {
        Some(issuer) => {
            let cluster = clusters[issuer as usize];
            format!("style=filled fillcolor={} ", COLORS[cluster % COLORS.len()])
        }
        None => "shape=doublecircle ".to_string(),
    });
    let path = results_dir().join("fig04_dag.dot");
    fs::create_dir_all(results_dir()).expect("results dir");
    fs::write(&path, &dot).expect("write dot file");
    let stats = tangle.stats();
    println!(
        "wrote {} ({} transactions, {} tips, depth {})",
        path.display(),
        stats.transactions,
        stats.tips,
        stats.max_depth
    );
    println!("render with: dot -Tsvg {} -o dag.svg", path.display());
}
