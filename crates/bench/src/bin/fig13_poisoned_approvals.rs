//! Figure 13: the average number of poisoned transactions (directly or
//! indirectly) approved by clients' reference transactions, per round.
//!
//! Paper shape: the accuracy selector approves *more* poisoned
//! transactions than the random selector at equal p — yet causes fewer
//! mispredictions (Figure 12), because the poison is contained within the
//! attackers' own cluster.

use dagfl_bench::output::{emit, f, int};
use dagfl_bench::poisoning_suite::run_suite;
use dagfl_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let results = run_suite(scale);
    let mut rows = Vec::new();
    for result in &results {
        // p = 0.0 has no poisoned transactions by construction; the paper
        // plots only the attacked scenarios.
        if result.fraction == 0.0 {
            continue;
        }
        for m in &result.measurements {
            rows.push(vec![
                result.label.clone(),
                result.selector_name.into(),
                int(m.round),
                f(m.approved_poisoned),
            ]);
        }
    }
    emit(
        "fig13_poisoned_approvals",
        &["scenario", "selector", "round", "approved_poisoned_txs"],
        &rows,
    );
}
