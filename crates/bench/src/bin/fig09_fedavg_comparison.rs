//! Figure 9: per-client accuracy distributions, Specializing DAG vs
//! FedAvg, on all three datasets, grouped over five consecutive rounds
//! (the paper's box plots).
//!
//! Paper shape: the DAG improves faster with a tighter spread on
//! FMNIST-clustered; on Poets and CIFAR-100 both approaches reach similar
//! accuracy — removing the central server costs nothing.

use dagfl_bench::experiments::{
    cifar_dataset, cifar_spec, fmnist_dataset, fmnist_spec, poets_dataset, poets_spec, run_dag,
    run_fed, RunSpec,
};
use dagfl_bench::output::{emit, f32c, int};
use dagfl_bench::{cifar_model_factory, fmnist_model_factory, poets_model_factory, Scale};
use dagfl_core::ModelFactory;
use dagfl_datasets::FederatedDataset;
use dagfl_tensor::Summary;

/// Summarises accuracies grouped over 5-round windows.
fn grouped(accs_per_round: &[Vec<f32>]) -> Vec<(usize, Summary)> {
    accs_per_round
        .chunks(5)
        .enumerate()
        .map(|(group, chunk)| {
            let all: Vec<f32> = chunk.iter().flatten().copied().collect();
            ((group + 1) * 5, Summary::of(&all))
        })
        .collect()
}

fn run_pair(
    name: &str,
    spec: RunSpec,
    dataset: FederatedDataset,
    factory: ModelFactory,
    rows: &mut Vec<Vec<String>>,
) {
    let sim = run_dag(spec, dataset.clone(), factory.clone());
    let dag_accs: Vec<Vec<f32>> = sim.history().iter().map(|m| m.accuracies.clone()).collect();
    let server = run_fed(spec, 0.0, dataset, factory);
    let fed_accs: Vec<Vec<f32>> = server
        .history()
        .iter()
        .map(|m| m.accuracies.clone())
        .collect();
    for (algorithm, accs) in [("dag", dag_accs), ("fedavg", fed_accs)] {
        for (rounds, s) in grouped(&accs) {
            rows.push(vec![
                name.into(),
                algorithm.into(),
                int(rounds),
                f32c(s.mean),
                f32c(s.stddev),
                f32c(s.min),
                f32c(s.q1),
                f32c(s.median),
                f32c(s.q3),
                f32c(s.max),
            ]);
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();

    let dataset = fmnist_dataset(scale, 0.0, 42);
    let features = dataset.feature_len();
    run_pair(
        "fmnist-clustered",
        fmnist_spec(scale),
        dataset,
        fmnist_model_factory(features, 10),
        &mut rows,
    );

    let dataset = poets_dataset(scale, 42);
    run_pair(
        "poets",
        poets_spec(scale),
        dataset,
        poets_model_factory(),
        &mut rows,
    );

    let dataset = cifar_dataset(scale, 42);
    let features = dataset.feature_len();
    run_pair(
        "cifar100",
        cifar_spec(scale),
        dataset,
        cifar_model_factory(features),
        &mut rows,
    );

    emit(
        "fig09_fedavg_comparison",
        &[
            "dataset",
            "algorithm",
            "rounds",
            "mean",
            "stddev",
            "min",
            "q1",
            "median",
            "q3",
            "max",
        ],
        &rows,
    );
}
