//! Figure 12: flipped predictions of class-3/8 samples under label-flip
//! poisoning, for p ∈ {0.0, 0.2, 0.3} with the accuracy tip selector and
//! p = 0.2 with the random tip selector.
//!
//! Paper shape: p = 0.2 stays within the p = 0.0 variance; p = 0.3 is
//! noticeable but below 30 % mispredictions; the random selector with
//! p = 0.2 suffers *more* mispredictions than the accuracy selector with
//! p = 0.3.

use dagfl_bench::output::{emit, f, int};
use dagfl_bench::poisoning_suite::run_suite;
use dagfl_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let results = run_suite(scale);
    let mut rows = Vec::new();
    for result in &results {
        for m in &result.measurements {
            rows.push(vec![
                result.label.clone(),
                result.selector_name.into(),
                int(m.round),
                f(m.flipped_fraction * 100.0),
            ]);
        }
    }
    emit(
        "fig12_poisoning_flipped",
        &["scenario", "selector", "round", "flipped_predictions_pct"],
        &rows,
    );
}
