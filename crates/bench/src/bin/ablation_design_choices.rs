//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Publish gate** — best-parent vs averaged-reference vs always.
//! 2. **Walk-start depth band** — Popov's 15–25 vs walking from genesis.
//! 3. **Tip-selection strategy** — accuracy vs cumulative-weight vs random
//!    (the Figure 3 classic bias as a third arm).
//!
//! Each arm runs the FMNIST-clustered workload and reports final mean
//! accuracy, approval pureness and publication counts.

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec};
use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{DagConfig, PublishGate, Simulation, TipSelector};

fn run(config: DagConfig, scale: Scale) -> (f32, f64, usize, usize) {
    let dataset = fmnist_dataset(scale, 0.0, 42);
    let features = dataset.feature_len();
    let mut sim = Simulation::new(config, dataset, fmnist_model_factory(features, 10));
    sim.run().expect("simulation failed");
    let late: f32 = sim
        .history()
        .iter()
        .rev()
        .take(5)
        .map(|m| m.mean_accuracy())
        .sum::<f32>()
        / 5.0;
    let published: usize = sim.history().iter().map(|m| m.published).sum();
    (late, sim.approval_pureness(), published, sim.tangle().len())
}

fn main() {
    let scale = Scale::from_env();
    let base = fmnist_spec(scale).dag_config();
    let mut rows = Vec::new();
    let mut record = |name: &str, config: DagConfig| {
        let (acc, pureness, published, txs) = run(config, scale);
        rows.push(vec![
            name.to_string(),
            f32c(acc),
            f(pureness),
            int(published),
            int(txs),
        ]);
    };

    // 1. Publish gate.
    record(
        "gate_best_parent",
        DagConfig {
            publish_gate: PublishGate::BestParent,
            ..base
        },
    );
    record(
        "gate_averaged_reference",
        DagConfig {
            publish_gate: PublishGate::AveragedReference,
            ..base
        },
    );
    record(
        "gate_always",
        DagConfig {
            publish_gate: PublishGate::Always,
            ..base
        },
    );

    // 2. Walk-start depth band.
    record(
        "walk_from_genesis",
        DagConfig {
            walk_depth: (u32::MAX - 1, u32::MAX),
            ..base
        },
    );
    record(
        "walk_depth_15_25",
        DagConfig {
            walk_depth: (15, 25),
            ..base
        },
    );

    // 3. Tip-selection strategy.
    record(
        "selector_cumulative_weight",
        base.with_tip_selector(TipSelector::CumulativeWeight { alpha: 0.5 }),
    );
    record(
        "selector_random",
        base.with_tip_selector(TipSelector::Random),
    );

    // 4. Accuracy-cliff guard.
    record(
        "cliff_guard_0_25",
        DagConfig {
            walk_stop_margin: Some(0.25),
            ..base
        },
    );

    emit(
        "ablation_design_choices",
        &[
            "variant",
            "late_accuracy",
            "pureness",
            "published",
            "transactions",
        ],
        &rows,
    );
}
