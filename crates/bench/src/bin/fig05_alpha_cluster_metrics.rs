//! Figure 5: choosing α on FMNIST-clustered — modularity (a), number of
//! partitions (b) and misclassification fraction (c) of `G_clients` over
//! the training rounds, for α ∈ {1, 10, 100}.
//!
//! Paper shape: α = 10 balances best (rising modularity, few partitions,
//! near-zero misclassification); α = 1 degrades modularity and
//! misclassifies heavily; α = 100 keeps modularity high but fragments into
//! too many partitions.
//!
//! The α grid is the `sweep-fig05-alpha` sweep preset (base
//! `fig05-alpha10` with specialization tracking, axis `execution.alpha`);
//! this binary only reshapes the sweep report into a CSV.

use dagfl_bench::output::{emit, f, int};
use dagfl_bench::{axis_f64, run_sweep_preset};

fn main() {
    let sweep = run_sweep_preset("sweep-fig05-alpha");
    let mut rows = Vec::new();
    for cell in &sweep.cells {
        let alpha = axis_f64(cell, "execution.alpha");
        for (round, m) in &cell.report.specialization_track {
            // The base preset runs the analytics pipeline on the same
            // cadence as the tracking, so each row can carry the
            // unsupervised purity next to the graph metrics (empty when
            // no snapshot landed on this round).
            let purity = cell
                .report
                .analysis_track
                .iter()
                .find(|s| s.round == *round)
                .and_then(|s| s.parameters.as_ref())
                .map_or_else(String::new, |p| f(p.purity));
            rows.push(vec![
                f(alpha),
                int(*round),
                f(m.modularity),
                int(m.partitions),
                f(m.misclassification),
                purity,
            ]);
        }
    }
    emit(
        "fig05_alpha_cluster_metrics",
        &[
            "alpha",
            "round",
            "modularity",
            "partitions",
            "misclassification",
            "analysis_purity",
        ],
        &rows,
    );
}
