//! Figure 5: choosing α on FMNIST-clustered — modularity (a), number of
//! partitions (b) and misclassification fraction (c) of `G_clients` over
//! the training rounds, for α ∈ {1, 10, 100}.
//!
//! Paper shape: α = 10 balances best (rising modularity, few partitions,
//! near-zero misclassification); α = 1 degrades modularity and
//! misclassifies heavily; α = 100 keeps modularity high but fragments into
//! too many partitions.
//!
//! Each curve is a `fig05-alpha*` scenario preset with specialization
//! tracking enabled; this binary only reshapes the reports into a CSV.

use dagfl_bench::output::{emit, f, int};
use dagfl_scenario::{Scenario, ScenarioRunner};

fn main() {
    let mut rows = Vec::new();
    for alpha in [1.0f32, 10.0, 100.0] {
        let scenario = Scenario::preset(&format!("fig05-alpha{alpha}")).expect("preset exists");
        let report = ScenarioRunner::new(scenario)
            .expect("preset validates")
            .run()
            .expect("scenario run failed");
        for (round, m) in &report.specialization_track {
            rows.push(vec![
                f(alpha as f64),
                int(*round),
                f(m.modularity),
                int(m.partitions),
                f(m.misclassification),
            ]);
        }
    }
    emit(
        "fig05_alpha_cluster_metrics",
        &[
            "alpha",
            "round",
            "modularity",
            "partitions",
            "misclassification",
        ],
        &rows,
    );
}
