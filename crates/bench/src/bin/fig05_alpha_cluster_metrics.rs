//! Figure 5: choosing α on FMNIST-clustered — modularity (a), number of
//! partitions (b) and misclassification fraction (c) of `G_clients` over
//! the training rounds, for α ∈ {1, 10, 100}.
//!
//! Paper shape: α = 10 balances best (rising modularity, few partitions,
//! near-zero misclassification); α = 1 degrades modularity and
//! misclassifies heavily; α = 100 keeps modularity high but fragments into
//! too many partitions.

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec, run_dag_tracking_specialization};
use dagfl_bench::output::{emit, f, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{Normalization, TipSelector};

fn main() {
    let scale = Scale::from_env();
    let every = scale.pick(3, 10);
    let mut rows = Vec::new();
    for alpha in [1.0f32, 10.0, 100.0] {
        let dataset = fmnist_dataset(scale, 0.0, 42);
        let features = dataset.feature_len();
        let spec = fmnist_spec(scale).with_selector(TipSelector::Accuracy {
            alpha,
            normalization: Normalization::Simple,
        });
        let (_, tracked) = run_dag_tracking_specialization(
            spec,
            dataset,
            fmnist_model_factory(features, 10),
            every,
        );
        for (round, m) in tracked {
            rows.push(vec![
                f(alpha as f64),
                int(round),
                f(m.modularity),
                int(m.partitions),
                f(m.misclassification),
            ]);
        }
    }
    emit(
        "fig05_alpha_cluster_metrics",
        &[
            "alpha",
            "round",
            "modularity",
            "partitions",
            "misclassification",
        ],
        &rows,
    );
}
