//! Figure 6: accuracy per round on FMNIST-clustered for
//! α ∈ {0.1, 1, 10, 100} with the *simple* normalization (Eq. 1–2).
//!
//! Paper shape: higher α improves accuracy earlier; all α eventually come
//! close to 1.0 because the task is solvable by a generalised model.

use dagfl_bench::experiments::{fmnist_dataset, fmnist_spec, run_dag};
use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{fmnist_model_factory, Scale};
use dagfl_core::{Normalization, TipSelector};

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for alpha in [0.1f32, 1.0, 10.0, 100.0] {
        let dataset = fmnist_dataset(scale, 0.0, 42);
        let features = dataset.feature_len();
        let spec = fmnist_spec(scale).with_selector(TipSelector::Accuracy {
            alpha,
            normalization: Normalization::Simple,
        });
        let sim = run_dag(spec, dataset, fmnist_model_factory(features, 10));
        for m in sim.history() {
            rows.push(vec![
                f(alpha as f64),
                int(m.round + 1),
                f32c(m.mean_accuracy()),
            ]);
        }
    }
    emit(
        "fig06_alpha_accuracy",
        &["alpha", "round", "accuracy"],
        &rows,
    );
}
