//! Figure 6: accuracy per round on FMNIST-clustered for
//! α ∈ {0.1, 1, 10, 100} with the *simple* normalization (Eq. 1–2).
//!
//! Paper shape: higher α improves accuracy earlier; all α eventually come
//! close to 1.0 because the task is solvable by a generalised model.
//!
//! The experiment itself is data: one `fig06-alpha*` scenario preset per
//! curve, executed by the shared `ScenarioRunner`.

use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_scenario::{Scenario, ScenarioRunner};

fn main() {
    let mut rows = Vec::new();
    for alpha in [0.1f32, 1.0, 10.0, 100.0] {
        let scenario = Scenario::preset(&format!("fig06-alpha{alpha}")).expect("preset exists");
        let report = ScenarioRunner::new(scenario)
            .expect("preset validates")
            .run()
            .expect("scenario run failed");
        for (round, accuracy) in report.round_accuracy.iter().enumerate() {
            rows.push(vec![f(alpha as f64), int(round + 1), f32c(*accuracy)]);
        }
    }
    emit(
        "fig06_alpha_accuracy",
        &["alpha", "round", "accuracy"],
        &rows,
    );
}
