//! Figure 6: accuracy per round on FMNIST-clustered for
//! α ∈ {0.1, 1, 10, 100} with the *simple* normalization (Eq. 1–2).
//!
//! Paper shape: higher α improves accuracy earlier; all α eventually come
//! close to 1.0 because the task is solvable by a generalised model.
//!
//! The whole grid is the `sweep-fig06-alpha` sweep preset (base
//! `fig06-alpha10`, axis `execution.alpha`), executed cell-parallel by
//! the shared sweep engine.

use dagfl_bench::output::{emit, f, f32c, int};
use dagfl_bench::{axis_f64, run_sweep_preset};

fn main() {
    let sweep = run_sweep_preset("sweep-fig06-alpha");
    let mut rows = Vec::new();
    for cell in &sweep.cells {
        let alpha = axis_f64(cell, "execution.alpha");
        for (round, accuracy) in cell.report.round_accuracy.iter().enumerate() {
            rows.push(vec![f(alpha), int(round + 1), f32c(*accuracy)]);
        }
    }
    emit(
        "fig06_alpha_accuracy",
        &["alpha", "round", "accuracy"],
        &rows,
    );
}
