//! Result output: CSVs under the results directory plus stdout tables.

use std::path::PathBuf;

use dagfl_core::csv::{to_csv_string, write_csv};

/// The results directory (`DAGFL_RESULTS`, default `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var("DAGFL_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Writes a result series as `results/<name>.csv` and echoes it to stdout.
///
/// # Panics
///
/// Panics on I/O errors (experiment binaries should fail loudly) or if a
/// row's width differs from the header's.
pub fn emit(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    write_csv(&path, header, rows).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("--- {name} (written to {}) ---", path.display());
    print!("{}", to_csv_string(header, rows));
    println!();
}

/// Formats a float column value.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats an `f32` column value.
pub fn f32c(v: f32) -> String {
    format!("{v:.4}")
}

/// Formats an integer column value.
pub fn int(v: usize) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters_are_stable() {
        assert_eq!(f(0.123456), "0.1235");
        assert_eq!(f32c(1.0), "1.0000");
        assert_eq!(int(42), "42");
    }

    #[test]
    fn results_dir_honours_env() {
        // Note: avoid mutating the process environment in tests; just
        // check the default.
        let dir = results_dir();
        assert!(dir.ends_with("results") || dir.is_absolute() || dir.components().count() >= 1);
    }
}
