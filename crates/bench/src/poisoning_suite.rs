//! The shared poisoning experiment suite behind Figures 12–14.
//!
//! All three figures come from the same four runs (p ∈ {0.0, 0.2, 0.3}
//! with the accuracy tip selector, plus p = 0.2 with the random selector),
//! so the suite runs them once and each binary extracts its slice.

use dagfl_core::{DagConfig, PoisonRoundMetrics, PoisoningConfig, PoisoningScenario, TipSelector};

use crate::experiments::fmnist_author_dataset;
use crate::{fmnist_model_factory, Scale};

/// The result of one poisoning scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Human-readable scenario label (e.g. `p=0.2`).
    pub label: String,
    /// Fraction of poisoned clients.
    pub fraction: f64,
    /// Tip selector used.
    pub selector_name: &'static str,
    /// Per-measurement metrics over the attack phase.
    pub measurements: Vec<PoisonRoundMetrics>,
    /// Final `(community, benign, poisoned)` distribution (Figure 14).
    pub distribution: Vec<(usize, usize, usize)>,
}

/// Runs the paper's four poisoning scenarios at the given scale.
///
/// # Panics
///
/// Panics on simulation errors.
pub fn run_suite(scale: Scale) -> Vec<ScenarioResult> {
    let scenarios: [(f64, TipSelector, &'static str); 4] = [
        (0.0, TipSelector::default(), "accuracy"),
        (0.2, TipSelector::default(), "accuracy"),
        (0.2, TipSelector::Random, "random"),
        (0.3, TipSelector::default(), "accuracy"),
    ];
    scenarios
        .into_iter()
        .map(|(fraction, selector, selector_name)| {
            run_scenario(scale, fraction, selector, selector_name)
        })
        .collect()
}

/// Runs one poisoning scenario.
///
/// # Panics
///
/// Panics on simulation errors.
pub fn run_scenario(
    scale: Scale,
    fraction: f64,
    selector: TipSelector,
    selector_name: &'static str,
) -> ScenarioResult {
    let num_clients = scale.pick(12, 40);
    let dataset = fmnist_author_dataset(scale, num_clients, 42);
    let features = dataset.feature_len();
    let config = PoisoningConfig {
        dag: DagConfig {
            clients_per_round: scale.pick(4, 10),
            local_batches: scale.pick(5, 10),
            ..DagConfig::default()
        }
        .with_tip_selector(selector),
        clean_rounds: scale.pick(20, 100),
        attack_rounds: scale.pick(20, 100),
        poison_fraction: fraction,
        class_a: 3,
        class_b: 8,
        measure_every: scale.pick(4, 10),
    };
    let mut scenario = PoisoningScenario::new(config, dataset, fmnist_model_factory(features, 10));
    let measurements = scenario.run().expect("poisoning scenario failed");
    let distribution = scenario.poisoned_cluster_distribution();
    let label = if selector_name == "random" {
        format!("p={fraction} (random tip selector)")
    } else {
        format!("p={fraction}")
    };
    ScenarioResult {
        label,
        fraction,
        selector_name,
        measurements,
        distribution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scenario_produces_measurements() {
        let result = run_scenario(Scale::Quick, 0.2, TipSelector::default(), "accuracy");
        assert!(!result.measurements.is_empty());
        assert_eq!(result.label, "p=0.2");
        let clients: usize = result.distribution.iter().map(|(_, b, p)| b + p).sum();
        assert_eq!(clients, 12);
    }
}
