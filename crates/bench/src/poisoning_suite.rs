//! The shared poisoning experiment suite behind Figures 12–14.
//!
//! All three figures come from the same four runs (p ∈ {0.0, 0.2, 0.3}
//! with the accuracy tip selector, plus p = 0.2 with the random selector).
//! Each run is a `poisoning-*` scenario preset executed by the shared
//! `ScenarioRunner`; the binaries extract their slice of the reports.

use dagfl_core::{PoisonRoundMetrics, TipSelector};
use dagfl_scenario::{Scale, Scenario, ScenarioRunner};

/// The result of one poisoning scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Human-readable scenario label (e.g. `p=0.2`).
    pub label: String,
    /// Fraction of poisoned clients.
    pub fraction: f64,
    /// Tip selector used.
    pub selector_name: &'static str,
    /// Per-measurement metrics over the attack phase.
    pub measurements: Vec<PoisonRoundMetrics>,
    /// Final `(community, benign, poisoned)` distribution (Figure 14).
    pub distribution: Vec<(usize, usize, usize)>,
}

/// The paper's four scenarios, by preset name. Fraction and selector
/// are read off the resolved scenarios — the registry is the single
/// source of truth.
pub const POISONING_PRESETS: &[&str] = &[
    "poisoning-p0.0",
    "poisoning-p0.2",
    "poisoning-random-p0.2",
    "poisoning-p0.3",
];

/// Runs the paper's four poisoning scenarios at the given scale.
///
/// # Panics
///
/// Panics on simulation errors.
pub fn run_suite(scale: Scale) -> Vec<ScenarioResult> {
    POISONING_PRESETS
        .iter()
        .map(|preset| run_preset(preset, scale))
        .collect()
}

/// Runs one poisoning preset; the label, fraction and selector name are
/// derived from the scenario itself so they cannot drift from the
/// registry.
///
/// # Panics
///
/// Panics if the preset is unknown, lacks an attack, or the simulation
/// fails.
pub fn run_preset(preset: &str, scale: Scale) -> ScenarioResult {
    let scenario = Scenario::preset_at(preset, scale).expect("poisoning preset exists");
    let fraction = scenario
        .attack
        .expect("poisoning preset configures an attack")
        .fraction;
    let selector_name = match scenario.execution.dag().tip_selector {
        TipSelector::Random => "random",
        TipSelector::Accuracy { .. } => "accuracy",
        TipSelector::CumulativeWeight { .. } => "cumulative",
    };
    let report = ScenarioRunner::new(scenario)
        .expect("preset validates")
        .run()
        .expect("poisoning scenario failed");
    let poisoning = report.poisoning.expect("attack scenario reports poisoning");
    let label = if selector_name == "random" {
        format!("p={fraction} (random tip selector)")
    } else {
        format!("p={fraction}")
    };
    ScenarioResult {
        label,
        fraction,
        selector_name,
        measurements: poisoning.measurements,
        distribution: poisoning.distribution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_preset_produces_measurements() {
        let result = run_preset("poisoning-p0.2", Scale::Quick);
        assert!(!result.measurements.is_empty());
        assert_eq!(result.label, "p=0.2");
        assert_eq!(result.fraction, 0.2);
        assert_eq!(result.selector_name, "accuracy");
        let clients: usize = result.distribution.iter().map(|(_, b, p)| b + p).sum();
        assert_eq!(clients, 12);
    }
}
