//! Neural-network kernel benchmarks: the per-round building blocks
//! (training step, evaluation, model averaging).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_bench::{fmnist_model_factory, poets_model_factory};
use dagfl_nn::{average_parameters, SgdConfig};
use dagfl_tensor::Matrix;

fn bench_train_batch(c: &mut Criterion) {
    let factory = fmnist_model_factory(196, 10);
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = factory(&mut rng);
    let x = Matrix::from_fn(10, 196, |r, c| ((r * 196 + c) % 11) as f32 * 0.1);
    let y: Vec<usize> = (0..10).map(|i| i % 10).collect();
    let opt = SgdConfig::new(0.05);
    c.bench_function("mlp_train_batch_10x196", |b| {
        b.iter(|| model.train_batch(&x, &y, &opt).expect("train"));
    });
}

fn bench_evaluate(c: &mut Criterion) {
    let factory = fmnist_model_factory(196, 10);
    let mut rng = StdRng::seed_from_u64(0);
    let model = factory(&mut rng);
    let x = Matrix::from_fn(50, 196, |r, c| ((r * 196 + c) % 11) as f32 * 0.1);
    let y: Vec<usize> = (0..50).map(|i| i % 10).collect();
    c.bench_function("mlp_evaluate_50x196", |b| {
        b.iter(|| model.evaluate(&x, &y).expect("evaluate"));
    });
}

fn bench_char_rnn_train(c: &mut Criterion) {
    let factory = poets_model_factory();
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = factory(&mut rng);
    let x = Matrix::from_fn(10, 12, |r, t| ((r + t) % 32) as f32);
    let y: Vec<usize> = (0..10).map(|i| i % 32).collect();
    let opt = SgdConfig::new(0.5);
    c.bench_function("gru_train_batch_10x12", |b| {
        b.iter(|| model.train_batch(&x, &y, &opt).expect("train"));
    });
}

fn bench_average_parameters(c: &mut Criterion) {
    let factory = fmnist_model_factory(196, 10);
    let mut rng = StdRng::seed_from_u64(0);
    let a = factory(&mut rng).parameters();
    let b_params = factory(&mut rng).parameters();
    c.bench_function("average_two_models_13k_params", |bench| {
        bench.iter(|| average_parameters(&[&a, &b_params]));
    });
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 196, |r, col| ((r + col) % 7) as f32 * 0.3);
    let b = Matrix::from_fn(196, 64, |r, col| ((r * col) % 5) as f32 * 0.2);
    c.bench_function("matmul_64x196x64", |bench| {
        bench.iter(|| a.matmul(&b).expect("matmul"));
    });
}

criterion_group!(
    benches,
    bench_train_batch,
    bench_evaluate,
    bench_char_rnn_train,
    bench_average_parameters,
    bench_matmul
);
criterion_main!(benches);
