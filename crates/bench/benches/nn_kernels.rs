//! Neural-network kernel benchmarks: the per-round building blocks
//! (training step, evaluation, model averaging).
//!
//! The `train_step_backend` group pits the two [`MatmulBackendKind`]
//! arms against each other on the training shapes (forward, backward
//! and SGD update); the final summary line compares the fastest of
//! several alternating repetitions so host noise does not masquerade
//! as (or hide) a speedup.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_bench::{fmnist_model_factory, poets_model_factory};
use dagfl_nn::{average_parameters, MatmulBackendKind, SgdConfig};
use dagfl_tensor::Matrix;

fn bench_train_batch(c: &mut Criterion) {
    let factory = fmnist_model_factory(196, 10);
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = factory(&mut rng);
    let x = Matrix::from_fn(10, 196, |r, c| ((r * 196 + c) % 11) as f32 * 0.1);
    let y: Vec<usize> = (0..10).map(|i| i % 10).collect();
    let opt = SgdConfig::new(0.05);
    c.bench_function("mlp_train_batch_10x196", |b| {
        b.iter(|| model.train_batch(&x, &y, &opt).expect("train"));
    });
}

fn bench_train_backends(c: &mut Criterion) {
    // The paper-scale training shape: a 32-row mini-batch through the
    // 196 -> 64 -> 10 MLP, full forward + backward + SGD update.
    let factory = fmnist_model_factory(196, 10);
    let x = Matrix::from_fn(32, 196, |r, c| ((r * 196 + c) % 11) as f32 * 0.1);
    let y: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let opt = SgdConfig::new(0.05);

    let mut group = c.benchmark_group("train_step_backend");
    for (name, kind) in [
        ("naive", MatmulBackendKind::Naive),
        ("tiled", MatmulBackendKind::Tiled),
    ] {
        let mut model = factory(&mut StdRng::seed_from_u64(0));
        model.set_matmul_backend(kind);
        group.bench_function(name, |b| {
            b.iter(|| model.train_batch(&x, &y, &opt).expect("train"));
        });
    }
    group.finish();

    // Head-to-head summary: both arms start from the same seed-0 model
    // and walk the same trajectory, alternating across repetitions;
    // the fastest repetition of each is compared.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (steps, reps) = if test_mode { (1, 1) } else { (40, 7) };
    let mut naive_best = f64::INFINITY;
    let mut tiled_best = f64::INFINITY;
    for _ in 0..reps {
        let mut model = factory(&mut StdRng::seed_from_u64(0));
        model.set_matmul_backend(MatmulBackendKind::Naive);
        let started = Instant::now();
        for _ in 0..steps {
            model.train_batch(&x, &y, &opt).expect("train");
        }
        naive_best = naive_best.min(started.elapsed().as_secs_f64());

        let mut model = factory(&mut StdRng::seed_from_u64(0));
        model.set_matmul_backend(MatmulBackendKind::Tiled);
        let started = Instant::now();
        for _ in 0..steps {
            model.train_batch(&x, &y, &opt).expect("train");
        }
        tiled_best = tiled_best.min(started.elapsed().as_secs_f64());
    }
    println!(
        "train_step summary (32x196 batch, {steps} steps, best of {reps}): \
         naive {:.3}ms, tiled {:.3}ms, speedup {:.2}x",
        naive_best * 1e3,
        tiled_best * 1e3,
        naive_best / tiled_best.max(1e-9),
    );
}

fn bench_evaluate(c: &mut Criterion) {
    let factory = fmnist_model_factory(196, 10);
    let mut rng = StdRng::seed_from_u64(0);
    let model = factory(&mut rng);
    let x = Matrix::from_fn(50, 196, |r, c| ((r * 196 + c) % 11) as f32 * 0.1);
    let y: Vec<usize> = (0..50).map(|i| i % 10).collect();
    c.bench_function("mlp_evaluate_50x196", |b| {
        b.iter(|| model.evaluate(&x, &y).expect("evaluate"));
    });
}

fn bench_char_rnn_train(c: &mut Criterion) {
    let factory = poets_model_factory();
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = factory(&mut rng);
    let x = Matrix::from_fn(10, 12, |r, t| ((r + t) % 32) as f32);
    let y: Vec<usize> = (0..10).map(|i| i % 32).collect();
    let opt = SgdConfig::new(0.5);
    c.bench_function("gru_train_batch_10x12", |b| {
        b.iter(|| model.train_batch(&x, &y, &opt).expect("train"));
    });
}

fn bench_average_parameters(c: &mut Criterion) {
    let factory = fmnist_model_factory(196, 10);
    let mut rng = StdRng::seed_from_u64(0);
    let a = factory(&mut rng).parameters();
    let b_params = factory(&mut rng).parameters();
    c.bench_function("average_two_models_13k_params", |bench| {
        bench.iter(|| average_parameters(&[&a, &b_params]));
    });
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 196, |r, col| ((r + col) % 7) as f32 * 0.3);
    let b = Matrix::from_fn(196, 64, |r, col| ((r * col) % 5) as f32 * 0.2);
    c.bench_function("matmul_64x196x64", |bench| {
        bench.iter(|| a.matmul(&b).expect("matmul"));
    });
}

criterion_group!(
    benches,
    bench_train_batch,
    bench_train_backends,
    bench_evaluate,
    bench_char_rnn_train,
    bench_average_parameters,
    bench_matmul
);
criterion_main!(benches);
