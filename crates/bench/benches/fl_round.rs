//! Whole-round benchmarks: one Specializing-DAG round vs one FedAvg /
//! FedProx round on identical data — the Figure 9/10 cost kernel.

use criterion::{criterion_group, criterion_main, Criterion};

use dagfl_baselines::{FedConfig, FederatedServer};
use dagfl_bench::fmnist_model_factory;
use dagfl_core::{DagConfig, Simulation};
use dagfl_datasets::{fmnist_clustered, FederatedDataset, FmnistConfig};

fn dataset() -> FederatedDataset {
    fmnist_clustered(&FmnistConfig {
        num_clients: 9,
        samples_per_client: 50,
        ..FmnistConfig::default()
    })
}

fn bench_dag_round(c: &mut Criterion) {
    let ds = dataset();
    let features = ds.feature_len();
    let mut group = c.benchmark_group("fl_round");
    group.sample_size(10);
    group.bench_function("dag_round_3_clients", |b| {
        // One warm simulation; each iteration advances it by one round
        // (the tangle keeps growing, as in a real deployment).
        let mut sim = Simulation::new(
            DagConfig {
                rounds: usize::MAX,
                clients_per_round: 3,
                local_batches: 5,
                ..DagConfig::default()
            },
            ds.clone(),
            fmnist_model_factory(features, 10),
        );
        b.iter(|| sim.run_round().expect("round"));
    });
    group.bench_function("fedavg_round_3_clients", |b| {
        let mut server = FederatedServer::new(
            FedConfig {
                rounds: usize::MAX,
                clients_per_round: 3,
                local_batches: 5,
                ..FedConfig::default()
            },
            ds.clone(),
            fmnist_model_factory(features, 10),
        );
        b.iter(|| server.run_round().expect("round"));
    });
    group.bench_function("fedprox_round_3_clients", |b| {
        let mut server = FederatedServer::new(
            FedConfig {
                rounds: usize::MAX,
                clients_per_round: 3,
                local_batches: 5,
                proximal_mu: 1.0,
                ..FedConfig::default()
            },
            ds.clone(),
            fmnist_model_factory(features, 10),
        );
        b.iter(|| server.run_round().expect("round"));
    });
    group.finish();
}

criterion_group!(benches, bench_dag_round);
criterion_main!(benches);
