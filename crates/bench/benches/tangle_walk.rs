//! Random-walk engine micro-benchmarks (the Figure 15 kernel, without
//! model evaluation): how walk cost scales with tangle size and bias.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_tangle::{CumulativeWeightBias, RandomWalker, Tangle, UniformBias};

/// Builds a tangle of `n` transactions with two random parents each,
/// mimicking DAG growth under concurrent publication.
fn random_tangle(n: usize, seed: u64) -> Tangle<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tangle = Tangle::new(0);
    let mut ids = vec![tangle.genesis()];
    for i in 1..n {
        // Bias towards recent transactions, like real tip selection does.
        let recent = ids.len().saturating_sub(16);
        let p1 = ids[rng.gen_range(recent..ids.len())];
        let p2 = ids[rng.gen_range(0..ids.len())];
        let id = tangle.attach(i as u32, &[p1, p2]).expect("parents exist");
        ids.push(id);
    }
    tangle
}

fn bench_uniform_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniform_walk");
    group.sample_size(20);
    for n in [100usize, 500, 2000] {
        let tangle = random_tangle(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tangle, |b, tangle| {
            let mut rng = StdRng::seed_from_u64(7);
            let walker = RandomWalker::new();
            b.iter(|| {
                walker
                    .walk(tangle, tangle.genesis(), &mut UniformBias, &mut rng)
                    .expect("walk succeeds")
            });
        });
    }
    group.finish();
}

fn bench_cumulative_weight_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("cumulative_weight_walk");
    group.sample_size(20);
    for n in [100usize, 500, 2000] {
        let tangle = random_tangle(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tangle, |b, tangle| {
            let mut rng = StdRng::seed_from_u64(7);
            let walker = RandomWalker::new();
            // Reuse the bias across iterations so the cumulative-weight
            // cache amortises, as it does inside one walk burst.
            let mut bias = CumulativeWeightBias::new(0.5);
            b.iter(|| {
                walker
                    .walk(tangle, tangle.genesis(), &mut bias, &mut rng)
                    .expect("walk succeeds")
            });
        });
    }
    group.finish();
}

fn bench_cumulative_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("cumulative_weights");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let tangle = random_tangle(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tangle, |b, tangle| {
            b.iter(|| tangle.cumulative_weights());
        });
    }
    group.finish();
}

fn bench_depth_sampling(c: &mut Criterion) {
    let tangle = random_tangle(2000, 1);
    c.bench_function("sample_walk_start_depth_15_25", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| tangle.sample_walk_start(15, 25, &mut rng));
    });
}

criterion_group!(
    benches,
    bench_uniform_walk,
    bench_cumulative_weight_walk,
    bench_cumulative_weights,
    bench_depth_sampling
);
criterion_main!(benches);
