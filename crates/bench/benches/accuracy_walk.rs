//! The accuracy-biased walk with real model evaluations — the dominant
//! cost of the Specializing DAG (§5.3.5) — with cold and warm caches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_bench::fmnist_model_factory;
use dagfl_core::{perturbed_model_tangle, AccuracyBias, ModelEvaluator, Normalization};
use dagfl_datasets::{fmnist_clustered, FmnistConfig};
use dagfl_tangle::RandomWalker;

fn bench_accuracy_walk(c: &mut Criterion) {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 3,
        samples_per_client: 60,
        ..FmnistConfig::default()
    });
    let client = &dataset.clients()[0];
    let factory = fmnist_model_factory(dataset.feature_len(), 10);
    let mut rng = StdRng::seed_from_u64(0);
    let model = factory(&mut rng);
    let params = model.parameters();

    let mut group = c.benchmark_group("accuracy_walk");
    group.sample_size(10);
    for n in [50usize, 200] {
        let tangle = perturbed_model_tangle(n, &params, 1);
        group.bench_with_input(BenchmarkId::new("cold_cache", n), &tangle, |b, tangle| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                // A fresh evaluator per iteration: every candidate
                // evaluation is a real forward pass.
                let mut evaluator = ModelEvaluator::new(factory(&mut rng));
                let mut bias = AccuracyBias::new(
                    &mut evaluator,
                    client.test_x(),
                    client.test_y(),
                    10.0,
                    Normalization::Simple,
                );
                RandomWalker::new()
                    .walk(tangle, tangle.genesis(), &mut bias, &mut rng)
                    .expect("walk succeeds")
            });
        });
        group.bench_with_input(BenchmarkId::new("warm_cache", n), &tangle, |b, tangle| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut evaluator = ModelEvaluator::new(factory(&mut rng));
            b.iter(|| {
                let mut bias = AccuracyBias::new(
                    &mut evaluator,
                    client.test_x(),
                    client.test_y(),
                    10.0,
                    Normalization::Simple,
                );
                RandomWalker::new()
                    .walk(tangle, tangle.genesis(), &mut bias, &mut rng)
                    .expect("walk succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accuracy_walk);
criterion_main!(benches);
