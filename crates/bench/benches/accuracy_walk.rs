//! The accuracy-biased walk with real model evaluations — the dominant
//! cost of the Specializing DAG (§5.3.5) — with cold and warm caches.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_bench::fmnist_model_factory;
use dagfl_core::{AccuracyBias, ModelPayload, Normalization};
use dagfl_datasets::{fmnist_clustered, FmnistConfig};
use dagfl_tangle::{RandomWalker, Tangle};

/// A model tangle with `n` transactions whose payloads are perturbed
/// copies of a base model.
fn model_tangle(n: usize, params: &[f32], seed: u64) -> Tangle<ModelPayload> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tangle = Tangle::new(ModelPayload::new(params.to_vec()));
    let mut ids = vec![tangle.genesis()];
    for _ in 1..n {
        let perturbed: Vec<f32> = params
            .iter()
            .map(|&p| p + rng.gen_range(-0.05f32..0.05))
            .collect();
        let recent = ids.len().saturating_sub(8);
        let p1 = ids[rng.gen_range(recent..ids.len())];
        let p2 = ids[rng.gen_range(0..ids.len())];
        let id = tangle
            .attach(ModelPayload::new(perturbed), &[p1, p2])
            .expect("parents exist");
        ids.push(id);
    }
    tangle
}

fn bench_accuracy_walk(c: &mut Criterion) {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 3,
        samples_per_client: 60,
        ..FmnistConfig::default()
    });
    let client = &dataset.clients()[0];
    let factory = fmnist_model_factory(dataset.feature_len(), 10);
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = factory(&mut rng);
    let params = model.parameters();

    let mut group = c.benchmark_group("accuracy_walk");
    group.sample_size(10);
    for n in [50usize, 200] {
        let tangle = model_tangle(n, &params, 1);
        group.bench_with_input(BenchmarkId::new("cold_cache", n), &tangle, |b, tangle| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                // A fresh cache per iteration: every candidate evaluation
                // is a real forward pass.
                let mut cache = HashMap::new();
                let mut bias = AccuracyBias::new(
                    model.as_mut(),
                    client.test_x(),
                    client.test_y(),
                    &mut cache,
                    10.0,
                    Normalization::Simple,
                );
                RandomWalker::new()
                    .walk(tangle, tangle.genesis(), &mut bias, &mut rng)
                    .expect("walk succeeds")
            });
        });
        group.bench_with_input(BenchmarkId::new("warm_cache", n), &tangle, |b, tangle| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut cache = HashMap::new();
            b.iter(|| {
                let mut bias = AccuracyBias::new(
                    model.as_mut(),
                    client.test_x(),
                    client.test_y(),
                    &mut cache,
                    10.0,
                    Normalization::Simple,
                );
                RandomWalker::new()
                    .walk(tangle, tangle.genesis(), &mut bias, &mut rng)
                    .expect("walk succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accuracy_walk);
criterion_main!(benches);
