//! Community-detection benchmarks: the Figure 5 analysis kernel
//! (Louvain + modularity on the derived client graph).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_graphs::{louvain, misclassification_fraction, modularity, Graph};

/// A planted-partition client graph: `clusters` groups of `per_cluster`
/// nodes with dense intra- and sparse inter-cluster edges — the structure
/// the Specializing DAG produces in `G_clients`.
fn planted_graph(clusters: usize, per_cluster: usize, seed: u64) -> (Graph, Vec<usize>) {
    let n = clusters * per_cluster;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new(n);
    let truth: Vec<usize> = (0..n).map(|i| i / per_cluster).collect();
    for a in 0..n {
        for b in (a + 1)..n {
            let p = if truth[a] == truth[b] { 0.6 } else { 0.05 };
            if rng.gen::<f64>() < p {
                graph.add_edge(a, b, rng.gen_range(1.0..5.0));
            }
        }
    }
    (graph, truth)
}

fn bench_louvain(c: &mut Criterion) {
    let mut group = c.benchmark_group("louvain");
    group.sample_size(20);
    for (clusters, per_cluster) in [(3usize, 10usize), (10, 10), (20, 5)] {
        let (graph, _) = planted_graph(clusters, per_cluster, 1);
        let id = format!("{clusters}clusters_x{per_cluster}");
        group.bench_with_input(BenchmarkId::from_parameter(id), &graph, |b, graph| {
            b.iter(|| louvain(graph, &mut StdRng::seed_from_u64(7)));
        });
    }
    group.finish();
}

fn bench_modularity(c: &mut Criterion) {
    let (graph, truth) = planted_graph(10, 10, 1);
    c.bench_function("modularity_100_nodes", |b| {
        b.iter(|| modularity(&graph, &truth));
    });
}

fn bench_full_specialization_metrics(c: &mut Criterion) {
    // The complete Figure 5 computation: Louvain, modularity and
    // misclassification on one graph.
    let (graph, truth) = planted_graph(3, 33, 1);
    c.bench_function("specialization_metrics_99_clients", |b| {
        b.iter(|| {
            let partition = louvain(&graph, &mut StdRng::seed_from_u64(7));
            let q = modularity(&graph, &partition);
            let mis = misclassification_fraction(&partition, &truth);
            (q, mis)
        });
    });
}

criterion_group!(
    benches,
    bench_louvain,
    bench_modularity,
    bench_full_specialization_metrics
);
criterion_main!(benches);
