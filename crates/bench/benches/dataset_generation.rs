//! Dataset-generation throughput: the synthetic substitutes must be cheap
//! enough that experiments are dominated by learning, not data synthesis.

use criterion::{criterion_group, criterion_main, Criterion};

use dagfl_datasets::{
    cifar100_like, fedprox_synthetic, fmnist_clustered, poets, Cifar100Config, FedProxConfig,
    FmnistConfig, PoetsConfig,
};

fn bench_fmnist(c: &mut Criterion) {
    let cfg = FmnistConfig {
        num_clients: 15,
        samples_per_client: 60,
        ..FmnistConfig::default()
    };
    c.bench_function("generate_fmnist_15_clients", |b| {
        b.iter(|| fmnist_clustered(&cfg));
    });
}

fn bench_poets(c: &mut Criterion) {
    let cfg = PoetsConfig {
        clients_per_language: 6,
        samples_per_client: 80,
        ..PoetsConfig::default()
    };
    c.bench_function("generate_poets_12_clients", |b| {
        b.iter(|| poets(&cfg));
    });
}

fn bench_cifar(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_cifar");
    group.sample_size(10);
    let cfg = Cifar100Config {
        num_clients: 20,
        samples_per_client: 40,
        ..Cifar100Config::default()
    };
    group.bench_function("20_clients_pam", |b| {
        b.iter(|| cifar100_like(&cfg));
    });
    group.finish();
}

fn bench_fedprox(c: &mut Criterion) {
    let cfg = FedProxConfig {
        num_clients: 30,
        ..FedProxConfig::default()
    };
    c.bench_function("generate_fedprox_30_clients", |b| {
        b.iter(|| fedprox_synthetic(&cfg));
    });
}

criterion_group!(
    benches,
    bench_fmnist,
    bench_poets,
    bench_cifar,
    bench_fedprox
);
criterion_main!(benches);
