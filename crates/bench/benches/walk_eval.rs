//! Batched evaluation pipeline vs the pre-refactor path, at paper-scale
//! DAG sizes.
//!
//! The pre-refactor `AccuracyBias` evaluated one candidate at a time
//! through a `set_parameters` round-trip into a scratch model, an
//! allocating forward pass (`Model::evaluate` builds a fresh activation
//! matrix per layer plus an intermediate probability matrix) and a
//! hand-threaded `HashMap<TxId, f32>` cache. `legacy` reproduces that
//! path exactly; `batched` is the [`ModelEvaluator`] pipeline (blocked
//! inference matmul, reusable `EvalScratch` buffers, fused softmax +
//! cross-entropy, generation-stamped cache). Both arms walk the same
//! tangle with the same RNG stream, so they perform identical candidate
//! evaluations — only the per-evaluation cost differs.
//!
//! Run with `cargo bench --bench walk_eval`; the final line prints the
//! measured cold-cache speedup at the largest DAG size. Typical
//! measurements on an unloaded AVX2 machine are 2.0-2.4x; host
//! contention compresses the ratio (both arms are memory-sensitive), so
//! the summary compares the fastest of several alternating repetitions.

use std::collections::HashMap;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_bench::fmnist_model_factory;
use dagfl_core::{
    perturbed_model_tangle, AccuracyBias, ModelEvaluator, ModelPayload, Normalization,
};
use dagfl_datasets::{fmnist_clustered, ClientDataset, FmnistConfig};
use dagfl_nn::Model;
use dagfl_tangle::{RandomWalker, Tangle, TxId, WalkBias};
use dagfl_tensor::Matrix;

/// The pre-refactor evaluation pipeline, preserved verbatim as the
/// benchmark baseline: per-candidate `set_parameters` + allocating
/// `Model::evaluate`, memoised in a plain `HashMap`.
struct LegacyAccuracyBias<'a> {
    model: &'a mut dyn Model,
    test_x: &'a Matrix,
    test_y: &'a [usize],
    cache: &'a mut HashMap<TxId, f32>,
    alpha: f32,
}

impl LegacyAccuracyBias<'_> {
    fn accuracy_of(&mut self, tangle: &Tangle<ModelPayload>, id: TxId) -> f32 {
        if let Some(&acc) = self.cache.get(&id) {
            return acc;
        }
        let acc = match tangle.get(id) {
            Ok(tx) => match self.model.set_parameters(tx.payload().params()) {
                Ok(()) => self
                    .model
                    .evaluate(self.test_x, self.test_y)
                    .map(|e| e.accuracy)
                    .unwrap_or(0.0),
                Err(_) => 0.0,
            },
            Err(_) => 0.0,
        };
        self.cache.insert(id, acc);
        acc
    }
}

impl WalkBias<ModelPayload> for LegacyAccuracyBias<'_> {
    fn weights(
        &mut self,
        tangle: &Tangle<ModelPayload>,
        _current: TxId,
        candidates: &[TxId],
    ) -> Vec<f32> {
        let accuracies: Vec<f32> = candidates
            .iter()
            .map(|&c| self.accuracy_of(tangle, c))
            .collect();
        let max = accuracies.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        accuracies
            .iter()
            .map(|&acc| (self.alpha * (acc - max)).exp())
            .collect()
    }
}

fn legacy_walk(
    tangle: &Tangle<ModelPayload>,
    model: &mut dyn Model,
    client: &ClientDataset,
    rng: &mut StdRng,
) {
    let mut cache = HashMap::new();
    let mut bias = LegacyAccuracyBias {
        model,
        test_x: client.test_x(),
        test_y: client.test_y(),
        cache: &mut cache,
        alpha: 10.0,
    };
    RandomWalker::new()
        .walk(tangle, tangle.genesis(), &mut bias, rng)
        .expect("walk succeeds");
}

fn batched_walk(
    tangle: &Tangle<ModelPayload>,
    evaluator: &mut ModelEvaluator,
    client: &ClientDataset,
    rng: &mut StdRng,
) {
    let mut bias = AccuracyBias::new(
        evaluator,
        client.test_x(),
        client.test_y(),
        10.0,
        Normalization::Simple,
    );
    RandomWalker::new()
        .walk(tangle, tangle.genesis(), &mut bias, rng)
        .expect("walk succeeds");
}

fn bench_walk_eval(c: &mut Criterion) {
    // Paper-scale clients hold hundreds of samples; 240 per client
    // gives a 24-row local test split (the 90:10 split of §5.1).
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 3,
        samples_per_client: 240,
        ..FmnistConfig::default()
    });
    let client = &dataset.clients()[0];
    let factory = fmnist_model_factory(dataset.feature_len(), 10);
    let mut rng = StdRng::seed_from_u64(0);
    let mut legacy_model = factory(&mut rng);
    let params = legacy_model.parameters();

    let mut group = c.benchmark_group("walk_eval");
    group.sample_size(10);
    // 500+ transactions is the paper-scale regime of Figure 15.
    for n in [100usize, 500] {
        let tangle = perturbed_model_tangle(n, &params, 1);
        group.bench_with_input(BenchmarkId::new("legacy", n), &tangle, |b, tangle| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| legacy_walk(tangle, legacy_model.as_mut(), client, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &tangle, |b, tangle| {
            // The scratch model comes from a separate RNG so the walk
            // stream (seed 7) matches the legacy arm draw for draw.
            let mut evaluator = ModelEvaluator::new(factory(&mut StdRng::seed_from_u64(99)));
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                // Cold cache per walk, like the legacy arm: the
                // generation bump invalidates every cached accuracy.
                evaluator.invalidate();
                batched_walk(tangle, &mut evaluator, client, &mut rng)
            });
        });
    }
    group.finish();

    // Head-to-head summary at the paper-scale size: identical RNG
    // streams, cold caches, wall-clock over a fixed number of walks.
    // The arms alternate across repetitions and the fastest repetition
    // of each is compared, so background noise does not masquerade as
    // (or hide) a speedup.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (walks, reps) = if test_mode { (1, 1) } else { (20, 7) };
    let tangle = perturbed_model_tangle(500, &params, 1);
    let mut evaluator = ModelEvaluator::new(factory(&mut rng));
    let mut legacy_best = f64::INFINITY;
    let mut batched_best = f64::INFINITY;
    for _ in 0..reps {
        let mut rng = StdRng::seed_from_u64(11);
        let started = Instant::now();
        for _ in 0..walks {
            legacy_walk(&tangle, legacy_model.as_mut(), client, &mut rng);
        }
        legacy_best = legacy_best.min(started.elapsed().as_secs_f64());
        let mut rng = StdRng::seed_from_u64(11);
        let started = Instant::now();
        for _ in 0..walks {
            evaluator.invalidate();
            batched_walk(&tangle, &mut evaluator, client, &mut rng);
        }
        batched_best = batched_best.min(started.elapsed().as_secs_f64());
    }
    let counters = evaluator.counters();
    println!(
        "walk_eval summary (500 tx, {walks} cold walks, best of {reps}): \
         legacy {:.3}ms, batched {:.3}ms, speedup {:.2}x, \
         {} fresh / {} cached evaluations",
        legacy_best * 1e3,
        batched_best * 1e3,
        legacy_best / batched_best.max(1e-9),
        counters.fresh,
        counters.cached,
    );
}

criterion_group!(benches, bench_walk_eval);
criterion_main!(benches);
