//! The client–server round loop shared by FedAvg and FedProx.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dagfl_datasets::FederatedDataset;
use dagfl_nn::{weighted_average_parameters, Evaluation, Model, NnError, SgdConfig};

/// Creates fresh model instances; all must share one architecture.
pub type ModelFactory = Arc<dyn Fn(&mut StdRng) -> Box<dyn Model> + Send + Sync>;

/// Configuration of a centralized federated-learning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedConfig {
    /// Training rounds.
    pub rounds: usize,
    /// Clients sampled per round.
    pub clients_per_round: usize,
    /// Local epochs per selected client.
    pub local_epochs: usize,
    /// Mini-batches per local epoch (fixed per Table 1).
    pub local_batches: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// FedProx proximal strength; `0.0` yields plain FedAvg.
    pub proximal_mu: f32,
    /// Weight client updates by their sample counts (standard FedAvg).
    pub weighted_aggregation: bool,
    /// Fraction of active clients that are *stragglers* each round: they
    /// only manage a random fraction of their local batch budget
    /// (Li et al.'s systems-heterogeneity simulation).
    pub straggler_fraction: f32,
    /// Whether partially trained (straggler) updates are dropped from
    /// aggregation. Li et al.'s FedAvg drops them; FedProx incorporates
    /// them.
    pub drop_stragglers: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            clients_per_round: 10,
            local_epochs: 1,
            local_batches: 10,
            batch_size: 10,
            learning_rate: 0.05,
            proximal_mu: 0.0,
            weighted_aggregation: true,
            straggler_fraction: 0.0,
            drop_stragglers: false,
            seed: 42,
        }
    }
}

impl FedConfig {
    /// Turns this configuration into FedProx with the given μ.
    pub fn with_proximal_mu(mut self, mu: f32) -> Self {
        self.proximal_mu = mu;
        self
    }

    /// Whether this configuration is FedProx (μ > 0) rather than FedAvg.
    pub fn is_fedprox(&self) -> bool {
        self.proximal_mu > 0.0
    }
}

/// Metrics of one centralized round: the *aggregated* global model
/// evaluated on each active client's local test data — exactly what
/// Figure 9 plots for FedAvg.
#[derive(Debug, Clone)]
pub struct FedRoundMetrics {
    /// Round index (0-based).
    pub round: usize,
    /// Ids of the active clients.
    pub active_clients: Vec<u32>,
    /// Per-active-client accuracy of the aggregated model.
    pub accuracies: Vec<f32>,
    /// Per-active-client loss of the aggregated model.
    pub losses: Vec<f32>,
    /// How many active clients were stragglers this round.
    pub stragglers: usize,
}

impl FedRoundMetrics {
    /// Mean accuracy over the active clients.
    pub fn mean_accuracy(&self) -> f32 {
        mean(&self.accuracies)
    }

    /// Mean loss over the active clients.
    pub fn mean_loss(&self) -> f32 {
        mean(&self.losses)
    }
}

fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// A centralized federated-learning server (FedAvg / FedProx).
pub struct FederatedServer {
    config: FedConfig,
    dataset: FederatedDataset,
    global: Arc<Vec<f32>>,
    model: Box<dyn Model>,
    rng: StdRng,
    history: Vec<FedRoundMetrics>,
    round: usize,
}

impl FederatedServer {
    /// Creates a server with a freshly initialised global model.
    ///
    /// # Panics
    ///
    /// Panics if `clients_per_round` is zero or exceeds the dataset's
    /// client count.
    pub fn new(config: FedConfig, dataset: FederatedDataset, factory: ModelFactory) -> Self {
        assert!(
            config.clients_per_round > 0 && config.clients_per_round <= dataset.num_clients(),
            "clients_per_round ({}) must be in 1..={}",
            config.clients_per_round,
            dataset.num_clients()
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let model = factory(&mut rng);
        let global = Arc::new(model.parameters());
        Self {
            config,
            dataset,
            global,
            model,
            rng,
            history: Vec::new(),
            round: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FedConfig {
        &self.config
    }

    /// The dataset being trained on.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// The current global model parameters.
    pub fn global_parameters(&self) -> &[f32] {
        &self.global
    }

    /// Rounds completed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Metrics of all completed rounds.
    pub fn history(&self) -> &[FedRoundMetrics] {
        &self.history
    }

    /// Runs a single round: broadcast, local training, aggregation.
    ///
    /// # Errors
    ///
    /// Propagates model errors (architecture/dataset mismatches).
    pub fn run_round(&mut self) -> Result<FedRoundMetrics, NnError> {
        // Sample active clients without replacement.
        let mut ids: Vec<usize> = (0..self.dataset.num_clients()).collect();
        ids.shuffle(&mut self.rng);
        let mut active: Vec<usize> = ids
            .into_iter()
            .take(self.config.clients_per_round)
            .collect();
        active.sort_unstable();

        let mut opt = SgdConfig::new(self.config.learning_rate);
        if self.config.proximal_mu > 0.0 {
            opt = opt.with_proximal(self.config.proximal_mu, Arc::clone(&self.global));
        }
        let mut updates: Vec<Vec<f32>> = Vec::with_capacity(active.len());
        let mut weights: Vec<f32> = Vec::with_capacity(active.len());
        let total_budget = self.config.local_epochs * self.config.local_batches;
        let mut stragglers = 0usize;
        for &idx in &active {
            let data = &self.dataset.clients()[idx];
            // Systems heterogeneity (Li et al.): a straggler only finishes
            // a random fraction of its batch budget this round.
            let is_straggler = self.config.straggler_fraction > 0.0
                && self.rng.gen::<f32>() < self.config.straggler_fraction;
            let budget = if is_straggler {
                stragglers += 1;
                self.rng.gen_range(1..total_budget.max(2))
            } else {
                total_budget
            };
            self.model.set_parameters(&self.global)?;
            let mut remaining = budget;
            'epochs: for _ in 0..self.config.local_epochs {
                for (x, y) in data.train_batches(
                    self.config.batch_size,
                    self.config.local_batches,
                    &mut self.rng,
                ) {
                    if remaining == 0 {
                        break 'epochs;
                    }
                    self.model.train_batch(&x, &y, &opt)?;
                    remaining -= 1;
                }
            }
            if is_straggler && self.config.drop_stragglers {
                // FedAvg discards partial work (the FedProx paper's FedAvg
                // baseline); the straggler's update never reaches the
                // server.
                continue;
            }
            updates.push(self.model.parameters());
            weights.push(if self.config.weighted_aggregation {
                data.num_train() as f32
            } else {
                1.0
            });
        }
        // Aggregate; if every update was dropped, the global is unchanged.
        if !updates.is_empty() {
            let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
            self.global = Arc::new(weighted_average_parameters(&refs, &weights));
        }
        // Evaluate the aggregated model on the active clients' local test
        // data (Figure 9's FedAvg quantity).
        let mut accuracies = Vec::with_capacity(active.len());
        let mut losses = Vec::with_capacity(active.len());
        self.model.set_parameters(&self.global)?;
        for &idx in &active {
            let data = &self.dataset.clients()[idx];
            let eval = self.model.evaluate(data.test_x(), data.test_y())?;
            accuracies.push(eval.accuracy);
            losses.push(eval.loss);
        }
        let metrics = FedRoundMetrics {
            round: self.round,
            active_clients: active.iter().map(|&i| i as u32).collect(),
            accuracies,
            losses,
            stragglers,
        };
        self.history.push(metrics.clone());
        self.round += 1;
        Ok(metrics)
    }

    /// Runs rounds until `config.rounds` have completed; returns the newly
    /// run rounds' metrics.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`FederatedServer::run_round`].
    pub fn run(&mut self) -> Result<Vec<FedRoundMetrics>, NnError> {
        let mut out = Vec::new();
        while self.round < self.config.rounds {
            out.push(self.run_round()?);
        }
        Ok(out)
    }

    /// Evaluates the global model on every client's local test data.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn evaluate_all(&mut self) -> Result<Vec<(u32, Evaluation)>, NnError> {
        self.model.set_parameters(&self.global)?;
        let mut out = Vec::with_capacity(self.dataset.num_clients());
        for (idx, data) in self.dataset.clients().iter().enumerate() {
            let eval = self.model.evaluate(data.test_x(), data.test_y())?;
            out.push((idx as u32, eval));
        }
        Ok(out)
    }
}

impl std::fmt::Debug for FederatedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedServer")
            .field("round", &self.round)
            .field("fedprox", &self.config.is_fedprox())
            .field("clients", &self.dataset.num_clients())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfl_datasets::{fedprox_synthetic, fmnist_clustered, FedProxConfig, FmnistConfig};
    use dagfl_nn::{Dense, Relu, Sequential};

    fn mlp_factory(features: usize, classes: usize) -> ModelFactory {
        Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 16)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 16, classes)),
            ])) as Box<dyn Model>
        })
    }

    fn small_dataset() -> FederatedDataset {
        fmnist_clustered(&FmnistConfig {
            num_clients: 6,
            samples_per_client: 60,
            ..FmnistConfig::default()
        })
    }

    #[test]
    fn fedavg_improves_over_rounds() {
        let dataset = small_dataset();
        let features = dataset.feature_len();
        let config = FedConfig {
            rounds: 15,
            clients_per_round: 6,
            local_batches: 5,
            learning_rate: 0.1,
            ..FedConfig::default()
        };
        let mut server = FederatedServer::new(config, dataset, mlp_factory(features, 10));
        let history = server.run().unwrap();
        let early = history[0].mean_accuracy();
        let late = history.last().unwrap().mean_accuracy();
        assert!(
            late > early + 0.1,
            "no learning progress: {early} -> {late}"
        );
    }

    #[test]
    fn fedprox_stays_closer_to_global_start() {
        // One round from the same global start: the FedProx update must
        // stay closer to the initial global model than FedAvg's.
        let dataset = fedprox_synthetic(&FedProxConfig {
            num_clients: 10,
            ..FedProxConfig::default()
        });
        let features = dataset.feature_len();
        let factory = mlp_factory(features, 10);
        let base = FedConfig {
            rounds: 1,
            clients_per_round: 10,
            local_batches: 20,
            learning_rate: 0.1,
            ..FedConfig::default()
        };
        let mut avg_server = FederatedServer::new(base, dataset.clone(), Arc::clone(&factory));
        let mut prox_server = FederatedServer::new(base.with_proximal_mu(1.0), dataset, factory);
        let start = avg_server.global_parameters().to_vec();
        assert_eq!(start, prox_server.global_parameters());
        avg_server.run_round().unwrap();
        prox_server.run_round().unwrap();
        let dist = |params: &[f32]| -> f32 {
            params
                .iter()
                .zip(&start)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        assert!(
            dist(prox_server.global_parameters()) < dist(avg_server.global_parameters()),
            "proximal term did not constrain the update"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let dataset = small_dataset();
            let features = dataset.feature_len();
            let config = FedConfig {
                rounds: 3,
                clients_per_round: 3,
                local_batches: 3,
                ..FedConfig::default()
            };
            let mut server = FederatedServer::new(config, dataset, mlp_factory(features, 10));
            server.run().unwrap();
            server.global_parameters().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metrics_shapes_match_active_clients() {
        let dataset = small_dataset();
        let features = dataset.feature_len();
        let config = FedConfig {
            rounds: 1,
            clients_per_round: 4,
            local_batches: 2,
            ..FedConfig::default()
        };
        let mut server = FederatedServer::new(config, dataset, mlp_factory(features, 10));
        let m = server.run_round().unwrap();
        assert_eq!(m.active_clients.len(), 4);
        assert_eq!(m.accuracies.len(), 4);
        assert_eq!(m.losses.len(), 4);
    }

    #[test]
    fn evaluate_all_covers_every_client() {
        let dataset = small_dataset();
        let features = dataset.feature_len();
        let config = FedConfig {
            rounds: 1,
            clients_per_round: 3,
            local_batches: 2,
            ..FedConfig::default()
        };
        let mut server = FederatedServer::new(config, dataset, mlp_factory(features, 10));
        server.run().unwrap();
        let evals = server.evaluate_all().unwrap();
        assert_eq!(evals.len(), 6);
    }

    #[test]
    fn unweighted_aggregation_differs_from_weighted() {
        // Clients have different sizes in the FedProx synthetic dataset, so
        // the two aggregation modes must produce different globals.
        let dataset = fedprox_synthetic(&FedProxConfig {
            num_clients: 6,
            ..FedProxConfig::default()
        });
        let features = dataset.feature_len();
        let factory = mlp_factory(features, 10);
        let base = FedConfig {
            rounds: 1,
            clients_per_round: 6,
            local_batches: 5,
            ..FedConfig::default()
        };
        let mut weighted = FederatedServer::new(base, dataset.clone(), Arc::clone(&factory));
        let mut unweighted = FederatedServer::new(
            FedConfig {
                weighted_aggregation: false,
                ..base
            },
            dataset,
            factory,
        );
        weighted.run_round().unwrap();
        unweighted.run_round().unwrap();
        assert_ne!(weighted.global_parameters(), unweighted.global_parameters());
    }

    #[test]
    fn config_helpers() {
        let cfg = FedConfig::default();
        assert!(!cfg.is_fedprox());
        assert!(cfg.with_proximal_mu(0.5).is_fedprox());
    }

    #[test]
    #[should_panic(expected = "clients_per_round")]
    fn oversized_round_panics() {
        let dataset = small_dataset();
        let features = dataset.feature_len();
        let config = FedConfig {
            clients_per_round: 100,
            ..FedConfig::default()
        };
        FederatedServer::new(config, dataset, mlp_factory(features, 10));
    }

    #[test]
    fn all_stragglers_dropped_leaves_global_unchanged() {
        let dataset = small_dataset();
        let features = dataset.feature_len();
        let config = FedConfig {
            rounds: 1,
            clients_per_round: 3,
            local_batches: 3,
            straggler_fraction: 1.0,
            drop_stragglers: true,
            ..FedConfig::default()
        };
        let mut server = FederatedServer::new(config, dataset, mlp_factory(features, 10));
        let before = server.global_parameters().to_vec();
        let m = server.run_round().unwrap();
        assert_eq!(m.stragglers, 3);
        assert_eq!(server.global_parameters(), before.as_slice());
    }

    #[test]
    fn kept_stragglers_still_move_the_global() {
        let dataset = small_dataset();
        let features = dataset.feature_len();
        let config = FedConfig {
            rounds: 1,
            clients_per_round: 3,
            local_batches: 3,
            straggler_fraction: 1.0,
            drop_stragglers: false,
            ..FedConfig::default()
        };
        let mut server = FederatedServer::new(config, dataset, mlp_factory(features, 10));
        let before = server.global_parameters().to_vec();
        let m = server.run_round().unwrap();
        assert_eq!(m.stragglers, 3);
        assert_ne!(server.global_parameters(), before.as_slice());
    }

    #[test]
    fn no_stragglers_by_default() {
        let dataset = small_dataset();
        let features = dataset.feature_len();
        let config = FedConfig {
            rounds: 1,
            clients_per_round: 3,
            local_batches: 3,
            ..FedConfig::default()
        };
        let mut server = FederatedServer::new(config, dataset, mlp_factory(features, 10));
        let m = server.run_round().unwrap();
        assert_eq!(m.stragglers, 0);
    }

    #[test]
    fn run_after_completion_is_empty() {
        let dataset = small_dataset();
        let features = dataset.feature_len();
        let config = FedConfig {
            rounds: 1,
            clients_per_round: 2,
            local_batches: 2,
            ..FedConfig::default()
        };
        let mut server = FederatedServer::new(config, dataset, mlp_factory(features, 10));
        server.run().unwrap();
        assert!(server.run().unwrap().is_empty());
    }
}
