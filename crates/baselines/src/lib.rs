//! Centralized federated-learning baselines: **FedAvg** and **FedProx**.
//!
//! The paper compares the Specializing DAG against the original federated
//! averaging (McMahan et al.) on all three datasets (Figure 9) and against
//! FedProx (Li et al.) on the synthetic benchmark (Figures 10–11). Both
//! baselines share the classic client–server round:
//!
//! 1. the server broadcasts the global model to the sampled clients,
//! 2. each client trains locally (FedProx adds the proximal term
//!    `μ/2 ‖w − w_global‖²` to the local objective),
//! 3. the server aggregates the updates, weighted by sample counts.
//!
//! # Example
//!
//! ```
//! use dagfl_baselines::{FedConfig, FederatedServer};
//! use dagfl_datasets::{fmnist_clustered, FmnistConfig};
//! use dagfl_nn::{Dense, Model, Sequential};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), dagfl_nn::NnError> {
//! let dataset = fmnist_clustered(&FmnistConfig {
//!     num_clients: 6,
//!     samples_per_client: 30,
//!     ..FmnistConfig::default()
//! });
//! let features = dataset.feature_len();
//! let config = FedConfig {
//!     rounds: 2,
//!     clients_per_round: 3,
//!     local_batches: 2,
//!     ..FedConfig::default()
//! };
//! let mut server = FederatedServer::new(config, dataset, Arc::new(move |rng| {
//!     Box::new(Sequential::new(vec![Box::new(Dense::new(rng, features, 10))]))
//!         as Box<dyn Model>
//! }));
//! let history = server.run()?;
//! assert_eq!(history.len(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod local;
mod server;

pub use local::LocalOnly;
pub use server::{FedConfig, FedRoundMetrics, FederatedServer, ModelFactory};
