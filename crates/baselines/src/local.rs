//! Local-only training: the no-communication lower bound.
//!
//! The paper motivates federated learning with the alternative of
//! "multiple, sub-optimal, local models" (§1). This baseline quantifies
//! that alternative: every client trains its own model from scratch on
//! its local data only, with the same per-round budget as the federated
//! runs, and never exchanges anything.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_datasets::FederatedDataset;
use dagfl_nn::{Evaluation, Model, NnError, SgdConfig};

use crate::ModelFactory;

/// Per-client local training without any communication.
pub struct LocalOnly {
    dataset: FederatedDataset,
    models: Vec<Box<dyn Model>>,
    rng: StdRng,
    rounds_run: usize,
    learning_rate: f32,
    local_batches: usize,
    batch_size: usize,
}

impl LocalOnly {
    /// Creates one fresh model per client.
    pub fn new(
        dataset: FederatedDataset,
        factory: ModelFactory,
        learning_rate: f32,
        local_batches: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let models = (0..dataset.num_clients())
            .map(|_| factory(&mut rng))
            .collect();
        Self {
            dataset,
            models,
            rng,
            rounds_run: 0,
            learning_rate,
            local_batches,
            batch_size,
        }
    }

    /// Rounds of local training completed.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Trains every client for one round's batch budget.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn run_round(&mut self) -> Result<(), NnError> {
        let opt = SgdConfig::new(self.learning_rate);
        for (model, data) in self.models.iter_mut().zip(self.dataset.clients()) {
            for (x, y) in data.train_batches(self.batch_size, self.local_batches, &mut self.rng) {
                model.train_batch(&x, &y, &opt)?;
            }
        }
        self.rounds_run += 1;
        Ok(())
    }

    /// Runs `rounds` rounds of local training.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn run(&mut self, rounds: usize) -> Result<(), NnError> {
        for _ in 0..rounds {
            self.run_round()?;
        }
        Ok(())
    }

    /// Evaluates every client's own model on its own test data.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn evaluate_all(&self) -> Result<Vec<(u32, Evaluation)>, NnError> {
        let mut out = Vec::with_capacity(self.models.len());
        for (idx, (model, data)) in self.models.iter().zip(self.dataset.clients()).enumerate() {
            let eval = model.evaluate(data.test_x(), data.test_y())?;
            out.push((idx as u32, eval));
        }
        Ok(out)
    }

    /// Mean own-test accuracy over all clients.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn mean_accuracy(&self) -> Result<f32, NnError> {
        let evals = self.evaluate_all()?;
        if evals.is_empty() {
            return Ok(0.0);
        }
        Ok(evals.iter().map(|(_, e)| e.accuracy).sum::<f32>() / evals.len() as f32)
    }
}

impl std::fmt::Debug for LocalOnly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalOnly")
            .field("clients", &self.models.len())
            .field("rounds_run", &self.rounds_run)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Relu, Sequential};
    use std::sync::Arc;

    fn setup() -> LocalOnly {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 4,
            samples_per_client: 60,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory: ModelFactory = Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 16)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 16, 10)),
            ])) as Box<dyn Model>
        });
        LocalOnly::new(dataset, factory, 0.1, 5, 10, 7)
    }

    #[test]
    fn local_training_improves_own_accuracy() {
        let mut local = setup();
        let before = local.mean_accuracy().unwrap();
        local.run(10).unwrap();
        let after = local.mean_accuracy().unwrap();
        assert!(
            after > before + 0.2,
            "no local progress: {before} -> {after}"
        );
        assert_eq!(local.rounds_run(), 10);
    }

    #[test]
    fn evaluate_all_covers_every_client() {
        let local = setup();
        assert_eq!(local.evaluate_all().unwrap().len(), 4);
    }

    #[test]
    fn models_are_independent() {
        let mut local = setup();
        local.run(3).unwrap();
        // Clients hold different data; their models must differ.
        let evals = local.evaluate_all().unwrap();
        let first = evals[0].1.accuracy;
        assert!(
            evals.iter().any(|(_, e)| (e.accuracy - first).abs() > 1e-6) || local.models.len() == 1
        );
    }
}
