//! The flipped-label poisoning attack (§4.4, §5.3.4).
//!
//! The threat model (adopted from Schmid et al.): an attacker manipulates
//! the *dataset* of some clients — e.g. by installing forged sensing
//! hardware — swapping the labels of two classes in both the training and
//! the test partition. The affected clients keep participating normally
//! and cannot tell their data is forged.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::FederatedDataset;

/// Which clients were poisoned and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonReport {
    /// Ids of the clients whose labels were flipped.
    pub poisoned_clients: Vec<u32>,
    /// First flipped class (the paper uses 3).
    pub class_a: usize,
    /// Second flipped class (the paper uses 8).
    pub class_b: usize,
}

impl PoisonReport {
    /// Whether the given client is poisoned.
    pub fn is_poisoned(&self, client: u32) -> bool {
        self.poisoned_clients.contains(&client)
    }
}

/// Flips labels `class_a` ↔ `class_b` for a random `fraction` of clients
/// (in both train and test data) and returns which clients were affected.
///
/// `fraction` is the paper's parameter `p`; the number of poisoned clients
/// is `round(p * num_clients)`.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]` or the classes are equal or out
/// of range.
pub fn flip_labels<R: Rng>(
    dataset: &mut FederatedDataset,
    class_a: usize,
    class_b: usize,
    fraction: f64,
    rng: &mut R,
) -> PoisonReport {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "poison fraction must be in [0, 1], got {fraction}"
    );
    assert_ne!(class_a, class_b, "flip classes must differ");
    assert!(
        class_a < dataset.num_classes() && class_b < dataset.num_classes(),
        "flip classes out of range"
    );
    let mut ids: Vec<u32> = (0..dataset.num_clients() as u32).collect();
    ids.shuffle(rng);
    let count = (fraction * dataset.num_clients() as f64).round() as usize;
    let mut poisoned: Vec<u32> = ids.into_iter().take(count).collect();
    poisoned.sort_unstable();
    flip_labels_for_clients(dataset, class_a, class_b, &poisoned);
    PoisonReport {
        poisoned_clients: poisoned,
        class_a,
        class_b,
    }
}

/// Flips labels `class_a` ↔ `class_b` for exactly the given clients.
///
/// # Panics
///
/// Panics if a client id is out of range.
pub fn flip_labels_for_clients(
    dataset: &mut FederatedDataset,
    class_a: usize,
    class_b: usize,
    clients: &[u32],
) {
    for &id in clients {
        let client = dataset
            .clients_mut()
            .get_mut(id as usize)
            .unwrap_or_else(|| panic!("client {id} out of range"));
        let (train, test) = client.labels_mut();
        for label in train.iter_mut().chain(test.iter_mut()) {
            if *label == class_a {
                *label = class_b;
            } else if *label == class_b {
                *label = class_a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fmnist_by_author, FmnistConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> FederatedDataset {
        fmnist_by_author(&FmnistConfig {
            num_clients: 10,
            samples_per_client: 100,
            ..FmnistConfig::default()
        })
    }

    #[test]
    fn fraction_selects_expected_count() {
        let mut ds = dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let report = flip_labels(&mut ds, 3, 8, 0.3, &mut rng);
        assert_eq!(report.poisoned_clients.len(), 3);
        assert_eq!(report.class_a, 3);
        assert_eq!(report.class_b, 8);
    }

    #[test]
    fn zero_fraction_poisons_nobody() {
        let mut ds = dataset();
        let before: Vec<Vec<usize>> = ds.clients().iter().map(|c| c.train_y().to_vec()).collect();
        let report = flip_labels(&mut ds, 3, 8, 0.0, &mut StdRng::seed_from_u64(0));
        assert!(report.poisoned_clients.is_empty());
        for (client, labels) in ds.clients().iter().zip(&before) {
            assert_eq!(client.train_y(), labels.as_slice());
        }
    }

    #[test]
    fn flip_swaps_exactly_the_two_classes() {
        let mut ds = dataset();
        let before = ds.clients()[0].train_y().to_vec();
        flip_labels_for_clients(&mut ds, 3, 8, &[0]);
        let after = ds.clients()[0].train_y();
        for (b, a) in before.iter().zip(after) {
            match *b {
                3 => assert_eq!(*a, 8),
                8 => assert_eq!(*a, 3),
                other => assert_eq!(*a, other),
            }
        }
    }

    #[test]
    fn flip_affects_test_labels_too() {
        let mut ds = dataset();
        let before = ds.clients()[2].test_y().to_vec();
        flip_labels_for_clients(&mut ds, 3, 8, &[2]);
        let after = ds.clients()[2].test_y();
        let flipped = before.iter().zip(after).filter(|(b, a)| b != a).count();
        let expected = before.iter().filter(|&&l| l == 3 || l == 8).count();
        assert_eq!(flipped, expected);
    }

    #[test]
    fn unpoisoned_clients_are_untouched() {
        let mut ds = dataset();
        let before = ds.clients()[5].train_y().to_vec();
        flip_labels_for_clients(&mut ds, 3, 8, &[0, 1]);
        assert_eq!(ds.clients()[5].train_y(), before.as_slice());
    }

    #[test]
    fn double_flip_restores_labels() {
        let mut ds = dataset();
        let before = ds.clients()[1].train_y().to_vec();
        flip_labels_for_clients(&mut ds, 3, 8, &[1]);
        flip_labels_for_clients(&mut ds, 3, 8, &[1]);
        assert_eq!(ds.clients()[1].train_y(), before.as_slice());
    }

    #[test]
    fn is_poisoned_lookup() {
        let report = PoisonReport {
            poisoned_clients: vec![1, 4],
            class_a: 3,
            class_b: 8,
        };
        assert!(report.is_poisoned(4));
        assert!(!report.is_poisoned(2));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn equal_classes_panic() {
        let mut ds = dataset();
        flip_labels(&mut ds, 3, 3, 0.1, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_class_panics() {
        let mut ds = dataset();
        flip_labels(&mut ds, 3, 99, 0.1, &mut StdRng::seed_from_u64(0));
    }
}
