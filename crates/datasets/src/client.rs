//! Per-client datasets and the federated collection.

use dagfl_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// The local data of one federated client, already split 90:10 into train
/// and test partitions (the paper's split, §5.1).
#[derive(Debug, Clone)]
pub struct ClientDataset {
    id: u32,
    cluster: usize,
    train_x: Matrix,
    train_y: Vec<usize>,
    test_x: Matrix,
    test_y: Vec<usize>,
}

impl ClientDataset {
    /// Creates a client dataset from pre-split partitions.
    ///
    /// # Panics
    ///
    /// Panics if a partition's feature rows and labels disagree.
    pub fn new(
        id: u32,
        cluster: usize,
        train_x: Matrix,
        train_y: Vec<usize>,
        test_x: Matrix,
        test_y: Vec<usize>,
    ) -> Self {
        assert_eq!(train_x.rows(), train_y.len(), "train rows != train labels");
        assert_eq!(test_x.rows(), test_y.len(), "test rows != test labels");
        Self {
            id,
            cluster,
            train_x,
            train_y,
            test_x,
            test_y,
        }
    }

    /// Creates a client dataset by splitting `(x, y)` with the given test
    /// fraction (rows are shuffled first).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()` or `test_fraction` is outside
    /// `(0, 1)`.
    pub fn from_split<R: Rng>(
        id: u32,
        cluster: usize,
        x: Matrix,
        y: Vec<usize>,
        test_fraction: f32,
        rng: &mut R,
    ) -> Self {
        assert_eq!(x.rows(), y.len(), "rows != labels");
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction must be in (0, 1)"
        );
        let mut indices: Vec<usize> = (0..y.len()).collect();
        indices.shuffle(rng);
        let test_count = ((y.len() as f32 * test_fraction).round() as usize)
            .clamp(1, y.len().saturating_sub(1).max(1));
        let (test_idx, train_idx) = indices.split_at(test_count);
        let train_x = x.select_rows(train_idx);
        let train_y = train_idx.iter().map(|&i| y[i]).collect();
        let test_x = x.select_rows(test_idx);
        let test_y = test_idx.iter().map(|&i| y[i]).collect();
        Self::new(id, cluster, train_x, train_y, test_x, test_y)
    }

    /// The client's id (dense, `0..n` within one federated dataset).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The ground-truth cluster this client belongs to.
    pub fn cluster(&self) -> usize {
        self.cluster
    }

    /// Training features (rows are samples).
    pub fn train_x(&self) -> &Matrix {
        &self.train_x
    }

    /// Training labels.
    pub fn train_y(&self) -> &[usize] {
        &self.train_y
    }

    /// Test features (rows are samples).
    pub fn test_x(&self) -> &Matrix {
        &self.test_x
    }

    /// Test labels.
    pub fn test_y(&self) -> &[usize] {
        &self.test_y
    }

    /// Number of training samples.
    pub fn num_train(&self) -> usize {
        self.train_y.len()
    }

    /// Number of test samples.
    pub fn num_test(&self) -> usize {
        self.test_y.len()
    }

    /// Produces `num_batches` mini-batches of `batch_size`, shuffling and
    /// cycling through the training data as needed.
    ///
    /// The paper fixes the number of local batches per round "to equalize
    /// the number of batches used for training per client in case of an
    /// uneven distribution" (Table 1), which requires cycling for small
    /// clients — hence batches are drawn round-robin from a shuffled
    /// permutation.
    ///
    /// # Panics
    ///
    /// Panics if the client has no training data or `batch_size == 0`.
    pub fn train_batches<R: Rng>(
        &self,
        batch_size: usize,
        num_batches: usize,
        rng: &mut R,
    ) -> Vec<(Matrix, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(
            self.num_train() > 0,
            "client {} has no training data",
            self.id
        );
        let mut order: Vec<usize> = (0..self.num_train()).collect();
        order.shuffle(rng);
        let mut cursor = 0;
        let mut batches = Vec::with_capacity(num_batches);
        for _ in 0..num_batches {
            let mut idx = Vec::with_capacity(batch_size);
            for _ in 0..batch_size.min(self.num_train()) {
                if cursor == order.len() {
                    order.shuffle(rng);
                    cursor = 0;
                }
                idx.push(order[cursor]);
                cursor += 1;
            }
            let bx = self.train_x.select_rows(&idx);
            let by = idx.iter().map(|&i| self.train_y[i]).collect();
            batches.push((bx, by));
        }
        batches
    }

    /// Mutable access to the label vectors, for attack transforms.
    pub(crate) fn labels_mut(&mut self) -> (&mut Vec<usize>, &mut Vec<usize>) {
        (&mut self.train_y, &mut self.test_y)
    }
}

/// A complete federated dataset: the clients plus task metadata.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    name: String,
    num_classes: usize,
    feature_len: usize,
    clients: Vec<ClientDataset>,
}

impl FederatedDataset {
    /// Bundles clients into a federated dataset.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty, ids are not dense `0..n`, or feature
    /// widths are inconsistent.
    pub fn new(name: impl Into<String>, num_classes: usize, clients: Vec<ClientDataset>) -> Self {
        assert!(!clients.is_empty(), "a federated dataset needs clients");
        let feature_len = clients[0].train_x().cols();
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(c.id() as usize, i, "client ids must be dense 0..n");
            assert_eq!(
                c.train_x().cols(),
                feature_len,
                "inconsistent feature width"
            );
        }
        Self {
            name: name.into(),
            num_classes,
            feature_len,
            clients,
        }
    }

    /// Human-readable dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of label classes of the task.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Width of each feature row.
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// All clients, ordered by id.
    pub fn clients(&self) -> &[ClientDataset] {
        &self.clients
    }

    /// Mutable access to the clients (used by attack transforms).
    pub fn clients_mut(&mut self) -> &mut [ClientDataset] {
        &mut self.clients
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The ground-truth cluster label of every client, by id.
    pub fn cluster_labels(&self) -> Vec<usize> {
        self.clients.iter().map(ClientDataset::cluster).collect()
    }

    /// The distinct cluster labels present, sorted.
    pub fn clusters(&self) -> Vec<usize> {
        let mut c: Vec<usize> = self.clients.iter().map(ClientDataset::cluster).collect();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// The *base pureness*: the approval pureness expected from uniformly
    /// random approvals, `Σ (n_c / n)²` over the cluster sizes (Table 2
    /// reports 1/k for equal-sized clusters).
    pub fn base_pureness(&self) -> f64 {
        let n = self.num_clients() as f64;
        let mut counts = std::collections::HashMap::new();
        for c in &self.clients {
            *counts.entry(c.cluster()).or_insert(0usize) += 1;
        }
        counts
            .values()
            .map(|&k| {
                let p = k as f64 / n;
                p * p
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_client(id: u32, n: usize) -> ClientDataset {
        let x = Matrix::from_fn(n, 3, |r, c| (r * 3 + c) as f32);
        let y = (0..n).map(|i| i % 2).collect();
        ClientDataset::new(id, 0, x, y, Matrix::zeros(1, 3), vec![0])
    }

    #[test]
    fn from_split_respects_fraction() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Matrix::from_fn(100, 4, |r, _| r as f32);
        let y = (0..100).map(|i| i % 3).collect();
        let c = ClientDataset::from_split(0, 1, x, y, 0.1, &mut rng);
        assert_eq!(c.num_test(), 10);
        assert_eq!(c.num_train(), 90);
        assert_eq!(c.cluster(), 1);
    }

    #[test]
    fn from_split_keeps_feature_label_pairs_together() {
        let mut rng = StdRng::seed_from_u64(0);
        // Feature row r encodes its label: x[r][0] == y[r].
        let x = Matrix::from_fn(50, 1, |r, _| (r % 5) as f32);
        let y = (0..50).map(|i| i % 5).collect();
        let c = ClientDataset::from_split(0, 0, x, y, 0.2, &mut rng);
        for (row, &label) in (0..c.num_train()).zip(c.train_y()) {
            assert_eq!(c.train_x().row(row)[0] as usize, label);
        }
        for (row, &label) in (0..c.num_test()).zip(c.test_y()) {
            assert_eq!(c.test_x().row(row)[0] as usize, label);
        }
    }

    #[test]
    fn batches_have_requested_shape() {
        let c = toy_client(0, 25);
        let mut rng = StdRng::seed_from_u64(1);
        let batches = c.train_batches(10, 3, &mut rng);
        assert_eq!(batches.len(), 3);
        for (x, y) in &batches {
            assert_eq!(x.rows(), 10);
            assert_eq!(y.len(), 10);
        }
    }

    #[test]
    fn batches_cycle_small_datasets() {
        let c = toy_client(0, 4);
        let mut rng = StdRng::seed_from_u64(1);
        // 5 batches of 4 from only 4 samples requires cycling.
        let batches = c.train_batches(4, 5, &mut rng);
        assert_eq!(batches.len(), 5);
        for (x, _) in &batches {
            assert_eq!(x.rows(), 4);
        }
    }

    #[test]
    fn batch_size_capped_at_dataset_size() {
        let c = toy_client(0, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let batches = c.train_batches(10, 1, &mut rng);
        assert_eq!(batches[0].0.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let c = toy_client(0, 3);
        c.train_batches(0, 1, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn federated_dataset_accessors() {
        let ds = FederatedDataset::new("toy", 2, vec![toy_client(0, 5), toy_client(1, 5)]);
        assert_eq!(ds.name(), "toy");
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.num_clients(), 2);
        assert_eq!(ds.feature_len(), 3);
        assert_eq!(ds.clusters(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        FederatedDataset::new("bad", 2, vec![toy_client(5, 3)]);
    }

    #[test]
    fn base_pureness_equal_clusters() {
        let mk = |id: u32, cluster: usize| {
            let x = Matrix::zeros(2, 1);
            ClientDataset::new(id, cluster, x.clone(), vec![0, 0], x, vec![0, 0])
        };
        let ds = FederatedDataset::new(
            "p",
            1,
            vec![mk(0, 0), mk(1, 0), mk(2, 1), mk(3, 1), mk(4, 2), mk(5, 2)],
        );
        // Three equal clusters -> base pureness 1/3.
        assert!((ds.base_pureness() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn base_pureness_unequal_clusters() {
        let mk = |id: u32, cluster: usize| {
            let x = Matrix::zeros(1, 1);
            ClientDataset::new(id, cluster, x.clone(), vec![0], x, vec![0])
        };
        let ds = FederatedDataset::new("p", 1, vec![mk(0, 0), mk(1, 0), mk(2, 0), mk(3, 1)]);
        // (3/4)^2 + (1/4)^2 = 0.625
        assert!((ds.base_pureness() - 0.625).abs() < 1e-9);
    }
}
