//! Synthetic CIFAR-100-like dataset with Pachinko Allocation client split.
//!
//! CIFAR-100 groups 100 classes into 20 superclasses of 5; the paper uses
//! the superclasses as ground-truth clusters and allocates client data with
//! the Pachinko Allocation Method (PAM) as in TensorFlow Federated
//! (§5.1.3): a root Dirichlet over superclasses and per-superclass
//! Dirichlets over subclasses, drawing samples without replacement.
//!
//! We keep the full hierarchy but replace the images with a Gaussian
//! feature mixture: superclass means are far apart, subclass means orbit
//! their superclass mean. What the experiments measure — fuzzy
//! client-cluster affiliation and the resulting partial specialization
//! (approval pureness ≈ 0.5 in Table 2) — is a property of the allocation,
//! which is reproduced faithfully.

use dagfl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_util::{sample_dirichlet, sample_normal};
use crate::{ClientDataset, FederatedDataset};

/// Number of fine-grained classes.
pub const NUM_CLASSES: usize = 100;
/// Number of superclasses (the ground-truth clusters).
pub const NUM_SUPERCLASSES: usize = 20;
/// Fine classes per superclass.
pub const CLASSES_PER_SUPERCLASS: usize = 5;

/// Configuration for the CIFAR-100-like generator.
#[derive(Debug, Clone, Copy)]
pub struct Cifar100Config {
    /// Number of clients (the paper uses 94).
    pub num_clients: usize,
    /// Samples drawn per client (before the 90:10 split).
    pub samples_per_client: usize,
    /// Dimension of the synthetic feature vectors.
    pub feature_dim: usize,
    /// Samples available per fine class in the global pool.
    pub pool_per_class: usize,
    /// Root Dirichlet concentration over superclasses (TFF uses 0.1).
    pub root_alpha: f64,
    /// Per-superclass Dirichlet concentration over its subclasses
    /// (TFF uses 10).
    pub sub_alpha: f64,
    /// Per-feature sample noise; larger values make the task harder
    /// (CIFAR-100 accuracies are far from ceiling in the paper).
    pub noise_stddev: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Cifar100Config {
    fn default() -> Self {
        Self {
            num_clients: 94,
            samples_per_client: 50,
            feature_dim: 32,
            pool_per_class: 60,
            root_alpha: 0.1,
            sub_alpha: 10.0,
            noise_stddev: 1.5,
            seed: 42,
        }
    }
}

/// The superclass of a fine class.
pub fn superclass_of(class: usize) -> usize {
    class / CLASSES_PER_SUPERCLASS
}

/// Generates the synthetic class hierarchy: per-class mean vectors where
/// subclasses cluster around their superclass mean.
fn class_means(cfg: &Cifar100Config, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let mut superclass_means = Vec::with_capacity(NUM_SUPERCLASSES);
    for _ in 0..NUM_SUPERCLASSES {
        let mean: Vec<f32> = (0..cfg.feature_dim)
            .map(|_| sample_normal(rng, 0.0, 3.0) as f32)
            .collect();
        superclass_means.push(mean);
    }
    let mut means = Vec::with_capacity(NUM_CLASSES);
    for class in 0..NUM_CLASSES {
        let base = &superclass_means[superclass_of(class)];
        let mean: Vec<f32> = base
            .iter()
            .map(|&b| b + sample_normal(rng, 0.0, 1.0) as f32)
            .collect();
        means.push(mean);
    }
    means
}

/// Draws `k` indices from `weights` restricted to categories with remaining
/// capacity; returns `None` if everything is exhausted.
fn draw_available<R: Rng>(weights: &[f64], remaining: &[usize], rng: &mut R) -> Option<usize> {
    let total: f64 = weights
        .iter()
        .zip(remaining)
        .filter(|(_, &r)| r > 0)
        .map(|(&w, _)| w)
        .sum();
    if total <= 0.0 {
        return remaining.iter().position(|&r| r > 0);
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, (&w, &r)) in weights.iter().zip(remaining).enumerate() {
        if r == 0 {
            continue;
        }
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    remaining.iter().position(|&r| r > 0)
}

/// Generates the CIFAR-100-like federated dataset.
///
/// Each client's ground-truth cluster is the most common superclass in its
/// data (ties resolved randomly), exactly as the paper assigns clusters for
/// analysis.
///
/// # Panics
///
/// Panics if the pool is too small for the requested client data
/// (`num_clients * samples_per_client > 100 * pool_per_class`) or any
/// dimension is zero.
pub fn cifar100_like(cfg: &Cifar100Config) -> FederatedDataset {
    assert!(cfg.num_clients > 0 && cfg.samples_per_client >= 10);
    assert!(cfg.feature_dim > 0 && cfg.pool_per_class > 0);
    assert!(
        cfg.num_clients * cfg.samples_per_client <= NUM_CLASSES * cfg.pool_per_class,
        "sample pool too small: need {}, have {}",
        cfg.num_clients * cfg.samples_per_client,
        NUM_CLASSES * cfg.pool_per_class
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let means = class_means(cfg, &mut rng);
    // Remaining pool capacity per fine class (samples are generated on
    // draw; the pool only enforces the without-replacement budget).
    let mut remaining = vec![cfg.pool_per_class; NUM_CLASSES];
    let mut clients = Vec::with_capacity(cfg.num_clients);
    for id in 0..cfg.num_clients {
        // PAM: root Dirichlet over superclasses, one Dirichlet per
        // superclass over its 5 subclasses.
        let root = sample_dirichlet(&mut rng, cfg.root_alpha, NUM_SUPERCLASSES);
        let subs: Vec<Vec<f64>> = (0..NUM_SUPERCLASSES)
            .map(|_| sample_dirichlet(&mut rng, cfg.sub_alpha, CLASSES_PER_SUPERCLASS))
            .collect();
        let mut x = Matrix::zeros(cfg.samples_per_client, cfg.feature_dim);
        let mut y = Vec::with_capacity(cfg.samples_per_client);
        let mut super_counts = [0usize; NUM_SUPERCLASSES];
        for s in 0..cfg.samples_per_client {
            // Capacity left per superclass.
            let super_remaining: Vec<usize> = (0..NUM_SUPERCLASSES)
                .map(|sc| {
                    (0..CLASSES_PER_SUPERCLASS)
                        .map(|i| remaining[sc * CLASSES_PER_SUPERCLASS + i])
                        .sum()
                })
                .collect();
            let sc = draw_available(&root, &super_remaining, &mut rng)
                .expect("pool capacity checked in advance");
            let sub_remaining: Vec<usize> = (0..CLASSES_PER_SUPERCLASS)
                .map(|i| remaining[sc * CLASSES_PER_SUPERCLASS + i])
                .collect();
            let sub = draw_available(&subs[sc], &sub_remaining, &mut rng)
                .expect("superclass chosen with capacity");
            let class = sc * CLASSES_PER_SUPERCLASS + sub;
            remaining[class] -= 1;
            super_counts[sc] += 1;
            // Materialise the sample: class mean + noise.
            for (slot, &m) in x.row_mut(s).iter_mut().zip(&means[class]) {
                *slot = m + sample_normal(&mut rng, 0.0, cfg.noise_stddev) as f32;
            }
            y.push(class);
        }
        // Cluster = most common superclass; ties resolve randomly.
        let max_count = *super_counts.iter().max().expect("non-empty");
        let top: Vec<usize> = (0..NUM_SUPERCLASSES)
            .filter(|&sc| super_counts[sc] == max_count)
            .collect();
        let cluster = top[rng.gen_range(0..top.len())];
        clients.push(ClientDataset::from_split(
            id as u32, cluster, x, y, 0.1, &mut rng,
        ));
    }
    FederatedDataset::new("cifar100-like", NUM_CLASSES, clients)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Cifar100Config {
        Cifar100Config {
            num_clients: 12,
            samples_per_client: 30,
            pool_per_class: 30,
            ..Cifar100Config::default()
        }
    }

    #[test]
    fn superclass_mapping() {
        assert_eq!(superclass_of(0), 0);
        assert_eq!(superclass_of(4), 0);
        assert_eq!(superclass_of(5), 1);
        assert_eq!(superclass_of(99), 19);
    }

    #[test]
    fn labels_are_valid_fine_classes() {
        let ds = cifar100_like(&small_config());
        for client in ds.clients() {
            for &label in client.train_y().iter().chain(client.test_y()) {
                assert!(label < NUM_CLASSES);
            }
        }
    }

    #[test]
    fn cluster_matches_majority_superclass() {
        let ds = cifar100_like(&small_config());
        for client in ds.clients() {
            let mut counts = [0usize; NUM_SUPERCLASSES];
            for &label in client.train_y().iter().chain(client.test_y()) {
                counts[superclass_of(label)] += 1;
            }
            let max = *counts.iter().max().unwrap();
            assert_eq!(
                counts[client.cluster()],
                max,
                "client {} cluster is not a modal superclass",
                client.id()
            );
        }
    }

    #[test]
    fn pachinko_concentrates_clients() {
        // With root alpha = 0.1 most clients should be dominated by few
        // superclasses.
        let ds = cifar100_like(&small_config());
        let mut dominated = 0;
        for client in ds.clients() {
            let mut counts = [0usize; NUM_SUPERCLASSES];
            for &label in client.train_y() {
                counts[superclass_of(label)] += 1;
            }
            let total: usize = counts.iter().sum();
            let max = *counts.iter().max().unwrap();
            if max as f64 / total as f64 > 0.4 {
                dominated += 1;
            }
        }
        assert!(
            dominated * 2 >= ds.num_clients(),
            "only {dominated}/{} clients are concentrated",
            ds.num_clients()
        );
    }

    #[test]
    fn pool_budget_is_respected() {
        // Sum of samples over clients never exceeds the global pool.
        let cfg = small_config();
        let ds = cifar100_like(&cfg);
        let mut counts = vec![0usize; NUM_CLASSES];
        for client in ds.clients() {
            for &label in client.train_y().iter().chain(client.test_y()) {
                counts[label] += 1;
            }
        }
        for (class, &count) in counts.iter().enumerate() {
            assert!(
                count <= cfg.pool_per_class,
                "class {class} drawn {count} times (pool {})",
                cfg.pool_per_class
            );
        }
    }

    #[test]
    #[should_panic(expected = "pool too small")]
    fn oversubscribed_pool_panics() {
        let cfg = Cifar100Config {
            num_clients: 1000,
            samples_per_client: 100,
            pool_per_class: 10,
            ..Cifar100Config::default()
        };
        cifar100_like(&cfg);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = cifar100_like(&cfg);
        let b = cifar100_like(&cfg);
        assert_eq!(a.clients()[5].train_y(), b.clients()[5].train_y());
        assert_eq!(a.cluster_labels(), b.cluster_labels());
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let cfg = Cifar100Config::default();
        assert_eq!(cfg.num_clients, 94);
        // The default must satisfy the pool constraint.
        assert!(cfg.num_clients * cfg.samples_per_client <= NUM_CLASSES * cfg.pool_per_class);
    }

    #[test]
    fn features_reflect_class_structure() {
        // Same-class samples must be closer than different-superclass ones
        // on average.
        let ds = cifar100_like(&small_config());
        let client = &ds.clients()[0];
        let x = client.train_x();
        let y = client.train_y();
        let dist = |a: usize, b: usize| -> f32 {
            x.row(a)
                .iter()
                .zip(x.row(b))
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f32>()
                .sqrt()
        };
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..y.len() {
            for j in (i + 1)..y.len() {
                if y[i] == y[j] {
                    same.push(dist(i, j));
                } else if superclass_of(y[i]) != superclass_of(y[j]) {
                    diff.push(dist(i, j));
                }
            }
        }
        if same.is_empty() || diff.is_empty() {
            return; // Degenerate draw; nothing to compare.
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&same) < mean(&diff),
            "class structure not reflected in features"
        );
    }
}
