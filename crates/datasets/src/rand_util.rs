//! Sampling helpers shared by the dataset generators.

use rand::Rng;

/// Samples from `N(mean, stddev²)` using Box–Muller.
pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, stddev: f64) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return mean + stddev * z;
        }
    }
}

/// Samples from `Gamma(shape, 1)` using Marsaglia–Tsang, with the standard
/// boost for `shape < 1`.
fn sample_gamma<R: Rng>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a)
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_normal(rng, 0.0, 1.0);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Samples a probability vector from a symmetric Dirichlet distribution
/// with concentration `alpha` over `k` categories.
///
/// # Panics
///
/// Panics if `k == 0` or `alpha <= 0`.
pub fn sample_dirichlet<R: Rng>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k > 0, "dirichlet needs at least one category");
    assert!(alpha > 0.0, "dirichlet concentration must be positive");
    let mut draws: Vec<f64> = (0..k).map(|_| sample_gamma(rng, alpha)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate draw (numerically possible for tiny alpha): uniform.
        return vec![1.0 / k as f64; k];
    }
    for d in &mut draws {
        *d /= total;
    }
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_plausible() {
        let mut rng = StdRng::seed_from_u64(0);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_normal(&mut rng, 2.0, 3.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for alpha in [0.1, 0.5, 1.0, 10.0] {
            let p = sample_dirichlet(&mut rng, alpha, 7);
            assert_eq!(p.len(), 7);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "alpha {alpha} sum {sum}");
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn small_alpha_concentrates_mass() {
        // With alpha << 1 most draws put nearly all mass on one category.
        // For Dirichlet(0.05) over 5 categories the true P(max > 0.9) is
        // ~0.65, so demand a 55% rate over 400 draws: far above anything a
        // diffuse distribution produces, yet ~4 sigma below the mean —
        // robust to the exact RNG stream.
        let mut rng = StdRng::seed_from_u64(2);
        let mut peaked = 0;
        for _ in 0..400 {
            let p = sample_dirichlet(&mut rng, 0.05, 5);
            let max = p.iter().cloned().fold(0.0, f64::max);
            if max > 0.9 {
                peaked += 1;
            }
        }
        assert!(peaked > 220, "only {peaked}/400 draws were peaked");
    }

    #[test]
    fn large_alpha_is_near_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = sample_dirichlet(&mut rng, 1000.0, 4);
        for v in p {
            assert!((v - 0.25).abs() < 0.05, "component {v} far from uniform");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = sample_dirichlet(&mut StdRng::seed_from_u64(9), 1.0, 5);
        let b = sample_dirichlet(&mut StdRng::seed_from_u64(9), 1.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn dirichlet_zero_categories_panics() {
        sample_dirichlet(&mut StdRng::seed_from_u64(0), 1.0, 0);
    }
}
