//! Federated dataset substrate for the dagfl workspace.
//!
//! The paper evaluates on three datasets plus the FedProx synthetic
//! benchmark. Real FEMNIST/Shakespeare/CIFAR-100 downloads are not
//! available offline, so this crate generates *synthetic equivalents that
//! preserve exactly the structure the algorithms react to* — which classes
//! a client holds, how clients cluster, and how inter-client heterogeneity
//! is parameterised (see DESIGN.md §3 for the substitution rationale):
//!
//! * [`fmnist`] — "FMNIST-clustered": prototype-based digit images with the
//!   paper's three class-clusters {0–3}, {4–6}, {7–9}, a relaxed variant
//!   (15–20 % foreign-cluster data) and a by-author variant for the
//!   poisoning/scalability experiments,
//! * [`poets`](mod@poets) — two synthetic "languages" (English-like and German-like
//!   function-word streams) for next-character prediction, two clusters,
//! * [`cifar`] — a 100-class/20-superclass Gaussian-mixture hierarchy with
//!   the Pachinko Allocation Method client split used by TensorFlow
//!   Federated,
//! * [`fedprox`] — the synthetic(α, β) logistic-regression benchmark of
//!   Li et al., reimplemented faithfully,
//! * [`poison`] — the flipped-label attack transform (3 ↔ 8).
//!
//! All generators are deterministic for a fixed seed.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cifar;
mod client;
pub mod fedprox;
pub mod fmnist;
pub mod poets;
pub mod poison;
mod rand_util;

pub use cifar::{cifar100_like, Cifar100Config};
pub use client::{ClientDataset, FederatedDataset};
pub use fedprox::{fedprox_synthetic, FedProxConfig};
pub use fmnist::{fmnist_by_author, fmnist_clustered, fmnist_clustered_streamed, FmnistConfig};
pub use poets::{poets, PoetsConfig, POETS_VOCAB};
pub use poison::{flip_labels, PoisonReport};
pub use rand_util::{sample_dirichlet, sample_normal};
