//! Synthetic "Poets": two-language next-character prediction.
//!
//! The paper's Poets dataset combines Shakespeare (English) and Goethe
//! (German) texts; the two languages form the two client clusters
//! (§5.1.2). We synthesize the same structure from common function-word
//! streams: English-like clients sample from an English word list, German
//! clients from a German list rich in umlauts/ß, so the character
//! statistics of the two clusters differ exactly where the languages do.

use dagfl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ClientDataset, FederatedDataset};

/// The shared character vocabulary: `a`–`z`, space, full stop and the four
/// German specials.
pub const POETS_VOCAB: [char; 32] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', ' ', '.', 'ä', 'ö', 'ü', 'ß',
];

/// Common English function words (language cluster 0).
const ENGLISH_WORDS: &[&str] = &[
    "the", "and", "to", "of", "that", "is", "was", "he", "for", "it", "with", "as", "his", "on",
    "be", "at", "by", "had", "not", "are", "but", "from", "or", "have", "they", "which", "one",
    "you", "were", "her", "all", "she", "there", "would", "their", "will", "when", "who", "him",
    "been", "has", "more", "if", "no", "out", "so", "what", "up", "said", "its",
];

/// Common German function words (language cluster 1), rich in umlauts.
const GERMAN_WORDS: &[&str] = &[
    "der",
    "die",
    "und",
    "das",
    "ist",
    "nicht",
    "ich",
    "ein",
    "zu",
    "es",
    "sie",
    "mit",
    "sich",
    "auf",
    "für",
    "wir",
    "über",
    "können",
    "müssen",
    "schön",
    "größe",
    "wäre",
    "hätte",
    "würde",
    "dass",
    "aber",
    "auch",
    "nach",
    "bei",
    "aus",
    "wenn",
    "nur",
    "noch",
    "schon",
    "mehr",
    "sehr",
    "vom",
    "zum",
    "dieser",
    "weiß",
    "heißt",
    "natürlich",
    "früh",
    "später",
    "gegenüber",
    "möchte",
    "dafür",
    "darüber",
    "zurück",
    "grün",
];

/// Configuration for the synthetic Poets generator.
#[derive(Debug, Clone, Copy)]
pub struct PoetsConfig {
    /// Clients per language (total clients = 2×this).
    pub clients_per_language: usize,
    /// Character windows per client before the 90:10 split.
    pub samples_per_client: usize,
    /// Window length in characters (the paper uses 80; shorter windows
    /// train faster with identical cluster structure).
    pub seq_len: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for PoetsConfig {
    fn default() -> Self {
        Self {
            clients_per_language: 10,
            samples_per_client: 60,
            seq_len: 20,
            seed: 42,
        }
    }
}

/// Maps a character to its vocabulary index, if present.
pub fn char_to_token(c: char) -> Option<usize> {
    POETS_VOCAB.iter().position(|&v| v == c)
}

/// Generates a stream of `len` tokens for one client of the given language.
fn token_stream<R: Rng>(words: &[&str], len: usize, rng: &mut R) -> Vec<usize> {
    let mut tokens = Vec::with_capacity(len + 16);
    while tokens.len() < len {
        let word = words[rng.gen_range(0..words.len())];
        for c in word.chars() {
            if let Some(t) = char_to_token(c) {
                tokens.push(t);
            }
        }
        // Occasionally end a "sentence".
        if rng.gen::<f32>() < 0.1 {
            tokens.push(char_to_token('.').expect("vocab contains '.'"));
        }
        tokens.push(char_to_token(' ').expect("vocab contains ' '"));
    }
    tokens.truncate(len);
    tokens
}

/// Generates the two-cluster Poets dataset.
///
/// Cluster 0 holds English-like clients, cluster 1 German-like clients.
/// Features are token-id windows of `seq_len`; the label is the following
/// token.
///
/// # Panics
///
/// Panics if any configuration field is zero or `samples_per_client < 10`.
pub fn poets(cfg: &PoetsConfig) -> FederatedDataset {
    assert!(
        cfg.clients_per_language > 0,
        "need clients in each language"
    );
    assert!(cfg.samples_per_client >= 10, "too few samples per client");
    assert!(cfg.seq_len > 0, "sequence length must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clients = Vec::with_capacity(2 * cfg.clients_per_language);
    let mut id = 0u32;
    for (cluster, words) in [(0usize, ENGLISH_WORDS), (1usize, GERMAN_WORDS)] {
        for _ in 0..cfg.clients_per_language {
            // Windows advance by a stride of 3, so a modest stream yields
            // the requested number of (window, next-char) samples.
            let stride = 3;
            let needed = cfg.seq_len + 1 + stride * (cfg.samples_per_client - 1);
            let stream = token_stream(words, needed, &mut rng);
            let mut x = Matrix::zeros(cfg.samples_per_client, cfg.seq_len);
            let mut y = Vec::with_capacity(cfg.samples_per_client);
            for s in 0..cfg.samples_per_client {
                let start = s * stride;
                for (t, slot) in x.row_mut(s).iter_mut().enumerate() {
                    *slot = stream[start + t] as f32;
                }
                y.push(stream[start + cfg.seq_len]);
            }
            clients.push(ClientDataset::from_split(id, cluster, x, y, 0.1, &mut rng));
            id += 1;
        }
    }
    FederatedDataset::new("poets", POETS_VOCAB.len(), clients)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_has_no_duplicates() {
        for (i, a) in POETS_VOCAB.iter().enumerate() {
            for b in &POETS_VOCAB[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn char_to_token_roundtrips() {
        for (i, &c) in POETS_VOCAB.iter().enumerate() {
            assert_eq!(char_to_token(c), Some(i));
        }
        assert_eq!(char_to_token('!'), None);
    }

    #[test]
    fn two_equal_clusters() {
        let ds = poets(&PoetsConfig {
            clients_per_language: 4,
            ..PoetsConfig::default()
        });
        assert_eq!(ds.num_clients(), 8);
        assert_eq!(ds.clusters(), vec![0, 1]);
        assert!((ds.base_pureness() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn all_tokens_within_vocab() {
        let ds = poets(&PoetsConfig::default());
        for client in ds.clients() {
            for row in 0..client.train_x().rows() {
                for &t in client.train_x().row(row) {
                    assert!(t >= 0.0 && (t as usize) < POETS_VOCAB.len());
                }
            }
            for &label in client.train_y() {
                assert!(label < POETS_VOCAB.len());
            }
        }
    }

    #[test]
    fn english_clients_avoid_umlauts() {
        let ds = poets(&PoetsConfig {
            clients_per_language: 3,
            samples_per_client: 100,
            ..PoetsConfig::default()
        });
        let umlaut_tokens: Vec<usize> = ['ä', 'ö', 'ü', 'ß']
            .iter()
            .map(|&c| char_to_token(c).unwrap())
            .collect();
        for client in ds.clients().iter().filter(|c| c.cluster() == 0) {
            for row in 0..client.train_x().rows() {
                for &t in client.train_x().row(row) {
                    assert!(
                        !umlaut_tokens.contains(&(t as usize)),
                        "english client used an umlaut"
                    );
                }
            }
        }
    }

    #[test]
    fn german_clients_use_umlauts() {
        let ds = poets(&PoetsConfig {
            clients_per_language: 3,
            samples_per_client: 100,
            ..PoetsConfig::default()
        });
        let umlaut_tokens: Vec<usize> = ['ä', 'ö', 'ü', 'ß']
            .iter()
            .map(|&c| char_to_token(c).unwrap())
            .collect();
        for client in ds.clients().iter().filter(|c| c.cluster() == 1) {
            let mut found = false;
            for row in 0..client.train_x().rows() {
                for &t in client.train_x().row(row) {
                    if umlaut_tokens.contains(&(t as usize)) {
                        found = true;
                    }
                }
            }
            assert!(found, "german client {} never used an umlaut", client.id());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PoetsConfig::default();
        let a = poets(&cfg);
        let b = poets(&cfg);
        assert_eq!(a.clients()[3].train_y(), b.clients()[3].train_y());
    }

    #[test]
    fn sample_shapes_match_config() {
        let cfg = PoetsConfig {
            clients_per_language: 2,
            samples_per_client: 40,
            seq_len: 12,
            seed: 7,
        };
        let ds = poets(&cfg);
        for client in ds.clients() {
            assert_eq!(client.train_x().cols(), 12);
            assert_eq!(client.num_train() + client.num_test(), 40);
        }
    }

    #[test]
    fn char_rnn_improves_on_poets_client() {
        use dagfl_nn::{CharRnn, Model, SgdConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ds = poets(&PoetsConfig {
            clients_per_language: 1,
            samples_per_client: 200,
            seq_len: 10,
            seed: 3,
        });
        let client = &ds.clients()[0];
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = CharRnn::new(&mut rng, POETS_VOCAB.len(), 8, 32);
        let before = model.evaluate(client.test_x(), client.test_y()).unwrap();
        let opt = SgdConfig::new(0.5);
        let mut batch_rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            for (x, y) in client.train_batches(10, 18, &mut batch_rng) {
                model.train_batch(&x, &y, &opt).unwrap();
            }
        }
        let after = model.evaluate(client.test_x(), client.test_y()).unwrap();
        assert!(
            after.accuracy > before.accuracy && after.accuracy > 0.25,
            "no learning progress: {} -> {}",
            before.accuracy,
            after.accuracy
        );
    }
}
