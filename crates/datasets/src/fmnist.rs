//! Synthetic "FMNIST-clustered": prototype-based digit images.
//!
//! The paper's FMNIST-clustered dataset assigns disjoint class groups
//! {0–3}, {4–6}, {7–9} to three client clusters (§5.1.1). The learning
//! dynamics depend on *which classes a client holds*, not on pixel realism,
//! so we synthesize images from per-class prototype patterns plus
//! per-client style (translation + brightness, standing in for FEMNIST's
//! per-author handwriting) and per-sample Gaussian noise.

use dagfl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_util::sample_normal;
use crate::{ClientDataset, FederatedDataset};

/// Side length of the synthetic images.
pub const IMAGE_SIDE: usize = 14;
/// Flattened image length.
pub const IMAGE_LEN: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// The paper's three class clusters.
pub const CLASS_CLUSTERS: [&[usize]; 3] = [&[0, 1, 2, 3], &[4, 5, 6], &[7, 8, 9]];

/// Configuration for the synthetic FMNIST generators.
#[derive(Debug, Clone, Copy)]
pub struct FmnistConfig {
    /// Total number of clients (spread round-robin over the three clusters
    /// for the clustered variant).
    pub num_clients: usize,
    /// Samples per client before the 90:10 train/test split.
    pub samples_per_client: usize,
    /// Per-pixel Gaussian noise added to each sample.
    pub noise_stddev: f32,
    /// Fraction of samples drawn from *other* clusters' classes
    /// (0.0 = the strict dataset; the paper's relaxed variant uses
    /// 0.15–0.20).
    pub relaxation: f32,
    /// Master seed; everything is deterministic given this.
    pub seed: u64,
}

impl Default for FmnistConfig {
    fn default() -> Self {
        Self {
            num_clients: 30,
            samples_per_client: 60,
            noise_stddev: 0.3,
            relaxation: 0.0,
            seed: 42,
        }
    }
}

/// Deterministic per-class prototype: a smoothed random pattern in
/// `[0, 1]`.
///
/// Classes 3 and 8 are deliberately *correlated* (8 is a perturbation of
/// 3), mirroring their visual similarity in real MNIST — the reason the
/// paper's label-flip attack targets exactly this pair.
fn class_prototype(class: usize, seed: u64) -> Vec<f32> {
    if class == 8 {
        let base = raw_prototype(3, seed);
        let own = raw_prototype(8, seed);
        // Half shared structure, half own: confusable for weak models,
        // separable for trained ones.
        let mixed: Vec<f32> = base
            .iter()
            .zip(&own)
            .map(|(b, o)| 0.5 * b + 0.5 * o)
            .collect();
        return normalize_unit(mixed);
    }
    normalize_unit(raw_prototype(class, seed))
}

/// The un-normalised smoothed random pattern for a class.
fn raw_prototype(class: usize, seed: u64) -> Vec<f32> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(class as u64 + 1)));
    let mut img: Vec<f32> = (0..IMAGE_LEN)
        .map(|_| sample_normal(&mut rng, 0.0, 1.0) as f32)
        .collect();
    // Two box-blur passes make the pattern spatially coherent, so small
    // translations (the client "style") stay close to the prototype.
    for _ in 0..2 {
        let mut blurred = vec![0.0f32; IMAGE_LEN];
        for y in 0..IMAGE_SIDE {
            for x in 0..IMAGE_SIDE {
                let mut acc = 0.0;
                let mut count = 0.0;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let ny = y as i32 + dy;
                        let nx = x as i32 + dx;
                        if (0..IMAGE_SIDE as i32).contains(&ny)
                            && (0..IMAGE_SIDE as i32).contains(&nx)
                        {
                            acc += img[ny as usize * IMAGE_SIDE + nx as usize];
                            count += 1.0;
                        }
                    }
                }
                blurred[y * IMAGE_SIDE + x] = acc / count;
            }
        }
        img = blurred;
    }
    img
}

/// Rescales a pattern into `[0, 1]`.
fn normalize_unit(mut img: Vec<f32>) -> Vec<f32> {
    let min = img.iter().copied().fold(f32::INFINITY, f32::min);
    let max = img.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let range = (max - min).max(1e-6);
    for v in &mut img {
        *v = (*v - min) / range;
    }
    img
}

/// Per-client rendering style: a small translation plus brightness scale,
/// the synthetic analogue of FEMNIST's per-author handwriting.
#[derive(Debug, Clone, Copy)]
struct ClientStyle {
    dx: i32,
    dy: i32,
    brightness: f32,
}

impl ClientStyle {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        Self {
            dx: rng.gen_range(-1..=1),
            dy: rng.gen_range(-1..=1),
            brightness: rng.gen_range(0.85..=1.15),
        }
    }

    fn render<R: Rng>(&self, prototype: &[f32], noise: f32, rng: &mut R) -> Vec<f32> {
        let mut out = vec![0.0f32; IMAGE_LEN];
        for y in 0..IMAGE_SIDE {
            for x in 0..IMAGE_SIDE {
                let sy = y as i32 - self.dy;
                let sx = x as i32 - self.dx;
                let base = if (0..IMAGE_SIDE as i32).contains(&sy)
                    && (0..IMAGE_SIDE as i32).contains(&sx)
                {
                    prototype[sy as usize * IMAGE_SIDE + sx as usize]
                } else {
                    0.0
                };
                let noisy = base * self.brightness + sample_normal(rng, 0.0, noise as f64) as f32;
                out[y * IMAGE_SIDE + x] = noisy.clamp(-1.0, 2.0);
            }
        }
        out
    }
}

/// The ground-truth cluster a class belongs to.
pub fn cluster_of_class(class: usize) -> usize {
    CLASS_CLUSTERS
        .iter()
        .position(|classes| classes.contains(&class))
        .expect("all 10 classes are assigned")
}

fn build_client<R: Rng>(
    id: u32,
    cluster: usize,
    cfg: &FmnistConfig,
    prototypes: &[Vec<f32>],
    classes: &dyn Fn(&mut R) -> usize,
    rng: &mut R,
) -> ClientDataset {
    let style = ClientStyle::sample(rng);
    let mut x = Matrix::zeros(cfg.samples_per_client, IMAGE_LEN);
    let mut y = Vec::with_capacity(cfg.samples_per_client);
    for s in 0..cfg.samples_per_client {
        let class = classes(rng);
        let img = style.render(&prototypes[class], cfg.noise_stddev, rng);
        x.row_mut(s).copy_from_slice(&img);
        y.push(class);
    }
    ClientDataset::from_split(id, cluster, x, y, 0.1, rng)
}

/// Generates the clustered dataset: clients are assigned round-robin to the
/// three class clusters and draw (mostly) from their cluster's classes.
///
/// With `cfg.relaxation == 0.0` this is the strict FMNIST-clustered dataset;
/// with 0.15–0.20 it is the paper's relaxed variant (Figure 8).
///
/// # Panics
///
/// Panics if `num_clients < 3` or `samples_per_client < 10`.
pub fn fmnist_clustered(cfg: &FmnistConfig) -> FederatedDataset {
    assert!(cfg.num_clients >= 3, "need at least one client per cluster");
    assert!(cfg.samples_per_client >= 10, "too few samples per client");
    let prototypes: Vec<Vec<f32>> = (0..NUM_CLASSES)
        .map(|c| class_prototype(c, cfg.seed))
        .collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let relaxation = cfg.relaxation;
    let mut clients = Vec::with_capacity(cfg.num_clients);
    for id in 0..cfg.num_clients {
        let cluster = id % CLASS_CLUSTERS.len();
        let pick = move |rng: &mut StdRng| -> usize {
            let own = CLASS_CLUSTERS[cluster];
            if relaxation > 0.0 && rng.gen::<f32>() < relaxation {
                // A foreign-cluster class.
                loop {
                    let class = rng.gen_range(0..NUM_CLASSES);
                    if !own.contains(&class) {
                        return class;
                    }
                }
            } else {
                own[rng.gen_range(0..own.len())]
            }
        };
        clients.push(build_client(
            id as u32,
            cluster,
            cfg,
            &prototypes,
            &pick,
            &mut rng,
        ));
    }
    let name = if relaxation > 0.0 {
        "fmnist-relaxed"
    } else {
        "fmnist-clustered"
    };
    FederatedDataset::new(name, NUM_CLASSES, clients)
}

/// Derives the independent RNG stream seed of one client (splitmix64),
/// so every client's data depends only on `(master seed, client id)` —
/// never on how many clients were rendered before it or on which thread
/// rendered it.
fn client_stream_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.wrapping_add(1)))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Renders one client of the streamed clustered dataset from its own
/// RNG stream.
fn build_streamed_client(id: usize, cfg: &FmnistConfig, prototypes: &[Vec<f32>]) -> ClientDataset {
    let cluster = id % CLASS_CLUSTERS.len();
    let relaxation = cfg.relaxation;
    let pick = move |rng: &mut StdRng| -> usize {
        let own = CLASS_CLUSTERS[cluster];
        if relaxation > 0.0 && rng.gen::<f32>() < relaxation {
            loop {
                let class = rng.gen_range(0..NUM_CLASSES);
                if !own.contains(&class) {
                    return class;
                }
            }
        } else {
            own[rng.gen_range(0..own.len())]
        }
    };
    let mut rng = StdRng::seed_from_u64(client_stream_seed(cfg.seed, id as u64));
    build_client(id as u32, cluster, cfg, prototypes, &pick, &mut rng)
}

/// Generates the clustered dataset from *independent per-client RNG
/// streams*, rendering clients on `threads` worker threads.
///
/// [`fmnist_clustered`] threads one sequential RNG through every client,
/// which pins generation to a single core — prohibitive at the
/// 10k-client scale. This variant seeds each client from
/// `(cfg.seed, id)` instead, so clients can be rendered in any order on
/// any number of threads and the dataset is **bit-identical for every
/// `threads` value** (a regression test pins `threads == 1` against
/// `threads == 4`). The price is a different (but equally deterministic)
/// sample stream than `fmnist_clustered`, hence the separate dataset
/// name `fmnist-streamed`.
///
/// # Panics
///
/// Panics if `num_clients < 3`, `samples_per_client < 10` or
/// `threads == 0`.
pub fn fmnist_clustered_streamed(cfg: &FmnistConfig, threads: usize) -> FederatedDataset {
    assert!(cfg.num_clients >= 3, "need at least one client per cluster");
    assert!(cfg.samples_per_client >= 10, "too few samples per client");
    assert!(threads > 0, "need at least one rendering thread");
    let prototypes: Vec<Vec<f32>> = (0..NUM_CLASSES)
        .map(|c| class_prototype(c, cfg.seed))
        .collect();
    let clients = if threads == 1 {
        (0..cfg.num_clients)
            .map(|id| build_streamed_client(id, cfg, &prototypes))
            .collect()
    } else {
        // Work-stealing over an atomic client index: each worker renders
        // whichever clients it claims into its own bucket, and the
        // buckets are merged back into id order afterwards. Scheduling
        // only affects *who* renders a client, never its bytes.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut rendered: Vec<(usize, ClientDataset)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let prototypes = &prototypes;
                    scope.spawn(move || {
                        let mut bucket = Vec::new();
                        loop {
                            let id = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if id >= cfg.num_clients {
                                return bucket;
                            }
                            bucket.push((id, build_streamed_client(id, cfg, prototypes)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("rendering thread panicked"))
                .collect()
        });
        rendered.sort_by_key(|(id, _)| *id);
        rendered.into_iter().map(|(_, c)| c).collect()
    };
    FederatedDataset::new("fmnist-streamed", NUM_CLASSES, clients)
}

/// Generates the by-author dataset used for the poisoning and scalability
/// experiments (§5.3.4–5.3.5): every client holds all ten classes with its
/// own rendering style, mirroring the original author-split FEMNIST.
///
/// All clients share ground-truth cluster 0 (there is no class clustering).
///
/// # Panics
///
/// Panics if `num_clients == 0` or `samples_per_client < 10`.
pub fn fmnist_by_author(cfg: &FmnistConfig) -> FederatedDataset {
    assert!(cfg.num_clients > 0, "need at least one client");
    assert!(cfg.samples_per_client >= 10, "too few samples per client");
    let prototypes: Vec<Vec<f32>> = (0..NUM_CLASSES)
        .map(|c| class_prototype(c, cfg.seed))
        .collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut clients = Vec::with_capacity(cfg.num_clients);
    for id in 0..cfg.num_clients {
        let pick = |rng: &mut StdRng| rng.gen_range(0..NUM_CLASSES);
        clients.push(build_client(
            id as u32,
            0,
            cfg,
            &prototypes,
            &pick,
            &mut rng,
        ));
    }
    FederatedDataset::new("fmnist-by-author", NUM_CLASSES, clients)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto_distance(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }

    #[test]
    fn prototypes_are_distinct() {
        let protos: Vec<Vec<f32>> = (0..NUM_CLASSES).map(|c| class_prototype(c, 1)).collect();
        for a in 0..NUM_CLASSES {
            for b in (a + 1)..NUM_CLASSES {
                let dist = proto_distance(&protos[a], &protos[b]);
                // 3 and 8 are correlated by design (MNIST-like
                // confusability); everything else must be well separated.
                if (a, b) == (3, 8) {
                    assert!(dist > 0.3, "3 and 8 degenerated into one class ({dist})");
                } else {
                    assert!(dist > 1.0, "classes {a} and {b} too similar ({dist})");
                }
            }
        }
    }

    #[test]
    fn three_and_eight_are_the_closest_pair() {
        let protos: Vec<Vec<f32>> = (0..NUM_CLASSES).map(|c| class_prototype(c, 1)).collect();
        let target = proto_distance(&protos[3], &protos[8]);
        for a in 0..NUM_CLASSES {
            for b in (a + 1)..NUM_CLASSES {
                if (a, b) != (3, 8) {
                    assert!(
                        proto_distance(&protos[a], &protos[b]) > target,
                        "({a},{b}) closer than the designed 3/8 pair"
                    );
                }
            }
        }
    }

    #[test]
    fn prototypes_are_deterministic() {
        assert_eq!(class_prototype(3, 7), class_prototype(3, 7));
        assert_ne!(class_prototype(3, 7), class_prototype(3, 8));
    }

    #[test]
    fn every_class_has_a_cluster() {
        for class in 0..NUM_CLASSES {
            let cluster = cluster_of_class(class);
            assert!(CLASS_CLUSTERS[cluster].contains(&class));
        }
    }

    #[test]
    fn strict_clients_hold_only_their_clusters_classes() {
        let cfg = FmnistConfig {
            num_clients: 9,
            samples_per_client: 30,
            ..FmnistConfig::default()
        };
        let ds = fmnist_clustered(&cfg);
        for client in ds.clients() {
            for &label in client.train_y().iter().chain(client.test_y()) {
                assert_eq!(
                    cluster_of_class(label),
                    client.cluster(),
                    "client {} holds foreign class {label}",
                    client.id()
                );
            }
        }
    }

    #[test]
    fn clusters_are_balanced_round_robin() {
        let cfg = FmnistConfig {
            num_clients: 9,
            ..FmnistConfig::default()
        };
        let ds = fmnist_clustered(&cfg);
        for cluster in 0..3 {
            let count = ds
                .clients()
                .iter()
                .filter(|c| c.cluster() == cluster)
                .count();
            assert_eq!(count, 3);
        }
    }

    #[test]
    fn relaxed_clients_hold_some_foreign_classes() {
        let cfg = FmnistConfig {
            num_clients: 6,
            samples_per_client: 200,
            relaxation: 0.18,
            ..FmnistConfig::default()
        };
        let ds = fmnist_clustered(&cfg);
        for client in ds.clients() {
            let foreign = client
                .train_y()
                .iter()
                .filter(|&&label| cluster_of_class(label) != client.cluster())
                .count();
            let frac = foreign as f32 / client.num_train() as f32;
            assert!(
                (0.05..0.35).contains(&frac),
                "client {} foreign fraction {frac}",
                client.id()
            );
        }
    }

    #[test]
    fn by_author_clients_hold_all_classes() {
        let cfg = FmnistConfig {
            num_clients: 4,
            samples_per_client: 300,
            ..FmnistConfig::default()
        };
        let ds = fmnist_by_author(&cfg);
        for client in ds.clients() {
            let mut seen = [false; NUM_CLASSES];
            for &label in client.train_y() {
                seen[label] = true;
            }
            assert!(seen.iter().all(|&s| s), "client missing classes");
            assert_eq!(client.cluster(), 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FmnistConfig {
            num_clients: 3,
            samples_per_client: 20,
            ..FmnistConfig::default()
        };
        let a = fmnist_clustered(&cfg);
        let b = fmnist_clustered(&cfg);
        assert_eq!(a.clients()[0].train_y(), b.clients()[0].train_y());
        assert_eq!(
            a.clients()[0].train_x().as_slice(),
            b.clients()[0].train_x().as_slice()
        );
    }

    #[test]
    fn streamed_generation_is_thread_count_invariant() {
        let cfg = FmnistConfig {
            num_clients: 9,
            samples_per_client: 20,
            relaxation: 0.18,
            ..FmnistConfig::default()
        };
        let sequential = fmnist_clustered_streamed(&cfg, 1);
        for threads in [2, 4, 7] {
            let parallel = fmnist_clustered_streamed(&cfg, threads);
            for (a, b) in sequential.clients().iter().zip(parallel.clients()) {
                assert_eq!(a.id(), b.id());
                assert_eq!(a.cluster(), b.cluster());
                assert_eq!(
                    a.train_y(),
                    b.train_y(),
                    "labels differ at {threads} threads"
                );
                assert_eq!(
                    a.train_x().as_slice(),
                    b.train_x().as_slice(),
                    "pixels differ at {threads} threads"
                );
                assert_eq!(a.test_y(), b.test_y());
                assert_eq!(a.test_x().as_slice(), b.test_x().as_slice());
            }
        }
    }

    #[test]
    fn streamed_clients_keep_the_cluster_structure() {
        let cfg = FmnistConfig {
            num_clients: 9,
            samples_per_client: 30,
            ..FmnistConfig::default()
        };
        let ds = fmnist_clustered_streamed(&cfg, 3);
        assert_eq!(ds.name(), "fmnist-streamed");
        for client in ds.clients() {
            assert_eq!(client.cluster(), client.id() as usize % 3);
            for &label in client.train_y().iter().chain(client.test_y()) {
                assert_eq!(cluster_of_class(label), client.cluster());
            }
        }
    }

    #[test]
    fn streamed_clients_are_insertion_order_independent() {
        // A client's bytes depend only on (seed, id): the same id in a
        // smaller population renders identically.
        let big = fmnist_clustered_streamed(
            &FmnistConfig {
                num_clients: 9,
                samples_per_client: 20,
                ..FmnistConfig::default()
            },
            2,
        );
        let small = fmnist_clustered_streamed(
            &FmnistConfig {
                num_clients: 3,
                samples_per_client: 20,
                ..FmnistConfig::default()
            },
            2,
        );
        for id in 0..3 {
            assert_eq!(
                big.clients()[id].train_x().as_slice(),
                small.clients()[id].train_x().as_slice()
            );
        }
    }

    #[test]
    fn train_test_split_is_ninety_ten() {
        let cfg = FmnistConfig {
            num_clients: 3,
            samples_per_client: 100,
            ..FmnistConfig::default()
        };
        let ds = fmnist_clustered(&cfg);
        for client in ds.clients() {
            assert_eq!(client.num_test(), 10);
            assert_eq!(client.num_train(), 90);
        }
    }

    #[test]
    fn a_local_model_can_fit_one_client() {
        use dagfl_nn::{Dense, Model, Relu, Sequential, SgdConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let cfg = FmnistConfig {
            num_clients: 3,
            samples_per_client: 120,
            ..FmnistConfig::default()
        };
        let ds = fmnist_clustered(&cfg);
        let client = &ds.clients()[0];
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(&mut rng, IMAGE_LEN, 32)),
            Box::new(Relu::new()),
            Box::new(Dense::new(&mut rng, 32, NUM_CLASSES)),
        ]);
        let opt = SgdConfig::new(0.1);
        let mut batch_rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            for (x, y) in client.train_batches(10, 9, &mut batch_rng) {
                model.train_batch(&x, &y, &opt).unwrap();
            }
        }
        let eval = model.evaluate(client.test_x(), client.test_y()).unwrap();
        assert!(
            eval.accuracy > 0.7,
            "local model only reached {}",
            eval.accuracy
        );
    }
}
