//! The FedProx synthetic(α, β) benchmark (Li et al., 2020), reimplemented
//! faithfully.
//!
//! Each client `k` solves a 10-class logistic regression over 60 features:
//!
//! * model heterogeneity: `W_k, b_k ~ N(u_k, 1)` with `u_k ~ N(0, α)`,
//! * data heterogeneity: features `x ~ N(v_k, Σ)` with
//!   `(v_k)_j ~ N(B_k, 1)`, `B_k ~ N(0, β)` and `Σ_jj = j^{-1.2}`,
//! * labels: `y = argmax(softmax(W_k x + b_k))`.
//!
//! The paper compares the Specializing DAG against FedAvg and FedProx on
//! synthetic(0.5, 0.5) with 30 clients (Figures 10–11).

use dagfl_tensor::{argmax, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::rand_util::sample_normal;
use crate::{ClientDataset, FederatedDataset};

/// Feature dimension of the synthetic task.
pub const FEATURE_DIM: usize = 60;
/// Number of classes.
pub const NUM_CLASSES: usize = 10;

/// Configuration for the FedProx synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct FedProxConfig {
    /// Number of clients (the paper's comparison uses 30).
    pub num_clients: usize,
    /// Inter-client *model* heterogeneity (α in Li et al.).
    pub alpha: f64,
    /// Inter-client *data* heterogeneity (β in Li et al.).
    pub beta: f64,
    /// Minimum samples per client.
    pub min_samples: usize,
    /// Maximum samples per client (counts are drawn log-normally between
    /// the bounds, mimicking the power-law sizes of the original).
    pub max_samples: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for FedProxConfig {
    fn default() -> Self {
        Self {
            num_clients: 30,
            alpha: 0.5,
            beta: 0.5,
            min_samples: 50,
            max_samples: 300,
            seed: 42,
        }
    }
}

/// Generates the synthetic(α, β) dataset.
///
/// All clients share ground-truth cluster 0 — the benchmark measures
/// continuous heterogeneity rather than discrete clusters.
///
/// # Panics
///
/// Panics if `num_clients == 0` or the sample bounds are invalid.
pub fn fedprox_synthetic(cfg: &FedProxConfig) -> FederatedDataset {
    assert!(cfg.num_clients > 0, "need at least one client");
    assert!(
        cfg.min_samples >= 10 && cfg.min_samples <= cfg.max_samples,
        "invalid sample bounds"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Diagonal feature covariance Σ_jj = j^{-1.2}.
    let sigma: Vec<f64> = (1..=FEATURE_DIM).map(|j| (j as f64).powf(-1.2)).collect();
    let mut clients = Vec::with_capacity(cfg.num_clients);
    for id in 0..cfg.num_clients {
        // Per-client true model.
        let u_k = sample_normal(&mut rng, 0.0, cfg.alpha.sqrt());
        let w: Vec<f64> = (0..NUM_CLASSES * FEATURE_DIM)
            .map(|_| sample_normal(&mut rng, u_k, 1.0))
            .collect();
        let b: Vec<f64> = (0..NUM_CLASSES)
            .map(|_| sample_normal(&mut rng, u_k, 1.0))
            .collect();
        // Per-client feature distribution.
        let b_k = sample_normal(&mut rng, 0.0, cfg.beta.sqrt());
        let v: Vec<f64> = (0..FEATURE_DIM)
            .map(|_| sample_normal(&mut rng, b_k, 1.0))
            .collect();
        // Log-normal-ish client size within the bounds.
        let span = (cfg.max_samples - cfg.min_samples) as f64;
        let raw = sample_normal(&mut rng, 0.0, 1.0).exp();
        let n = cfg.min_samples + ((raw / (raw + 1.0)) * span).round() as usize;
        let mut x = Matrix::zeros(n, FEATURE_DIM);
        let mut y = Vec::with_capacity(n);
        for s in 0..n {
            let row = x.row_mut(s);
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = sample_normal(&mut rng, v[j], sigma[j].sqrt()) as f32;
            }
            // y = argmax(W x + b)
            let mut logits = [0.0f32; NUM_CLASSES];
            for (c, logit) in logits.iter_mut().enumerate() {
                let mut acc = b[c];
                for j in 0..FEATURE_DIM {
                    acc += w[c * FEATURE_DIM + j] * row[j] as f64;
                }
                *logit = acc as f32;
            }
            y.push(argmax(&logits));
        }
        clients.push(ClientDataset::from_split(id as u32, 0, x, y, 0.1, &mut rng));
    }
    FederatedDataset::new("fedprox-synthetic", NUM_CLASSES, clients)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_benchmark() {
        let ds = fedprox_synthetic(&FedProxConfig {
            num_clients: 5,
            ..FedProxConfig::default()
        });
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.feature_len(), 60);
        assert_eq!(ds.num_clients(), 5);
    }

    #[test]
    fn client_sizes_vary_within_bounds() {
        let cfg = FedProxConfig {
            num_clients: 20,
            ..FedProxConfig::default()
        };
        let ds = fedprox_synthetic(&cfg);
        let sizes: Vec<usize> = ds
            .clients()
            .iter()
            .map(|c| c.num_train() + c.num_test())
            .collect();
        for &s in &sizes {
            assert!((cfg.min_samples..=cfg.max_samples).contains(&s));
        }
        let distinct: std::collections::HashSet<usize> = sizes.iter().copied().collect();
        assert!(distinct.len() > 3, "sizes suspiciously uniform: {sizes:?}");
    }

    #[test]
    fn labels_are_valid() {
        let ds = fedprox_synthetic(&FedProxConfig {
            num_clients: 4,
            ..FedProxConfig::default()
        });
        for client in ds.clients() {
            for &label in client.train_y().iter().chain(client.test_y()) {
                assert!(label < NUM_CLASSES);
            }
        }
    }

    #[test]
    fn clients_have_heterogeneous_label_distributions() {
        let ds = fedprox_synthetic(&FedProxConfig {
            num_clients: 8,
            ..FedProxConfig::default()
        });
        // Compare modal labels across clients; with alpha = beta = 0.5 they
        // should not all coincide.
        let mut modes = Vec::new();
        for client in ds.clients() {
            let mut counts = [0usize; NUM_CLASSES];
            for &label in client.train_y() {
                counts[label] += 1;
            }
            modes.push(argmax(&counts.map(|c| c as f32)));
        }
        let distinct: std::collections::HashSet<usize> = modes.iter().copied().collect();
        assert!(distinct.len() >= 2, "all clients share mode {modes:?}");
    }

    #[test]
    fn iid_setting_is_more_homogeneous() {
        // alpha = beta = 0 removes inter-client variation of the means; the
        // per-client models still differ (unit variance around a shared 0),
        // but feature means concentrate. We check feature-mean dispersion
        // shrinks relative to the heterogeneous setting.
        let hetero = fedprox_synthetic(&FedProxConfig {
            num_clients: 10,
            alpha: 1.0,
            beta: 1.0,
            seed: 9,
            ..FedProxConfig::default()
        });
        let iid = fedprox_synthetic(&FedProxConfig {
            num_clients: 10,
            alpha: 0.001,
            beta: 0.001,
            seed: 9,
            ..FedProxConfig::default()
        });
        let dispersion = |ds: &FederatedDataset| -> f64 {
            let means: Vec<f64> = ds
                .clients()
                .iter()
                .map(|c| {
                    let x = c.train_x();
                    x.as_slice().iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64
                })
                .collect();
            let mu = means.iter().sum::<f64>() / means.len() as f64;
            means.iter().map(|m| (m - mu) * (m - mu)).sum::<f64>() / means.len() as f64
        };
        assert!(
            dispersion(&iid) < dispersion(&hetero),
            "iid dispersion not smaller"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FedProxConfig::default();
        let a = fedprox_synthetic(&cfg);
        let b = fedprox_synthetic(&cfg);
        assert_eq!(a.clients()[0].train_y(), b.clients()[0].train_y());
    }

    #[test]
    fn logistic_regression_learns_a_client() {
        use dagfl_nn::{Dense, Model, Sequential, SgdConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ds = fedprox_synthetic(&FedProxConfig {
            num_clients: 1,
            min_samples: 200,
            max_samples: 300,
            ..FedProxConfig::default()
        });
        let client = &ds.clients()[0];
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new(vec![Box::new(Dense::new(
            &mut rng,
            FEATURE_DIM,
            NUM_CLASSES,
        ))]);
        let before = model.evaluate(client.test_x(), client.test_y()).unwrap();
        let opt = SgdConfig::new(0.05);
        let mut batch_rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            for (x, y) in client.train_batches(10, 20, &mut batch_rng) {
                model.train_batch(&x, &y, &opt).unwrap();
            }
        }
        let after = model.evaluate(client.test_x(), client.test_y()).unwrap();
        assert!(
            after.accuracy > before.accuracy,
            "no improvement: {} -> {}",
            before.accuracy,
            after.accuracy
        );
    }
}
