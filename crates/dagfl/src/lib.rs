//! **dagfl** — implicit model specialization through DAG-based
//! decentralized federated learning.
//!
//! This umbrella crate re-exports the whole workspace behind one
//! dependency, mirroring the system described in Beilharz, Pfitzner,
//! Schmid et al., *"Implicit Model Specialization through DAG-based
//! Decentralized Federated Learning"* (Middleware '21):
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`tensor`] | dense `f32` matrix math |
//! | [`nn`] | layers, GRU, SGD (+ FedProx proximal term), parameter averaging |
//! | [`datasets`] | synthetic federated datasets + poisoning transforms |
//! | [`tangle`] | the DAG ledger substrate and random-walk engine |
//! | [`graphs`] | modularity, Louvain and the specialization metrics |
//! | [`dag`] | the Specializing DAG itself: biased tip selection, simulation, poisoning scenarios |
//! | [`baselines`] | FedAvg and FedProx |
//! | [`scenario`] | the declarative layer: one spec to build, validate, run and report any experiment |
//! | [`analysis`] | specialization analytics: seeded k-means, silhouette/purity/ARI, community detection |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Example
//!
//! The declarative path — a whole experiment as a value, runnable from a
//! preset name, a `scenarios/*.toml` file or the builder API:
//!
//! ```
//! use dagfl::{DatasetSpec, Scenario, ScenarioRunner};
//!
//! # fn main() -> Result<(), dagfl::scenario::ScenarioError> {
//! let scenario = Scenario::new(
//!     "demo",
//!     DatasetSpec::Fmnist {
//!         clients: 6,
//!         samples: 30,
//!         relaxation: 0.0,
//!         seed: 42,
//!     },
//! )
//! .rounds(2)
//! .clients_per_round(3)
//! .local_batches(2);
//! let report = ScenarioRunner::new(scenario)?.run()?;
//! println!("pureness: {:.2}", report.specialization.approval_pureness);
//! # Ok(())
//! # }
//! ```
//!
//! The imperative substrate stays available for custom harnesses:
//!
//! ```
//! use dagfl::{DagConfig, ModelSpec, Simulation};
//! use dagfl::datasets::{fmnist_clustered, FmnistConfig};
//!
//! # fn main() -> Result<(), dagfl::dag::CoreError> {
//! let dataset = fmnist_clustered(&FmnistConfig {
//!     num_clients: 6,
//!     samples_per_client: 30,
//!     ..FmnistConfig::default()
//! });
//! let config = DagConfig {
//!     rounds: 2,
//!     clients_per_round: 3,
//!     local_batches: 2,
//!     ..DagConfig::default()
//! };
//! let factory = ModelSpec::Mlp { hidden: vec![16] }
//!     .build_factory(dataset.feature_len(), dataset.num_classes());
//! let mut sim = Simulation::new(config, dataset, factory);
//! sim.run()?;
//! println!("pureness: {:.2}", sim.approval_pureness());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use dagfl_analysis as analysis;
pub use dagfl_baselines as baselines;
pub use dagfl_core as dag;
pub use dagfl_datasets as datasets;
pub use dagfl_graphs as graphs;
pub use dagfl_nn as nn;
pub use dagfl_scenario as scenario;
pub use dagfl_tangle as tangle;
pub use dagfl_tensor as tensor;

pub use dagfl_analysis::{
    adjusted_rand_index, analyze, auto_k, cluster_purity, kmeans, label_propagation,
    silhouette_score, AnalysisConfig, AnalysisSnapshot, AnalysisSource, KMeansConfig, KSelection,
};
pub use dagfl_baselines::{FedConfig, FederatedServer};
pub use dagfl_core::{
    run_peer, AsyncConfig, AsyncMetrics, AsyncSimulation, ComputeProfile, CrashWindow, DagConfig,
    DelayModel, EvalCounters, ExecutionMode, FaultPlan, FaultyTransport, GossipMessage,
    Hyperparameters, LoopbackTransport, ModelEvaluator, Normalization, PartitionWindow, PeerConfig,
    PeerReport, PoisoningConfig, PoisoningScenario, PublishGate, Replica, Simulation,
    StaleTipPolicy, TangleView, TcpTransport, TipSelector, Tracker, Transport, TxMessage,
};
pub use dagfl_nn::TrainScratch;
pub use dagfl_scenario::{
    AnalysisSpec, AttackSpec, DatasetSpec, ExecutionSpec, FaultSpec, ModelSpec, RunReport,
    Scenario, ScenarioRunner, SweepReport, SweepRunner, SweepSpec, TransportSpec,
};
pub use dagfl_tensor::{MatmulBackend, MatmulBackendKind, NaiveBackend, TiledBackend};

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_reachable() {
        let _ = crate::DagConfig::default();
        let _ = crate::FedConfig::default();
        let _ = crate::TipSelector::default();
        let _ = crate::Normalization::default();
        let _ = crate::KMeansConfig::default();
        let _ = crate::AnalysisSpec::default();
        assert_eq!(crate::AnalysisSource::Both.as_str(), "both");
        assert_eq!(crate::TransportSpec::default().mode(), "loopback");
        assert_eq!(crate::MatmulBackendKind::default().name(), "tiled");
    }
}
