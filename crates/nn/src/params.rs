//! Flat parameter-vector helpers: averaging (the heart of federated
//! learning) and a dependency-free binary codec for snapshots.

use crate::NnError;

/// The wide and narrow element-tile widths of the chunked accumulator.
/// 32 `f32` lanes fill four AVX2 registers, matching the matmul kernels'
/// register-tiling; the 8-wide tile shortens the tail.
const AVG_TILE_WIDE: usize = 32;
const AVG_TILE_NARROW: usize = 8;

/// Element-wise mean of several parameter vectors.
///
/// This is the aggregation primitive of both FedAvg (over all client
/// updates) and the Specializing DAG (over the two approved tip models).
///
/// # Panics
///
/// Panics if `vectors` is empty or the vectors have different lengths.
///
/// # Example
///
/// ```
/// let a = vec![0.0, 2.0];
/// let b = vec![2.0, 4.0];
/// assert_eq!(dagfl_nn::average_parameters(&[&a, &b]), vec![1.0, 3.0]);
/// ```
pub fn average_parameters(vectors: &[&[f32]]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "cannot average zero parameter vectors");
    let len = vectors[0].len();
    for v in vectors {
        assert_eq!(v.len(), len, "parameter vectors differ in length");
    }
    let scale = 1.0 / vectors.len() as f32;
    let mut out = vec![0.0f32; len];
    // Chunked accumulation on the tensor kernels' tile pattern: a
    // fixed-width accumulator array stays in vector registers across the
    // whole `vectors` loop, so the compiler emits one fused
    // multiply-accumulate per lane instead of a scalar read-modify-write
    // of `out` per element. Bit-identical to the scalar loop: each
    // output element still accumulates `v[e] * scale` over the vectors
    // in exactly the same order, only across-element grouping changes —
    // and f32 addition order *per element* is what determines the bits.
    let mut j0 = 0;
    while j0 + AVG_TILE_WIDE <= len {
        average_tile::<AVG_TILE_WIDE>(vectors, scale, j0, &mut out);
        j0 += AVG_TILE_WIDE;
    }
    while j0 + AVG_TILE_NARROW <= len {
        average_tile::<AVG_TILE_NARROW>(vectors, scale, j0, &mut out);
        j0 += AVG_TILE_NARROW;
    }
    for j in j0..len {
        let mut acc = 0.0f32;
        for v in vectors {
            acc += v[j] * scale;
        }
        out[j] = acc;
    }
    out
}

/// One `W`-wide element tile of [`average_parameters`]: `W` accumulators
/// held in registers over the full vector loop.
#[inline]
fn average_tile<const W: usize>(vectors: &[&[f32]], scale: f32, j0: usize, out: &mut [f32]) {
    let mut acc = [0.0f32; W];
    for v in vectors {
        let tile = &v[j0..j0 + W];
        for (a, &x) in acc.iter_mut().zip(tile) {
            *a += x * scale;
        }
    }
    out[j0..j0 + W].copy_from_slice(&acc);
}

/// Weighted element-wise mean of parameter vectors.
///
/// FedAvg weights client updates by their sample counts; weights are
/// normalised internally.
///
/// # Panics
///
/// Panics if inputs are empty, lengths mismatch, or all weights are zero.
pub fn weighted_average_parameters(vectors: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "cannot average zero parameter vectors");
    assert_eq!(
        vectors.len(),
        weights.len(),
        "one weight per parameter vector required"
    );
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let len = vectors[0].len();
    let mut out = vec![0.0f32; len];
    for (v, &w) in vectors.iter().zip(weights) {
        assert_eq!(v.len(), len, "parameter vectors differ in length");
        let scale = w / total;
        for (o, &x) in out.iter_mut().zip(*v) {
            *o += x * scale;
        }
    }
    out
}

const MAGIC: &[u8; 4] = b"DFLP";
const VERSION: u8 = 1;

/// Encodes a parameter vector into a self-describing little-endian binary
/// blob (`DFLP` magic, version byte, length, payload).
pub fn encode_parameters(params: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 8 + params.len() * 4);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for p in params {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// Decodes a blob produced by [`encode_parameters`].
///
/// # Errors
///
/// Returns [`NnError::Codec`] for truncated data, a wrong magic number or an
/// unsupported version.
pub fn decode_parameters(bytes: &[u8]) -> Result<Vec<f32>, NnError> {
    if bytes.len() < 13 {
        return Err(NnError::Codec(format!(
            "blob too short: {} bytes",
            bytes.len()
        )));
    }
    if &bytes[..4] != MAGIC {
        return Err(NnError::Codec("bad magic number".into()));
    }
    if bytes[4] != VERSION {
        return Err(NnError::Codec(format!("unsupported version {}", bytes[4])));
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[5..13]);
    let len = u64::from_le_bytes(len_bytes) as usize;
    let payload = &bytes[13..];
    if payload.len() != len * 4 {
        return Err(NnError::Codec(format!(
            "expected {} payload bytes, got {}",
            len * 4,
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(len);
    for chunk in payload.chunks_exact(4) {
        let mut b = [0u8; 4];
        b.copy_from_slice(chunk);
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_identical_vectors_is_identity() {
        let v = vec![1.0, -2.0, 3.5];
        let avg = average_parameters(&[&v, &v, &v]);
        for (a, b) in avg.iter().zip(&v) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn average_known_values() {
        let a = vec![0.0, 10.0];
        let b = vec![4.0, 20.0];
        assert_eq!(average_parameters(&[&a, &b]), vec![2.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "zero parameter vectors")]
    fn average_empty_panics() {
        average_parameters(&[]);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn average_mismatched_lengths_panics() {
        let a = vec![1.0];
        let b = vec![1.0, 2.0];
        average_parameters(&[&a, &b]);
    }

    #[test]
    fn tiled_average_is_bit_identical_to_the_scalar_oracle() {
        // The scalar reference the tiled path must reproduce bit for
        // bit, across lengths hitting the wide tile, the narrow tile and
        // the scalar tail in every combination.
        fn oracle(vectors: &[&[f32]]) -> Vec<f32> {
            let len = vectors[0].len();
            let scale = 1.0 / vectors.len() as f32;
            let mut out = vec![0.0f32; len];
            for v in vectors {
                for (o, &x) in out.iter_mut().zip(*v) {
                    *o += x * scale;
                }
            }
            out
        }
        for &len in &[1usize, 7, 8, 9, 31, 32, 33, 40, 64, 71, 100] {
            for &count in &[1usize, 2, 3, 7] {
                // Deterministic, sign-varying, non-dyadic values so
                // reordered additions would actually change bits.
                let vectors: Vec<Vec<f32>> = (0..count)
                    .map(|v| {
                        (0..len)
                            .map(|e| ((v * 31 + e * 17) as f32 * 0.3057).sin() * 1.7)
                            .collect()
                    })
                    .collect();
                let refs: Vec<&[f32]> = vectors.iter().map(Vec::as_slice).collect();
                let tiled = average_parameters(&refs);
                let scalar = oracle(&refs);
                let tiled_bits: Vec<u32> = tiled.iter().map(|x| x.to_bits()).collect();
                let scalar_bits: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
                assert_eq!(tiled_bits, scalar_bits, "len {len} count {count}");
            }
        }
    }

    #[test]
    fn weighted_average_reduces_to_plain_for_equal_weights() {
        let a = vec![1.0, 3.0];
        let b = vec![3.0, 5.0];
        let plain = average_parameters(&[&a, &b]);
        let weighted = weighted_average_parameters(&[&a, &b], &[2.0, 2.0]);
        for (p, w) in plain.iter().zip(&weighted) {
            assert!((p - w).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_average_respects_weights() {
        let a = vec![0.0];
        let b = vec![10.0];
        let avg = weighted_average_parameters(&[&a, &b], &[3.0, 1.0]);
        assert!((avg[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn weighted_average_zero_weights_panics() {
        let a = vec![0.0];
        weighted_average_parameters(&[&a], &[0.0]);
    }

    #[test]
    fn codec_roundtrip() {
        let params = vec![0.0, -1.5, 3.25, f32::MIN_POSITIVE, 1e30];
        let bytes = encode_parameters(&params);
        assert_eq!(decode_parameters(&bytes).unwrap(), params);
    }

    #[test]
    fn codec_roundtrip_empty() {
        let bytes = encode_parameters(&[]);
        assert_eq!(decode_parameters(&bytes).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn codec_rejects_short_blob() {
        assert!(matches!(
            decode_parameters(&[1, 2, 3]),
            Err(NnError::Codec(_))
        ));
    }

    #[test]
    fn codec_rejects_bad_magic() {
        let mut bytes = encode_parameters(&[1.0]);
        bytes[0] = b'X';
        assert!(matches!(decode_parameters(&bytes), Err(NnError::Codec(_))));
    }

    #[test]
    fn codec_rejects_bad_version() {
        let mut bytes = encode_parameters(&[1.0]);
        bytes[4] = 99;
        assert!(matches!(decode_parameters(&bytes), Err(NnError::Codec(_))));
    }

    #[test]
    fn codec_rejects_truncated_payload() {
        let mut bytes = encode_parameters(&[1.0, 2.0]);
        bytes.truncate(bytes.len() - 2);
        assert!(matches!(decode_parameters(&bytes), Err(NnError::Codec(_))));
    }
}
