//! A minimal, self-contained neural-network library for federated-learning
//! simulation.
//!
//! The paper's prototype runs TensorFlow models from the LEAF benchmark; this
//! crate provides an equivalent substrate implemented from scratch on top of
//! [`dagfl-tensor`]:
//!
//! * a [`Layer`] trait with [`Dense`], [`Relu`]/[`Tanh`]/[`Sigmoid`]
//!   activations, [`Conv2d`] and [`MaxPool2d`] (the LEAF CNN building
//!   blocks),
//! * [`Sequential`] feed-forward models and a [`CharRnn`]
//!   (Embedding → GRU → Dense) next-character model with full
//!   backpropagation through time,
//! * the object-safe [`Model`] trait that every federated-learning algorithm
//!   in the workspace programs against: flat parameter vectors (for model
//!   averaging on the DAG), mini-batch SGD training (with the FedProx
//!   proximal term), and evaluation,
//! * parameter-vector helpers ([`average_parameters`]) and a dependency-free
//!   binary codec ([`encode_parameters`]/[`decode_parameters`]) for
//!   snapshotting model weights,
//! * a swappable compute seam: every matrix product in the training
//!   pipeline runs on a [`MatmulBackendKind`]-selected backend (naive
//!   oracle or register-tiled, bit-identical), and steady-state training
//!   steps reuse [`TrainScratch`] buffers instead of allocating.
//!
//! All gradients are verified against numerical differentiation in the test
//! suite (see [`gradcheck`]).
//!
//! # Example
//!
//! ```
//! use dagfl_nn::{Dense, Model, Relu, Sequential, SgdConfig};
//! use dagfl_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), dagfl_nn::NnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Sequential::new(vec![
//!     Box::new(Dense::new(&mut rng, 4, 16)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(&mut rng, 16, 3)),
//! ]);
//! let x = Matrix::from_fn(8, 4, |r, c| ((r + c) % 3) as f32);
//! let y = vec![0, 1, 2, 0, 1, 2, 0, 1];
//! let loss = model.train_batch(&x, &y, &SgdConfig::new(0.1))?;
//! assert!(loss.is_finite());
//! # Ok(())
//! # }
//! ```
//!
//! [`dagfl-tensor`]: ../dagfl_tensor/index.html

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod activations;
mod conv;
mod dense;
mod dropout;
mod embedding;
mod error;
mod eval;
pub mod gradcheck;
mod model;
mod optimizer;
mod params;
mod rnn;
mod sequential;
mod train;

pub use activations::{Relu, Sigmoid, Tanh};
pub use conv::{Conv2d, ImageShape, MaxPool2d};
pub use dense::Dense;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use error::NnError;
pub use eval::EvalScratch;
pub use model::{Evaluation, Model};
pub use optimizer::SgdConfig;
pub use params::{
    average_parameters, decode_parameters, encode_parameters, weighted_average_parameters,
};
pub use rnn::{CharRnn, GruCell};
pub use sequential::{Layer, Sequential};
pub use train::TrainScratch;

pub use dagfl_tensor::MatmulBackendKind;
