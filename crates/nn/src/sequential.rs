//! The [`Layer`] trait and [`Sequential`] feed-forward models.

use dagfl_tensor::{argmax, softmax_cross_entropy, softmax_in_place, Matrix};

use crate::{Evaluation, Model, NnError, SgdConfig};

/// A differentiable layer in a [`Sequential`] model.
///
/// Layers are stateful: [`Layer::forward`] caches whatever the subsequent
/// [`Layer::backward`] call needs, while [`Layer::forward_inference`] runs
/// without mutating the layer (used for evaluation and prediction).
///
/// Parameterised layers expose their parameters and gradients through
/// [`Layer::visit_parameters`] / [`Layer::apply_update`]; stateless layers
/// use the default no-op implementations.
pub trait Layer: Send {
    /// A short human-readable layer name (for debugging output).
    fn name(&self) -> &'static str;

    /// Training-mode forward pass; caches activations for the backward pass.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has the wrong width for this layer.
    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError>;

    /// Inference-mode forward pass; does not mutate the layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has the wrong width for this layer.
    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError>;

    /// Backward pass: consumes the gradient w.r.t. this layer's output and
    /// returns the gradient w.r.t. its input, storing parameter gradients
    /// internally.
    ///
    /// # Errors
    ///
    /// Returns an error if `grad_output` does not match the shape produced
    /// by the preceding [`Layer::forward`] call.
    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError>;

    /// Calls `visitor` once per parameter matrix, in a stable order.
    fn visit_parameters(&self, visitor: &mut dyn FnMut(&Matrix)) {
        let _ = visitor;
    }

    /// Calls `update` once per `(parameter, gradient)` pair, in the same
    /// stable order as [`Layer::visit_parameters`].
    fn apply_update(&mut self, update: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        let _ = update;
    }

    /// Overwrites parameters by reading `source` once per parameter matrix.
    fn load_parameters(&mut self, source: &mut dyn FnMut(&mut Matrix)) {
        let _ = source;
    }

    /// Total number of scalar parameters in this layer.
    fn num_parameters(&self) -> usize {
        let mut n = 0;
        self.visit_parameters(&mut |m| n += m.len());
        n
    }

    /// Clones the layer into a new box.
    fn boxed_clone(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// A feed-forward stack of [`Layer`]s trained with softmax cross-entropy.
///
/// The final layer must produce class logits; [`Sequential`] owns the fused
/// softmax + cross-entropy loss so that layers never need to special-case
/// the output activation.
///
/// # Example
///
/// ```
/// use dagfl_nn::{Dense, Model, Relu, Sequential};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let model = Sequential::new(vec![
///     Box::new(Dense::new(&mut rng, 8, 4)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(&mut rng, 4, 2)),
/// ]);
/// assert_eq!(model.num_parameters(), 8 * 4 + 4 + 4 * 2 + 2);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a model from an ordered stack of layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "a Sequential model needs layers");
        Self { layers }
    }

    /// The layers of the model, in order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Runs the inference forward pass and returns the raw logits.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong width for the first layer.
    pub fn logits(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut activ = None;
        for layer in &self.layers {
            let input = activ.as_ref().unwrap_or(x);
            activ = Some(layer.forward_inference(input)?);
        }
        Ok(activ.expect("at least one layer"))
    }

    /// Runs the inference forward pass and returns class probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong width for the first layer.
    pub fn probabilities(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut logits = self.logits(x)?;
        softmax_in_place(&mut logits);
        Ok(logits)
    }

    /// Training forward + backward, leaving gradients stored in the layers.
    /// Returns the batch loss.
    fn forward_backward(&mut self, x: &Matrix, y: &[usize]) -> Result<f32, NnError> {
        if x.rows() != y.len() {
            return Err(NnError::BatchMismatch {
                inputs: x.rows(),
                labels: y.len(),
            });
        }
        let mut activ = None;
        for layer in &mut self.layers {
            let input = activ.as_ref().unwrap_or(x);
            activ = Some(layer.forward(input)?);
        }
        let logits = activ.expect("at least one layer");
        let classes = logits.cols();
        if let Some(&bad) = y.iter().find(|&&label| label >= classes) {
            return Err(NnError::LabelOutOfRange {
                label: bad,
                classes,
            });
        }
        let (mut grad, loss) = softmax_cross_entropy(&logits, y);
        // d(mean CE)/d(logits) = (p - onehot) / batch
        let scale = 1.0 / y.len().max(1) as f32;
        for (r, &label) in y.iter().enumerate() {
            grad[(r, label)] -= 1.0;
        }
        grad.scale_assign(scale);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(loss)
    }

    /// Applies `w ← w − lr (g + prox)` across all layers, walking the flat
    /// parameter offset for the proximal reference lookup.
    fn apply_sgd(&mut self, opt: &SgdConfig) {
        let lr = opt.learning_rate();
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.apply_update(&mut |param, grad| {
                debug_assert_eq!(param.shape(), grad.shape());
                let p = param.as_mut_slice();
                let g = grad.as_slice();
                for (i, (w, &gv)) in p.iter_mut().zip(g).enumerate() {
                    if !opt.is_trainable(offset + i) {
                        continue;
                    }
                    let pull = opt.regularization_pull(offset + i, *w);
                    *w -= lr * (gv + pull);
                }
                offset += g.len();
            });
        }
    }

    fn collect_gradients(&mut self) -> Vec<f32> {
        let mut grads = Vec::with_capacity(self.num_parameters());
        for layer in &mut self.layers {
            layer.apply_update(&mut |_, grad| grads.extend_from_slice(grad.as_slice()));
        }
        grads
    }
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self {
            layers: self.layers.clone(),
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("num_parameters", &self.num_parameters())
            .finish()
    }
}

impl Model for Sequential {
    fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.num_parameters()).sum()
    }

    fn parameters(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for layer in &self.layers {
            layer.visit_parameters(&mut |m| out.extend_from_slice(m.as_slice()));
        }
        out
    }

    fn set_parameters(&mut self, params: &[f32]) -> Result<(), NnError> {
        let expected = self.num_parameters();
        if params.len() != expected {
            return Err(NnError::ParameterCount {
                expected,
                actual: params.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.load_parameters(&mut |m| {
                let len = m.len();
                m.as_mut_slice()
                    .copy_from_slice(&params[offset..offset + len]);
                offset += len;
            });
        }
        debug_assert_eq!(offset, expected);
        Ok(())
    }

    fn train_batch(&mut self, x: &Matrix, y: &[usize], opt: &SgdConfig) -> Result<f32, NnError> {
        let loss = self.forward_backward(x, y)?;
        self.apply_sgd(opt);
        Ok(loss)
    }

    fn loss_and_gradient(&mut self, x: &Matrix, y: &[usize]) -> Result<(f32, Vec<f32>), NnError> {
        let loss = self.forward_backward(x, y)?;
        Ok((loss, self.collect_gradients()))
    }

    fn evaluate(&self, x: &Matrix, y: &[usize]) -> Result<Evaluation, NnError> {
        if x.rows() != y.len() {
            return Err(NnError::BatchMismatch {
                inputs: x.rows(),
                labels: y.len(),
            });
        }
        if y.is_empty() {
            return Ok(Evaluation::default());
        }
        let logits = self.logits(x)?;
        let (probs, loss) = softmax_cross_entropy(&logits, y);
        let mut correct = 0;
        for (r, &label) in y.iter().enumerate() {
            if argmax(probs.row(r)) == label {
                correct += 1;
            }
        }
        Ok(Evaluation {
            loss,
            accuracy: correct as f32 / y.len() as f32,
            correct,
            total: y.len(),
        })
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        let logits = self.logits(x)?;
        Ok((0..logits.rows()).map(|r| argmax(logits.row(r))).collect())
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(&mut rng, 4, 8)),
            Box::new(Relu::new()),
            Box::new(Dense::new(&mut rng, 8, 3)),
        ])
    }

    fn toy_batch() -> (Matrix, Vec<usize>) {
        // Three separable clusters on the 4-dim simplex corners.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.9, 0.1, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.9, 0.1, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.1, 0.0, 0.9],
        ])
        .unwrap();
        (x, vec![0, 0, 1, 1, 2, 2])
    }

    #[test]
    fn parameter_roundtrip_preserves_model() {
        let model = tiny_model(3);
        let params = model.parameters();
        assert_eq!(params.len(), model.num_parameters());
        let mut clone = tiny_model(99);
        clone.set_parameters(&params).unwrap();
        assert_eq!(clone.parameters(), params);
    }

    #[test]
    fn set_parameters_rejects_wrong_length() {
        let mut model = tiny_model(3);
        let err = model.set_parameters(&[0.0; 3]).unwrap_err();
        assert!(matches!(err, NnError::ParameterCount { .. }));
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut model = tiny_model(7);
        let (x, y) = toy_batch();
        let initial = model.evaluate(&x, &y).unwrap().loss;
        let opt = SgdConfig::new(0.5);
        for _ in 0..200 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        let final_eval = model.evaluate(&x, &y).unwrap();
        assert!(
            final_eval.loss < initial * 0.5,
            "loss did not drop: {initial} -> {}",
            final_eval.loss
        );
        assert!(final_eval.accuracy > 0.99);
    }

    #[test]
    fn predictions_match_evaluation_accuracy() {
        let mut model = tiny_model(7);
        let (x, y) = toy_batch();
        let opt = SgdConfig::new(0.5);
        for _ in 0..100 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        let eval = model.evaluate(&x, &y).unwrap();
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, l)| p == l).count();
        assert_eq!(correct, eval.correct);
    }

    #[test]
    fn train_batch_rejects_label_out_of_range() {
        let mut model = tiny_model(1);
        let x = Matrix::zeros(1, 4);
        let err = model
            .train_batch(&x, &[5], &SgdConfig::new(0.1))
            .unwrap_err();
        assert!(matches!(err, NnError::LabelOutOfRange { .. }));
    }

    #[test]
    fn train_batch_rejects_batch_mismatch() {
        let mut model = tiny_model(1);
        let x = Matrix::zeros(2, 4);
        let err = model
            .train_batch(&x, &[0], &SgdConfig::new(0.1))
            .unwrap_err();
        assert!(matches!(err, NnError::BatchMismatch { .. }));
    }

    #[test]
    fn evaluate_empty_batch_is_default() {
        let model = tiny_model(1);
        let eval = model.evaluate(&Matrix::zeros(0, 4), &[]).unwrap();
        assert_eq!(eval, Evaluation::default());
    }

    #[test]
    fn proximal_term_pulls_towards_reference() {
        use std::sync::Arc;
        let (x, y) = toy_batch();
        // Train two copies from the same start; the proximal one must stay
        // closer to the frozen reference.
        let base = tiny_model(11);
        let reference = Arc::new(base.parameters());

        let mut plain = base.clone();
        let mut proxed = base.clone();
        // Keep lr * mu < 1 so the proximal pull is a stable contraction.
        let opt_plain = SgdConfig::new(0.5);
        let opt_prox = SgdConfig::new(0.5).with_proximal(1.0, Arc::clone(&reference));
        for _ in 0..50 {
            plain.train_batch(&x, &y, &opt_plain).unwrap();
            proxed.train_batch(&x, &y, &opt_prox).unwrap();
        }
        let dist = |m: &Sequential| -> f32 {
            m.parameters()
                .iter()
                .zip(reference.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        assert!(
            dist(&proxed) < dist(&plain),
            "proximal model strayed further ({}) than plain ({})",
            dist(&proxed),
            dist(&plain)
        );
    }

    #[test]
    fn frozen_prefix_pins_leading_layer() {
        let mut model = tiny_model(21);
        let (x, y) = toy_batch();
        // First Dense layer holds 4*8 + 8 = 40 parameters.
        let frozen = 40;
        let before = model.parameters();
        let opt = SgdConfig::new(0.5).with_frozen_prefix(frozen);
        for _ in 0..20 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        let after = model.parameters();
        assert_eq!(&before[..frozen], &after[..frozen], "frozen layer moved");
        assert_ne!(&before[frozen..], &after[frozen..], "free layers stuck");
    }

    #[test]
    fn fully_frozen_model_never_changes() {
        let mut model = tiny_model(22);
        let (x, y) = toy_batch();
        let before = model.parameters();
        let opt = SgdConfig::new(0.5).with_frozen_prefix(model.num_parameters());
        model.train_batch(&x, &y, &opt).unwrap();
        assert_eq!(model.parameters(), before);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = tiny_model(5);
        let b = a.clone();
        let (x, y) = toy_batch();
        a.train_batch(&x, &y, &SgdConfig::new(0.5)).unwrap();
        assert_ne!(a.parameters(), b.parameters());
    }

    #[test]
    fn probabilities_rows_sum_to_one() {
        let model = tiny_model(5);
        let (x, _) = toy_batch();
        let probs = model.probabilities(&x).unwrap();
        for r in 0..probs.rows() {
            let sum: f32 = probs.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn debug_lists_layer_names() {
        let model = tiny_model(5);
        let dbg = format!("{model:?}");
        assert!(dbg.contains("Dense"));
        assert!(dbg.contains("Relu"));
    }
}
