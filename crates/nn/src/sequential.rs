//! The [`Layer`] trait and [`Sequential`] feed-forward models.

use dagfl_tensor::{
    argmax, cross_entropy_from_probs, fused_softmax_cross_entropy, softmax_cross_entropy,
    softmax_in_place, MatmulBackendKind, Matrix,
};

use crate::{EvalScratch, Evaluation, Model, NnError, SgdConfig, TrainScratch};

/// A differentiable layer in a [`Sequential`] model.
///
/// Layers are stateful: [`Layer::forward`] caches whatever the subsequent
/// [`Layer::backward`] call needs, while [`Layer::forward_inference`] runs
/// without mutating the layer (used for evaluation and prediction).
///
/// Parameterised layers expose their parameters and gradients through
/// [`Layer::visit_parameters`] / [`Layer::apply_update`]; stateless layers
/// use the default no-op implementations.
pub trait Layer: Send {
    /// A short human-readable layer name (for debugging output).
    fn name(&self) -> &'static str;

    /// Training-mode forward pass; caches activations for the backward pass.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has the wrong width for this layer.
    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError>;

    /// Inference-mode forward pass; does not mutate the layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has the wrong width for this layer.
    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError>;

    /// Inference-mode forward pass into a reusable output buffer.
    ///
    /// `out` is reshaped (reusing its allocation) and fully overwritten;
    /// `input` and `out` must be distinct matrices. The default
    /// implementation falls back to the allocating
    /// [`Layer::forward_inference`]; hot-path layers override it with an
    /// allocation-free kernel.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has the wrong width for this layer.
    fn forward_inference_into(&self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        *out = self.forward_inference(input)?;
        Ok(())
    }

    /// Inference-mode forward pass reading this layer's parameters from
    /// the front of `params` (the layer's slice of a flat parameter
    /// vector, in [`Layer::visit_parameters`] order) instead of its own
    /// weights, consuming them from the slice.
    ///
    /// This is the zero-copy candidate-evaluation path: scoring a
    /// candidate model does not have to copy its parameters into the
    /// scratch model first. Returns `None` when the layer has no such
    /// fast path (the caller falls back to `set_parameters` +
    /// [`Layer::forward_inference_into`]); layers *with* parameters that
    /// implement it must produce bit-identical results to loading the
    /// same values via `load_parameters`.
    fn forward_inference_params(
        &self,
        params: &mut &[f32],
        input: &Matrix,
        out: &mut Matrix,
    ) -> Option<Result<(), NnError>> {
        if self.num_parameters() == 0 {
            // Parameterless layers (activations, pooling, inference-mode
            // dropout) consume nothing and forward as usual.
            let _ = params;
            Some(self.forward_inference_into(input, out))
        } else {
            None
        }
    }

    /// Training-mode forward pass into a reusable output buffer.
    ///
    /// `out` is reshaped (reusing its allocation) and fully overwritten;
    /// `input` and `out` must be distinct matrices. The default
    /// implementation falls back to the allocating [`Layer::forward`];
    /// training-path layers override it with an allocation-free kernel
    /// so a steady-state training step (see
    /// [`TrainScratch`](crate::TrainScratch)) touches the heap zero
    /// times.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has the wrong width for this layer.
    fn forward_train_into(&mut self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        *out = self.forward(input)?;
        Ok(())
    }

    /// Backward pass: consumes the gradient w.r.t. this layer's output and
    /// returns the gradient w.r.t. its input, storing parameter gradients
    /// internally.
    ///
    /// # Errors
    ///
    /// Returns an error if `grad_output` does not match the shape produced
    /// by the preceding [`Layer::forward`] call.
    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError>;

    /// Backward pass into a reusable grad-input buffer (the
    /// buffer-reusing counterpart of [`Layer::backward`], paired with
    /// [`Layer::forward_train_into`]).
    ///
    /// `grad_output` and `grad_input` must be distinct matrices. The
    /// default implementation falls back to the allocating
    /// [`Layer::backward`].
    ///
    /// # Errors
    ///
    /// Returns an error if `grad_output` does not match the shape
    /// produced by the preceding forward call.
    fn backward_into(
        &mut self,
        grad_output: &Matrix,
        grad_input: &mut Matrix,
    ) -> Result<(), NnError> {
        *grad_input = self.backward(grad_output)?;
        Ok(())
    }

    /// Selects the [`MatmulBackend`](dagfl_tensor::MatmulBackend) this
    /// layer's matrix products run on. A no-op for layers without
    /// matmuls (activations, pooling, dropout); all backends are
    /// bit-identical, so switching never changes results.
    fn set_backend(&mut self, backend: MatmulBackendKind) {
        let _ = backend;
    }

    /// Calls `visitor` once per parameter matrix, in a stable order.
    fn visit_parameters(&self, visitor: &mut dyn FnMut(&Matrix)) {
        let _ = visitor;
    }

    /// Calls `update` once per `(parameter, gradient)` pair, in the same
    /// stable order as [`Layer::visit_parameters`].
    fn apply_update(&mut self, update: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        let _ = update;
    }

    /// Overwrites parameters by reading `source` once per parameter matrix.
    fn load_parameters(&mut self, source: &mut dyn FnMut(&mut Matrix)) {
        let _ = source;
    }

    /// Total number of scalar parameters in this layer.
    fn num_parameters(&self) -> usize {
        let mut n = 0;
        self.visit_parameters(&mut |m| n += m.len());
        n
    }

    /// Clones the layer into a new box.
    fn boxed_clone(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// A feed-forward stack of [`Layer`]s trained with softmax cross-entropy.
///
/// The final layer must produce class logits; [`Sequential`] owns the fused
/// softmax + cross-entropy loss so that layers never need to special-case
/// the output activation.
///
/// # Example
///
/// ```
/// use dagfl_nn::{Dense, Model, Relu, Sequential};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let model = Sequential::new(vec![
///     Box::new(Dense::new(&mut rng, 8, 4)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(&mut rng, 4, 2)),
/// ]);
/// assert_eq!(model.num_parameters(), 8 * 4 + 4 + 4 * 2 + 2);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    scratch: TrainScratch,
}

impl Sequential {
    /// Creates a model from an ordered stack of layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "a Sequential model needs layers");
        Self {
            layers,
            scratch: TrainScratch::new(),
        }
    }

    /// The layers of the model, in order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Runs the inference forward pass and returns the raw logits.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong width for the first layer.
    pub fn logits(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut activ = None;
        for layer in &self.layers {
            let input = activ.as_ref().unwrap_or(x);
            activ = Some(layer.forward_inference(input)?);
        }
        Ok(activ.expect("at least one layer"))
    }

    /// Runs the inference forward pass and returns class probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong width for the first layer.
    pub fn probabilities(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut logits = self.logits(x)?;
        softmax_in_place(&mut logits);
        Ok(logits)
    }

    /// Training forward + backward, leaving gradients stored in the layers.
    /// Returns the batch loss.
    ///
    /// Activations ping-pong between the two [`TrainScratch`] activation
    /// buffers and layer gradients between its two gradient buffers, so a
    /// steady-state step allocates nothing: the loss gradient is formed in
    /// place on the logits buffer (softmax, then subtract the one-hot and
    /// scale by `1/batch`) instead of going through the allocating
    /// [`softmax_cross_entropy`] — same operations, same order, bitwise
    /// identical loss and gradients.
    fn forward_backward(&mut self, x: &Matrix, y: &[usize]) -> Result<f32, NnError> {
        if x.rows() != y.len() {
            return Err(NnError::BatchMismatch {
                inputs: x.rows(),
                labels: y.len(),
            });
        }
        let Self { layers, scratch } = self;
        let (mut cur, mut next, mut gcur, mut gnext) = scratch.parts();
        layers[0].forward_train_into(x, cur)?;
        for layer in &mut layers[1..] {
            layer.forward_train_into(cur, next)?;
            std::mem::swap(&mut cur, &mut next);
        }
        let classes = cur.cols();
        if let Some(&bad) = y.iter().find(|&&label| label >= classes) {
            return Err(NnError::LabelOutOfRange {
                label: bad,
                classes,
            });
        }
        // d(mean CE)/d(logits) = (p - onehot) / batch
        gcur.copy_from(cur);
        softmax_in_place(gcur);
        let loss = cross_entropy_from_probs(gcur, y);
        let scale = 1.0 / y.len().max(1) as f32;
        for (r, &label) in y.iter().enumerate() {
            gcur[(r, label)] -= 1.0;
        }
        gcur.scale_assign(scale);
        for layer in layers.iter_mut().rev() {
            layer.backward_into(gcur, gnext)?;
            std::mem::swap(&mut gcur, &mut gnext);
        }
        Ok(loss)
    }

    /// Applies `w ← w − lr (g + prox)` across all layers, walking the flat
    /// parameter offset for the proximal reference lookup.
    fn apply_sgd(&mut self, opt: &SgdConfig) {
        let lr = opt.learning_rate();
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.apply_update(&mut |param, grad| {
                debug_assert_eq!(param.shape(), grad.shape());
                let p = param.as_mut_slice();
                let g = grad.as_slice();
                for (i, (w, &gv)) in p.iter_mut().zip(g).enumerate() {
                    if !opt.is_trainable(offset + i) {
                        continue;
                    }
                    let pull = opt.regularization_pull(offset + i, *w);
                    *w -= lr * (gv + pull);
                }
                offset += g.len();
            });
        }
    }

    fn collect_gradients(&mut self) -> Vec<f32> {
        let mut grads = Vec::with_capacity(self.num_parameters());
        for layer in &mut self.layers {
            layer.apply_update(&mut |_, grad| grads.extend_from_slice(grad.as_slice()));
        }
        grads
    }
}

/// Label check + fused softmax/cross-entropy/accuracy over final logits
/// (shared by the scratch and flat-params evaluation paths). `logits` is
/// consumed in place.
fn evaluation_from_logits(logits: &mut Matrix, y: &[usize]) -> Result<Evaluation, NnError> {
    let classes = logits.cols();
    if let Some(&bad) = y.iter().find(|&&label| label >= classes) {
        return Err(NnError::LabelOutOfRange {
            label: bad,
            classes,
        });
    }
    let (loss, correct) = fused_softmax_cross_entropy(logits, y);
    Ok(Evaluation {
        loss,
        accuracy: correct as f32 / y.len() as f32,
        correct,
        total: y.len(),
    })
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self {
            layers: self.layers.clone(),
            scratch: self.scratch.clone(),
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("num_parameters", &self.num_parameters())
            .finish()
    }
}

impl Model for Sequential {
    fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.num_parameters()).sum()
    }

    fn parameters(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for layer in &self.layers {
            layer.visit_parameters(&mut |m| out.extend_from_slice(m.as_slice()));
        }
        out
    }

    fn set_parameters(&mut self, params: &[f32]) -> Result<(), NnError> {
        let expected = self.num_parameters();
        if params.len() != expected {
            return Err(NnError::ParameterCount {
                expected,
                actual: params.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.load_parameters(&mut |m| {
                let len = m.len();
                m.as_mut_slice()
                    .copy_from_slice(&params[offset..offset + len]);
                offset += len;
            });
        }
        debug_assert_eq!(offset, expected);
        Ok(())
    }

    fn set_matmul_backend(&mut self, backend: MatmulBackendKind) {
        for layer in &mut self.layers {
            layer.set_backend(backend);
        }
    }

    fn train_batch(&mut self, x: &Matrix, y: &[usize], opt: &SgdConfig) -> Result<f32, NnError> {
        let loss = self.forward_backward(x, y)?;
        self.apply_sgd(opt);
        Ok(loss)
    }

    fn loss_and_gradient(&mut self, x: &Matrix, y: &[usize]) -> Result<(f32, Vec<f32>), NnError> {
        let loss = self.forward_backward(x, y)?;
        Ok((loss, self.collect_gradients()))
    }

    fn evaluate(&self, x: &Matrix, y: &[usize]) -> Result<Evaluation, NnError> {
        if x.rows() != y.len() {
            return Err(NnError::BatchMismatch {
                inputs: x.rows(),
                labels: y.len(),
            });
        }
        if y.is_empty() {
            return Ok(Evaluation::default());
        }
        let logits = self.logits(x)?;
        let (probs, loss) = softmax_cross_entropy(&logits, y);
        let mut correct = 0;
        for (r, &label) in y.iter().enumerate() {
            if argmax(probs.row(r)) == label {
                correct += 1;
            }
        }
        Ok(Evaluation {
            loss,
            accuracy: correct as f32 / y.len() as f32,
            correct,
            total: y.len(),
        })
    }

    fn evaluate_with_scratch(
        &self,
        x: &Matrix,
        y: &[usize],
        scratch: &mut EvalScratch,
    ) -> Result<Evaluation, NnError> {
        if x.rows() != y.len() {
            return Err(NnError::BatchMismatch {
                inputs: x.rows(),
                labels: y.len(),
            });
        }
        if y.is_empty() {
            return Ok(Evaluation::default());
        }
        // Ping-pong the activations between the two scratch buffers —
        // no per-layer allocation, unlike `logits()`.
        let (mut cur, mut next) = scratch.buffers();
        self.layers[0].forward_inference_into(x, cur)?;
        for layer in &self.layers[1..] {
            layer.forward_inference_into(cur, next)?;
            std::mem::swap(&mut cur, &mut next);
        }
        evaluation_from_logits(cur, y)
    }

    fn evaluate_flat_params(
        &self,
        params: &[f32],
        x: &Matrix,
        y: &[usize],
        scratch: &mut EvalScratch,
    ) -> Option<Result<Evaluation, NnError>> {
        if x.rows() != y.len() {
            return Some(Err(NnError::BatchMismatch {
                inputs: x.rows(),
                labels: y.len(),
            }));
        }
        let expected = self.num_parameters();
        if params.len() != expected {
            return Some(Err(NnError::ParameterCount {
                expected,
                actual: params.len(),
            }));
        }
        if y.is_empty() {
            return Some(Ok(Evaluation::default()));
        }
        let mut remaining = params;
        let (mut cur, mut next) = scratch.buffers();
        match self.layers[0].forward_inference_params(&mut remaining, x, cur)? {
            Ok(()) => {}
            Err(e) => return Some(Err(e)),
        }
        for layer in &self.layers[1..] {
            match layer.forward_inference_params(&mut remaining, cur, next)? {
                Ok(()) => {}
                Err(e) => return Some(Err(e)),
            }
            std::mem::swap(&mut cur, &mut next);
        }
        debug_assert!(remaining.is_empty(), "layers must consume all parameters");
        Some(evaluation_from_logits(cur, y))
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        let logits = self.logits(x)?;
        Ok((0..logits.rows()).map(|r| argmax(logits.row(r))).collect())
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(&mut rng, 4, 8)),
            Box::new(Relu::new()),
            Box::new(Dense::new(&mut rng, 8, 3)),
        ])
    }

    fn toy_batch() -> (Matrix, Vec<usize>) {
        // Three separable clusters on the 4-dim simplex corners.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.9, 0.1, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.9, 0.1, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.1, 0.0, 0.9],
        ])
        .unwrap();
        (x, vec![0, 0, 1, 1, 2, 2])
    }

    #[test]
    fn parameter_roundtrip_preserves_model() {
        let model = tiny_model(3);
        let params = model.parameters();
        assert_eq!(params.len(), model.num_parameters());
        let mut clone = tiny_model(99);
        clone.set_parameters(&params).unwrap();
        assert_eq!(clone.parameters(), params);
    }

    #[test]
    fn set_parameters_rejects_wrong_length() {
        let mut model = tiny_model(3);
        let err = model.set_parameters(&[0.0; 3]).unwrap_err();
        assert!(matches!(err, NnError::ParameterCount { .. }));
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut model = tiny_model(7);
        let (x, y) = toy_batch();
        let initial = model.evaluate(&x, &y).unwrap().loss;
        let opt = SgdConfig::new(0.5);
        for _ in 0..200 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        let final_eval = model.evaluate(&x, &y).unwrap();
        assert!(
            final_eval.loss < initial * 0.5,
            "loss did not drop: {initial} -> {}",
            final_eval.loss
        );
        assert!(final_eval.accuracy > 0.99);
    }

    #[test]
    fn predictions_match_evaluation_accuracy() {
        let mut model = tiny_model(7);
        let (x, y) = toy_batch();
        let opt = SgdConfig::new(0.5);
        for _ in 0..100 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        let eval = model.evaluate(&x, &y).unwrap();
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, l)| p == l).count();
        assert_eq!(correct, eval.correct);
    }

    #[test]
    fn train_batch_rejects_label_out_of_range() {
        let mut model = tiny_model(1);
        let x = Matrix::zeros(1, 4);
        let err = model
            .train_batch(&x, &[5], &SgdConfig::new(0.1))
            .unwrap_err();
        assert!(matches!(err, NnError::LabelOutOfRange { .. }));
    }

    #[test]
    fn train_batch_rejects_batch_mismatch() {
        let mut model = tiny_model(1);
        let x = Matrix::zeros(2, 4);
        let err = model
            .train_batch(&x, &[0], &SgdConfig::new(0.1))
            .unwrap_err();
        assert!(matches!(err, NnError::BatchMismatch { .. }));
    }

    #[test]
    fn evaluate_empty_batch_is_default() {
        let model = tiny_model(1);
        let eval = model.evaluate(&Matrix::zeros(0, 4), &[]).unwrap();
        assert_eq!(eval, Evaluation::default());
        let mut scratch = EvalScratch::new();
        let eval = model
            .evaluate_with_scratch(&Matrix::zeros(0, 4), &[], &mut scratch)
            .unwrap();
        assert_eq!(eval, Evaluation::default());
    }

    #[test]
    fn scratch_evaluation_matches_allocating_evaluation() {
        let mut model = tiny_model(9);
        let (x, y) = toy_batch();
        let opt = SgdConfig::new(0.5);
        let mut scratch = EvalScratch::new();
        // Across training steps (reused buffers, changing parameters) the
        // two paths must agree exactly — the walk's cached accuracies
        // depend on it.
        for _ in 0..20 {
            model.train_batch(&x, &y, &opt).unwrap();
            let slow = model.evaluate(&x, &y).unwrap();
            let fast = model.evaluate_with_scratch(&x, &y, &mut scratch).unwrap();
            assert_eq!(fast, slow);
            assert_eq!(fast.loss.to_bits(), slow.loss.to_bits());
        }
    }

    #[test]
    fn scratch_evaluation_rejects_bad_batches() {
        let model = tiny_model(2);
        let mut scratch = EvalScratch::new();
        let err = model
            .evaluate_with_scratch(&Matrix::zeros(2, 4), &[0], &mut scratch)
            .unwrap_err();
        assert!(matches!(err, NnError::BatchMismatch { .. }));
        let err = model
            .evaluate_with_scratch(&Matrix::zeros(1, 4), &[7], &mut scratch)
            .unwrap_err();
        assert!(matches!(err, NnError::LabelOutOfRange { .. }));
        let err = model
            .evaluate_with_scratch(&Matrix::zeros(1, 9), &[0], &mut scratch)
            .unwrap_err();
        assert!(matches!(err, NnError::Shape(_)));
    }

    #[test]
    fn flat_params_evaluation_matches_loaded_evaluation() {
        let mut scratch_model = tiny_model(4);
        let donor = tiny_model(5);
        let params = donor.parameters();
        let (x, y) = toy_batch();
        let mut scratch = EvalScratch::new();
        let before = scratch_model.parameters();
        let zero_copy = scratch_model
            .evaluate_flat_params(&params, &x, &y, &mut scratch)
            .expect("Sequential of Dense/Relu supports the flat path")
            .unwrap();
        assert_eq!(
            scratch_model.parameters(),
            before,
            "the flat path must not touch the model's own parameters"
        );
        scratch_model.set_parameters(&params).unwrap();
        let loaded = scratch_model.evaluate(&x, &y).unwrap();
        assert_eq!(zero_copy, loaded);
        assert_eq!(zero_copy.loss.to_bits(), loaded.loss.to_bits());
    }

    #[test]
    fn flat_params_evaluation_rejects_bad_inputs() {
        let model = tiny_model(4);
        let (x, y) = toy_batch();
        let mut scratch = EvalScratch::new();
        let err = model
            .evaluate_flat_params(&[0.0; 3], &x, &y, &mut scratch)
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, NnError::ParameterCount { .. }));
        let err = model
            .evaluate_flat_params(&model.parameters(), &x, &y[..2], &mut scratch)
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, NnError::BatchMismatch { .. }));
    }

    #[test]
    fn forward_inference_into_default_matches_allocating_path() {
        // A single-layer model exercises the non-overridden default for
        // layers without a buffer-reusing kernel.
        struct Offset;
        impl Layer for Offset {
            fn name(&self) -> &'static str {
                "Offset"
            }
            fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
                Ok(input.map(|v| v + 1.0))
            }
            fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
                Ok(input.map(|v| v + 1.0))
            }
            fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
                Ok(grad_output.clone())
            }
            fn boxed_clone(&self) -> Box<dyn Layer> {
                Box::new(Offset)
            }
        }
        let model = Sequential::new(vec![Box::new(Offset)]);
        let x = Matrix::from_rows(&[&[1.0, -3.0], &[0.0, 2.0]]).unwrap();
        let mut scratch = EvalScratch::new();
        let fast = model
            .evaluate_with_scratch(&x, &[0, 1], &mut scratch)
            .unwrap();
        let slow = model.evaluate(&x, &[0, 1]).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn proximal_term_pulls_towards_reference() {
        use std::sync::Arc;
        let (x, y) = toy_batch();
        // Train two copies from the same start; the proximal one must stay
        // closer to the frozen reference.
        let base = tiny_model(11);
        let reference = Arc::new(base.parameters());

        let mut plain = base.clone();
        let mut proxed = base.clone();
        // Keep lr * mu < 1 so the proximal pull is a stable contraction.
        let opt_plain = SgdConfig::new(0.5);
        let opt_prox = SgdConfig::new(0.5).with_proximal(1.0, Arc::clone(&reference));
        for _ in 0..50 {
            plain.train_batch(&x, &y, &opt_plain).unwrap();
            proxed.train_batch(&x, &y, &opt_prox).unwrap();
        }
        let dist = |m: &Sequential| -> f32 {
            m.parameters()
                .iter()
                .zip(reference.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        assert!(
            dist(&proxed) < dist(&plain),
            "proximal model strayed further ({}) than plain ({})",
            dist(&proxed),
            dist(&plain)
        );
    }

    #[test]
    fn frozen_prefix_pins_leading_layer() {
        let mut model = tiny_model(21);
        let (x, y) = toy_batch();
        // First Dense layer holds 4*8 + 8 = 40 parameters.
        let frozen = 40;
        let before = model.parameters();
        let opt = SgdConfig::new(0.5).with_frozen_prefix(frozen);
        for _ in 0..20 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        let after = model.parameters();
        assert_eq!(&before[..frozen], &after[..frozen], "frozen layer moved");
        assert_ne!(&before[frozen..], &after[frozen..], "free layers stuck");
    }

    #[test]
    fn fully_frozen_model_never_changes() {
        let mut model = tiny_model(22);
        let (x, y) = toy_batch();
        let before = model.parameters();
        let opt = SgdConfig::new(0.5).with_frozen_prefix(model.num_parameters());
        model.train_batch(&x, &y, &opt).unwrap();
        assert_eq!(model.parameters(), before);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = tiny_model(5);
        let b = a.clone();
        let (x, y) = toy_batch();
        a.train_batch(&x, &y, &SgdConfig::new(0.5)).unwrap();
        assert_ne!(a.parameters(), b.parameters());
    }

    #[test]
    fn probabilities_rows_sum_to_one() {
        let model = tiny_model(5);
        let (x, _) = toy_batch();
        let probs = model.probabilities(&x).unwrap();
        for r in 0..probs.rows() {
            let sum: f32 = probs.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn debug_lists_layer_names() {
        let model = tiny_model(5);
        let dbg = format!("{model:?}");
        assert!(dbg.contains("Dense"));
        assert!(dbg.contains("Relu"));
    }

    #[test]
    fn steady_state_training_reuses_every_buffer() {
        let mut model = tiny_model(13);
        let (x, y) = toy_batch();
        let opt = SgdConfig::new(0.1);
        // One warm-up step grows the scratch and per-layer gradient
        // buffers to their steady-state sizes...
        model.train_batch(&x, &y, &opt).unwrap();
        let scratch_before = model.scratch.buffer_ptrs();
        let mut grads_before = Vec::new();
        for layer in &mut model.layers {
            layer.apply_update(&mut |_, grad| grads_before.push(grad.as_slice().as_ptr()));
        }
        // ...after which further steps must not reallocate any of them.
        for _ in 0..5 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        assert_eq!(model.scratch.buffer_ptrs(), scratch_before);
        let mut grads_after = Vec::new();
        for layer in &mut model.layers {
            layer.apply_update(&mut |_, grad| grads_after.push(grad.as_slice().as_ptr()));
        }
        assert_eq!(grads_after, grads_before);
    }

    #[test]
    fn naive_and_tiled_training_is_bit_identical() {
        let (x, y) = toy_batch();
        let opt = SgdConfig::new(0.5);
        let mut naive = tiny_model(17);
        let mut tiled = tiny_model(17);
        naive.set_matmul_backend(MatmulBackendKind::Naive);
        tiled.set_matmul_backend(MatmulBackendKind::Tiled);
        for step in 0..30 {
            let ln = naive.train_batch(&x, &y, &opt).unwrap();
            let lt = tiled.train_batch(&x, &y, &opt).unwrap();
            assert_eq!(ln.to_bits(), lt.to_bits(), "loss diverged at step {step}");
            let (pn, pt) = (naive.parameters(), tiled.parameters());
            for (i, (a, b)) in pn.iter().zip(&pt).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "parameter {i} diverged at step {step}"
                );
            }
        }
    }
}
