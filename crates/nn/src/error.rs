use std::error::Error;
use std::fmt;

use dagfl_tensor::ShapeError;

/// Errors produced by model construction, training and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// An underlying tensor operation received incompatible shapes.
    Shape(ShapeError),
    /// A parameter vector had the wrong length for the target model.
    ParameterCount {
        /// Number of parameters the model expects.
        expected: usize,
        /// Number of parameters supplied.
        actual: usize,
    },
    /// The batch matrix and label slice disagree on the sample count.
    BatchMismatch {
        /// Rows in the input matrix.
        inputs: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A label was out of range for the model's output dimension.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the model predicts.
        classes: usize,
    },
    /// Encoded parameter bytes were malformed.
    Codec(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape(e) => write!(f, "tensor shape error: {e}"),
            NnError::ParameterCount { expected, actual } => write!(
                f,
                "parameter vector length mismatch: expected {expected}, got {actual}"
            ),
            NnError::BatchMismatch { inputs, labels } => {
                write!(f, "batch mismatch: {inputs} input rows but {labels} labels")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::Codec(msg) => write!(f, "parameter codec error: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for NnError {
    fn from(e: ShapeError) -> Self {
        NnError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::ParameterCount {
            expected: 10,
            actual: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn shape_error_converts_and_sources() {
        let inner = ShapeError::new("matmul", (1, 2), (3, 4));
        let e: NnError = inner.clone().into();
        assert_eq!(e, NnError::Shape(inner));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
