//! A standalone token-embedding layer.

use dagfl_tensor::{xavier_uniform, Matrix};
use rand::Rng;

use crate::{Layer, NnError};

/// Maps integer token ids (stored as `f32` matrix entries) to dense
/// vectors, concatenating per-position embeddings along the row.
///
/// Input: `batch x positions` of token ids; output:
/// `batch x (positions * dim)`. This makes bag-of-token / fixed-window
/// models expressible as ordinary [`Sequential`](crate::Sequential)
/// stacks (the recurrent [`CharRnn`](crate::CharRnn) keeps its own
/// internal embedding for per-timestep access).
#[derive(Clone)]
pub struct Embedding {
    vocab: usize,
    dim: usize,
    table: Matrix,
    grad_table: Matrix,
    cached_tokens: Option<Vec<Vec<usize>>>,
}

impl Embedding {
    /// Creates an embedding table of `vocab x dim` Xavier-initialised
    /// vectors.
    pub fn new<R: Rng>(rng: &mut R, vocab: usize, dim: usize) -> Self {
        Self {
            vocab,
            dim,
            table: xavier_uniform(rng, vocab, dim),
            grad_table: Matrix::zeros(vocab, dim),
            cached_tokens: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn lookup(&self, input: &Matrix) -> Result<(Matrix, Vec<Vec<usize>>), NnError> {
        let positions = input.cols();
        let mut out = Matrix::zeros(input.rows(), positions * self.dim);
        let mut tokens = Vec::with_capacity(input.rows());
        for r in 0..input.rows() {
            let mut row_tokens = Vec::with_capacity(positions);
            for (p, &raw) in input.row(r).iter().enumerate() {
                let token = raw as usize;
                if raw < 0.0 || token >= self.vocab {
                    return Err(NnError::LabelOutOfRange {
                        label: token,
                        classes: self.vocab,
                    });
                }
                out.row_mut(r)[p * self.dim..(p + 1) * self.dim]
                    .copy_from_slice(self.table.row(token));
                row_tokens.push(token);
            }
            tokens.push(row_tokens);
        }
        Ok((out, tokens))
    }
}

impl Layer for Embedding {
    fn name(&self) -> &'static str {
        "Embedding"
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        let (out, tokens) = self.lookup(input)?;
        self.cached_tokens = Some(tokens);
        Ok(out)
    }

    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
        Ok(self.lookup(input)?.0)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let tokens = self
            .cached_tokens
            .as_ref()
            .expect("backward called before forward");
        self.grad_table.map_in_place(|_| 0.0);
        for (r, row_tokens) in tokens.iter().enumerate() {
            let grad_row = grad_output.row(r);
            for (p, &token) in row_tokens.iter().enumerate() {
                let slice = &grad_row[p * self.dim..(p + 1) * self.dim];
                for (g, &d) in self.grad_table.row_mut(token).iter_mut().zip(slice) {
                    *g += d;
                }
            }
        }
        // Token ids are discrete; no gradient flows to the input.
        Ok(Matrix::zeros(grad_output.rows(), tokens[0].len()))
    }

    fn visit_parameters(&self, visitor: &mut dyn FnMut(&Matrix)) {
        visitor(&self.table);
    }

    fn apply_update(&mut self, update: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        update(&mut self.table, &self.grad_table);
    }

    fn load_parameters(&mut self, source: &mut dyn FnMut(&mut Matrix)) {
        source(&mut self.table);
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for Embedding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Embedding")
            .field("vocab", &self.vocab)
            .field("dim", &self.dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_concatenates_position_embeddings() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut e = Embedding::new(&mut rng, 5, 3);
        let x = Matrix::from_rows(&[&[1.0, 4.0]]).unwrap();
        let y = e.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 6));
        assert_eq!(&y.row(0)[..3], e.table.row(1));
        assert_eq!(&y.row(0)[3..], e.table.row(4));
    }

    #[test]
    fn rejects_out_of_vocab_token() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut e = Embedding::new(&mut rng, 5, 3);
        let x = Matrix::from_rows(&[&[5.0]]).unwrap();
        assert!(matches!(
            e.forward(&x),
            Err(NnError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn backward_accumulates_repeated_tokens() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut e = Embedding::new(&mut rng, 4, 2);
        // Token 2 appears twice: its gradient row should sum both slots.
        let x = Matrix::from_rows(&[&[2.0, 2.0]]).unwrap();
        e.forward(&x).unwrap();
        let grad = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        e.backward(&grad).unwrap();
        let mut grads = Vec::new();
        e.apply_update(&mut |_, g| grads.push(g.clone()));
        assert_eq!(grads[0].row(2), &[4.0, 6.0]);
        assert_eq!(grads[0].row(0), &[0.0, 0.0]);
    }

    #[test]
    fn parameter_count_is_table_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut rng, 7, 4);
        assert_eq!(e.num_parameters(), 28);
        assert_eq!(e.vocab(), 7);
        assert_eq!(e.dim(), 4);
    }

    #[test]
    fn gradients_match_numeric_in_a_model() {
        use crate::gradcheck::assert_gradients_match;
        use crate::{Dense, Sequential};
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Sequential::new(vec![
            Box::new(Embedding::new(&mut rng, 6, 3)),
            Box::new(Dense::new(&mut rng, 6, 3)),
        ]);
        let x = Matrix::from_fn(4, 2, |r, p| ((r + p) % 6) as f32);
        let y = vec![0, 1, 2, 0];
        assert_gradients_match(&mut model, &x, &y, 1e-2, 0.08);
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = Embedding::new(&mut rng, 8, 5);
        let x = Matrix::from_fn(3, 4, |r, p| ((r * 4 + p) % 8) as f32);
        let train = e.forward(&x).unwrap();
        let infer = e.forward_inference(&x).unwrap();
        assert_eq!(train, infer);
    }
}
