//! Element-wise activation layers.

use dagfl_tensor::Matrix;

use crate::{Layer, NnError};

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Matrix>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "Relu"
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|v| v.max(0.0)))
    }

    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
        Ok(input.map(|v| v.max(0.0)))
    }

    fn forward_inference_into(&self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        input.map_into(out, |v| v.max(0.0));
        Ok(())
    }

    fn forward_train_into(&mut self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        self.cached_input
            .get_or_insert_with(Matrix::default)
            .copy_from(input);
        input.map_into(out, |v| v.max(0.0));
        Ok(())
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        Ok(grad_output.hadamard(&mask)?)
    }

    fn backward_into(
        &mut self,
        grad_output: &Matrix,
        grad_input: &mut Matrix,
    ) -> Result<(), NnError> {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // Multiplying by the 0/1 mask (rather than selecting a literal
        // 0.0) keeps the -0.0 signs the allocating path produces, so
        // both paths stay bit-identical.
        grad_output.zip_into(input, grad_input, |g, v| {
            g * (if v > 0.0 { 1.0 } else { 0.0 })
        })?;
        Ok(())
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Matrix>,
}

impl Tanh {
    /// Creates a tanh activation layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
        Ok(input.map(f32::tanh))
    }

    fn forward_inference_into(&self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        input.map_into(out, f32::tanh);
        Ok(())
    }

    fn forward_train_into(&mut self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        input.map_into(out, f32::tanh);
        self.cached_output
            .get_or_insert_with(Matrix::default)
            .copy_from(out);
        Ok(())
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        let deriv = out.map(|y| 1.0 - y * y);
        Ok(grad_output.hadamard(&deriv)?)
    }

    fn backward_into(
        &mut self,
        grad_output: &Matrix,
        grad_input: &mut Matrix,
    ) -> Result<(), NnError> {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        grad_output.zip_into(out, grad_input, |g, y| g * (1.0 - y * y))?;
        Ok(())
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Matrix>,
}

impl Sigmoid {
    /// Creates a sigmoid activation layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Numerically stable logistic function.
pub(crate) fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        let out = input.map(sigmoid_scalar);
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
        Ok(input.map(sigmoid_scalar))
    }

    fn forward_inference_into(&self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        input.map_into(out, sigmoid_scalar);
        Ok(())
    }

    fn forward_train_into(&mut self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        input.map_into(out, sigmoid_scalar);
        self.cached_output
            .get_or_insert_with(Matrix::default)
            .copy_from(out);
        Ok(())
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        let deriv = out.map(|y| y * (1.0 - y));
        Ok(grad_output.hadamard(&deriv)?)
    }

    fn backward_into(
        &mut self,
        grad_output: &Matrix,
        grad_input: &mut Matrix,
    ) -> Result<(), NnError> {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        grad_output.zip_into(out, grad_input, |g, y| g * (y * (1.0 - y)))?;
        Ok(())
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]).unwrap();
        let y = relu.forward(&x).unwrap();
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks_negatives() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 0.5]]).unwrap();
        relu.forward(&x).unwrap();
        let g = Matrix::from_rows(&[&[3.0, 3.0]]).unwrap();
        let gi = relu.backward(&g).unwrap();
        assert_eq!(gi.row(0), &[0.0, 3.0]);
    }

    #[test]
    fn tanh_matches_std() {
        let mut t = Tanh::new();
        let x = Matrix::from_rows(&[&[0.0, 1.0, -1.0]]).unwrap();
        let y = t.forward(&x).unwrap();
        assert!((y[(0, 0)] - 0.0).abs() < 1e-6);
        assert!((y[(0, 1)] - 1f32.tanh()).abs() < 1e-6);
        assert!((y[(0, 2)] + 1f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_at_zero_is_one() {
        let mut t = Tanh::new();
        let x = Matrix::zeros(1, 1);
        t.forward(&x).unwrap();
        let g = Matrix::filled(1, 1, 2.0);
        let gi = t.backward(&g).unwrap();
        assert!((gi[(0, 0)] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        let mut s = Sigmoid::new();
        let x = Matrix::from_rows(&[&[0.0, 100.0, -100.0]]).unwrap();
        let y = s.forward(&x).unwrap();
        assert!((y[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((y[(0, 1)] - 1.0).abs() < 1e-6);
        assert!(y[(0, 2)].abs() < 1e-6);
        assert!(y.is_finite());
    }

    #[test]
    fn sigmoid_gradient_peak_at_zero() {
        let mut s = Sigmoid::new();
        s.forward(&Matrix::zeros(1, 1)).unwrap();
        let gi = s.backward(&Matrix::filled(1, 1, 1.0)).unwrap();
        assert!((gi[(0, 0)] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn activations_have_no_parameters() {
        assert_eq!(Relu::new().num_parameters(), 0);
        assert_eq!(Tanh::new().num_parameters(), 0);
        assert_eq!(Sigmoid::new().num_parameters(), 0);
    }

    #[test]
    fn sigmoid_scalar_stable_for_extremes() {
        assert!(sigmoid_scalar(1000.0).is_finite());
        assert!(sigmoid_scalar(-1000.0).is_finite());
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-7);
    }
}
