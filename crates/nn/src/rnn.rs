//! Recurrent next-character model: Embedding → GRU → Dense.
//!
//! The paper's Poets experiment trains an LSTM on 80-character windows to
//! predict the next character. We use a GRU (fewer parameters, same
//! modelling class for this task) with full backpropagation through time,
//! implemented directly on [`Matrix`] batches. Gradients are verified
//! against numerical differentiation in the test suite.

use dagfl_tensor::{argmax, softmax_cross_entropy, xavier_uniform, MatmulBackendKind, Matrix};
use rand::Rng;

use crate::activations::sigmoid_scalar;
use crate::{Evaluation, Model, NnError, SgdConfig};

/// A gated recurrent unit cell operating on whole batches.
///
/// Weight naming follows the standard GRU formulation:
///
/// ```text
/// z = sigmoid(x Wz + h_prev Uz + bz)        (update gate)
/// r = sigmoid(x Wr + h_prev Ur + br)        (reset gate)
/// h~ = tanh(x Wh + (r ⊙ h_prev) Uh + bh)   (candidate)
/// h = (1 - z) ⊙ h_prev + z ⊙ h~
/// ```
#[derive(Clone)]
pub struct GruCell {
    input_size: usize,
    hidden_size: usize,
    wz: Matrix,
    wr: Matrix,
    wh: Matrix,
    uz: Matrix,
    ur: Matrix,
    uh: Matrix,
    bz: Matrix,
    br: Matrix,
    bh: Matrix,
    gwz: Matrix,
    gwr: Matrix,
    gwh: Matrix,
    guz: Matrix,
    gur: Matrix,
    guh: Matrix,
    gbz: Matrix,
    gbr: Matrix,
    gbh: Matrix,
    backend: MatmulBackendKind,
}

/// Everything a single GRU timestep caches for the backward pass.
#[derive(Debug, Clone)]
pub(crate) struct GruStepCache {
    x: Matrix,
    h_prev: Matrix,
    z: Matrix,
    r: Matrix,
    s: Matrix,
    hc: Matrix,
}

impl GruCell {
    /// Creates a GRU cell with Xavier-uniform weights and zero biases.
    pub fn new<R: Rng>(rng: &mut R, input_size: usize, hidden_size: usize) -> Self {
        let w = |rng: &mut R| xavier_uniform(rng, input_size, hidden_size);
        let u = |rng: &mut R| xavier_uniform(rng, hidden_size, hidden_size);
        Self {
            input_size,
            hidden_size,
            wz: w(rng),
            wr: w(rng),
            wh: w(rng),
            uz: u(rng),
            ur: u(rng),
            uh: u(rng),
            bz: Matrix::zeros(1, hidden_size),
            br: Matrix::zeros(1, hidden_size),
            bh: Matrix::zeros(1, hidden_size),
            gwz: Matrix::zeros(input_size, hidden_size),
            gwr: Matrix::zeros(input_size, hidden_size),
            gwh: Matrix::zeros(input_size, hidden_size),
            guz: Matrix::zeros(hidden_size, hidden_size),
            gur: Matrix::zeros(hidden_size, hidden_size),
            guh: Matrix::zeros(hidden_size, hidden_size),
            gbz: Matrix::zeros(1, hidden_size),
            gbr: Matrix::zeros(1, hidden_size),
            gbh: Matrix::zeros(1, hidden_size),
            backend: MatmulBackendKind::default(),
        }
    }

    /// Selects the backend the cell's matrix products run on.
    pub fn set_matmul_backend(&mut self, backend: MatmulBackendKind) {
        self.backend = backend;
    }

    /// Input feature dimension.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden state dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    fn gate(
        &self,
        x: &Matrix,
        h_prev: &Matrix,
        w: &Matrix,
        u: &Matrix,
        b: &Matrix,
    ) -> Result<Matrix, NnError> {
        let backend = self.backend.as_dyn();
        let mut pre = backend.matmul(x, w)?;
        pre.add_assign(&backend.matmul(h_prev, u)?)?;
        pre.add_row_broadcast(b.as_slice())?;
        Ok(pre)
    }

    /// One forward timestep; returns the new hidden state and the cache
    /// required by [`GruCell::backward_step`].
    pub(crate) fn forward_step(
        &self,
        x: &Matrix,
        h_prev: &Matrix,
    ) -> Result<(Matrix, GruStepCache), NnError> {
        let z = self
            .gate(x, h_prev, &self.wz, &self.uz, &self.bz)?
            .map(sigmoid_scalar);
        let r = self
            .gate(x, h_prev, &self.wr, &self.ur, &self.br)?
            .map(sigmoid_scalar);
        let backend = self.backend.as_dyn();
        let s = r.hadamard(h_prev)?;
        let mut hc_pre = backend.matmul(x, &self.wh)?;
        hc_pre.add_assign(&backend.matmul(&s, &self.uh)?)?;
        hc_pre.add_row_broadcast(self.bh.as_slice())?;
        let hc = hc_pre.map(f32::tanh);
        // h = (1 - z) ⊙ h_prev + z ⊙ hc
        let mut h = h_prev.clone();
        for i in 0..h.rows() {
            let hr = h.row_mut(i);
            let zr = z.row(i);
            let hcr = hc.row(i);
            for ((hv, &zv), &hcv) in hr.iter_mut().zip(zr).zip(hcr) {
                *hv = (1.0 - zv) * *hv + zv * hcv;
            }
        }
        let cache = GruStepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            z,
            r,
            s,
            hc,
        };
        Ok((h, cache))
    }

    /// Inference-only forward step (no cache construction beyond the state).
    pub(crate) fn forward_step_inference(
        &self,
        x: &Matrix,
        h_prev: &Matrix,
    ) -> Result<Matrix, NnError> {
        Ok(self.forward_step(x, h_prev)?.0)
    }

    /// One backward timestep. Accumulates parameter gradients and returns
    /// `(grad_h_prev, grad_x)`.
    pub(crate) fn backward_step(
        &mut self,
        grad_h: &Matrix,
        cache: &GruStepCache,
    ) -> Result<(Matrix, Matrix), NnError> {
        let GruStepCache {
            x,
            h_prev,
            z,
            r,
            s,
            hc,
        } = cache;
        // dz = dh ⊙ (hc - h_prev); dzpre = dz ⊙ z(1-z)
        let dz = grad_h.hadamard(&hc.sub(h_prev)?)?;
        let dzpre = dz.hadamard(&z.map(|v| v * (1.0 - v)))?;
        // dhc = dh ⊙ z; dhpre = dhc ⊙ (1 - hc^2)
        let dhc = grad_h.hadamard(z)?;
        let dhpre = dhc.hadamard(&hc.map(|v| 1.0 - v * v))?;
        let backend = self.backend.as_dyn();
        // ds = dhpre Uh^T; dr = ds ⊙ h_prev; drpre = dr ⊙ r(1-r)
        let ds = backend.matmul_transpose(&dhpre, &self.uh)?;
        let dr = ds.hadamard(h_prev)?;
        let drpre = dr.hadamard(&r.map(|v| v * (1.0 - v)))?;
        // dh_prev = dh ⊙ (1-z) + ds ⊙ r + dzpre Uz^T + drpre Ur^T
        let mut dh_prev = grad_h.hadamard(&z.map(|v| 1.0 - v))?;
        dh_prev.add_assign(&ds.hadamard(r)?)?;
        dh_prev.add_assign(&backend.matmul_transpose(&dzpre, &self.uz)?)?;
        dh_prev.add_assign(&backend.matmul_transpose(&drpre, &self.ur)?)?;
        // dx = dzpre Wz^T + drpre Wr^T + dhpre Wh^T
        let mut dx = backend.matmul_transpose(&dzpre, &self.wz)?;
        dx.add_assign(&backend.matmul_transpose(&drpre, &self.wr)?)?;
        dx.add_assign(&backend.matmul_transpose(&dhpre, &self.wh)?)?;
        // Parameter gradients (accumulated across timesteps).
        self.gwz.add_assign(&backend.transpose_matmul(x, &dzpre)?)?;
        self.gwr.add_assign(&backend.transpose_matmul(x, &drpre)?)?;
        self.gwh.add_assign(&backend.transpose_matmul(x, &dhpre)?)?;
        self.guz
            .add_assign(&backend.transpose_matmul(h_prev, &dzpre)?)?;
        self.gur
            .add_assign(&backend.transpose_matmul(h_prev, &drpre)?)?;
        self.guh.add_assign(&backend.transpose_matmul(s, &dhpre)?)?;
        let add_bias = |b: &mut Matrix, g: &Matrix| {
            for (bv, gv) in b.as_mut_slice().iter_mut().zip(g.column_sums()) {
                *bv += gv;
            }
        };
        add_bias(&mut self.gbz, &dzpre);
        add_bias(&mut self.gbr, &drpre);
        add_bias(&mut self.gbh, &dhpre);
        Ok((dh_prev, dx))
    }

    fn zero_grads(&mut self) {
        for g in [
            &mut self.gwz,
            &mut self.gwr,
            &mut self.gwh,
            &mut self.guz,
            &mut self.gur,
            &mut self.guh,
            &mut self.gbz,
            &mut self.gbr,
            &mut self.gbh,
        ] {
            g.map_in_place(|_| 0.0);
        }
    }

    fn visit_parameters(&self, visitor: &mut dyn FnMut(&Matrix)) {
        for m in [
            &self.wz, &self.wr, &self.wh, &self.uz, &self.ur, &self.uh, &self.bz, &self.br,
            &self.bh,
        ] {
            visitor(m);
        }
    }

    fn apply_update(&mut self, update: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        update(&mut self.wz, &self.gwz);
        update(&mut self.wr, &self.gwr);
        update(&mut self.wh, &self.gwh);
        update(&mut self.uz, &self.guz);
        update(&mut self.ur, &self.gur);
        update(&mut self.uh, &self.guh);
        update(&mut self.bz, &self.gbz);
        update(&mut self.br, &self.gbr);
        update(&mut self.bh, &self.gbh);
    }

    fn load_parameters(&mut self, source: &mut dyn FnMut(&mut Matrix)) {
        for m in [
            &mut self.wz,
            &mut self.wr,
            &mut self.wh,
            &mut self.uz,
            &mut self.ur,
            &mut self.uh,
            &mut self.bz,
            &mut self.br,
            &mut self.bh,
        ] {
            source(m);
        }
    }

    fn num_parameters(&self) -> usize {
        3 * (self.input_size * self.hidden_size)
            + 3 * (self.hidden_size * self.hidden_size)
            + 3 * self.hidden_size
    }
}

impl std::fmt::Debug for GruCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GruCell")
            .field("input_size", &self.input_size)
            .field("hidden_size", &self.hidden_size)
            .finish()
    }
}

/// Next-character prediction model: Embedding → GRU → Dense over the final
/// hidden state.
///
/// Inputs are matrices whose rows are fixed-length token-id sequences
/// (stored as `f32`, e.g. `x[(i, t)] = 42.0` means token 42 at position `t`
/// of sample `i`). The label of a sample is the id of the character that
/// follows the sequence.
///
/// # Example
///
/// ```
/// use dagfl_nn::{CharRnn, Model, SgdConfig};
/// use dagfl_tensor::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), dagfl_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = CharRnn::new(&mut rng, 16, 4, 8);
/// // Two sequences of 5 tokens each.
/// let x = Matrix::from_fn(2, 5, |r, t| ((r + t) % 16) as f32);
/// let loss = model.train_batch(&x, &[3, 7], &SgdConfig::new(0.1))?;
/// assert!(loss.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct CharRnn {
    vocab: usize,
    embed_dim: usize,
    embedding: Matrix,
    cell: GruCell,
    out_w: Matrix,
    out_b: Matrix,
    grad_embedding: Matrix,
    grad_out_w: Matrix,
    grad_out_b: Matrix,
}

impl CharRnn {
    /// Creates a model for `vocab` tokens with the given embedding and
    /// hidden dimensions.
    pub fn new<R: Rng>(rng: &mut R, vocab: usize, embed_dim: usize, hidden: usize) -> Self {
        Self {
            vocab,
            embed_dim,
            embedding: xavier_uniform(rng, vocab, embed_dim),
            cell: GruCell::new(rng, embed_dim, hidden),
            out_w: xavier_uniform(rng, hidden, vocab),
            out_b: Matrix::zeros(1, vocab),
            grad_embedding: Matrix::zeros(vocab, embed_dim),
            grad_out_w: Matrix::zeros(hidden, vocab),
            grad_out_b: Matrix::zeros(1, vocab),
        }
    }

    /// Vocabulary size (number of output classes).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Hidden state dimension of the GRU.
    pub fn hidden_size(&self) -> usize {
        self.cell.hidden_size()
    }

    fn tokens_of_row(&self, x: &Matrix, row: usize) -> Result<Vec<usize>, NnError> {
        x.row(row)
            .iter()
            .map(|&t| {
                let id = t as usize;
                if id >= self.vocab || t < 0.0 {
                    Err(NnError::LabelOutOfRange {
                        label: id,
                        classes: self.vocab,
                    })
                } else {
                    Ok(id)
                }
            })
            .collect()
    }

    /// Embeds timestep `t` of every sequence in the batch.
    fn embed_step(&self, tokens: &[Vec<usize>], t: usize) -> Matrix {
        let mut out = Matrix::zeros(tokens.len(), self.embed_dim);
        for (b, seq) in tokens.iter().enumerate() {
            out.row_mut(b).copy_from_slice(self.embedding.row(seq[t]));
        }
        out
    }

    fn validate_batch(&self, x: &Matrix, y: &[usize]) -> Result<Vec<Vec<usize>>, NnError> {
        if x.rows() != y.len() {
            return Err(NnError::BatchMismatch {
                inputs: x.rows(),
                labels: y.len(),
            });
        }
        if let Some(&bad) = y.iter().find(|&&label| label >= self.vocab) {
            return Err(NnError::LabelOutOfRange {
                label: bad,
                classes: self.vocab,
            });
        }
        (0..x.rows()).map(|r| self.tokens_of_row(x, r)).collect()
    }

    /// Runs the network to the final hidden state without caching.
    fn final_hidden(&self, tokens: &[Vec<usize>]) -> Result<Matrix, NnError> {
        let seq_len = tokens.first().map_or(0, Vec::len);
        let mut h = Matrix::zeros(tokens.len(), self.cell.hidden_size());
        for t in 0..seq_len {
            let x_t = self.embed_step(tokens, t);
            h = self.cell.forward_step_inference(&x_t, &h)?;
        }
        Ok(h)
    }

    fn logits_from_hidden(&self, h: &Matrix) -> Result<Matrix, NnError> {
        let mut logits = self.cell.backend.as_dyn().matmul(h, &self.out_w)?;
        logits.add_row_broadcast(self.out_b.as_slice())?;
        Ok(logits)
    }

    /// Forward + backward over the whole sequence; leaves gradients in the
    /// layer fields and returns the batch loss.
    fn forward_backward(&mut self, x: &Matrix, y: &[usize]) -> Result<f32, NnError> {
        let tokens = self.validate_batch(x, y)?;
        let batch = tokens.len();
        let seq_len = tokens.first().map_or(0, Vec::len);
        // Zero accumulated gradients.
        self.cell.zero_grads();
        self.grad_embedding.map_in_place(|_| 0.0);
        // Forward with caches.
        let mut h = Matrix::zeros(batch, self.cell.hidden_size());
        let mut caches = Vec::with_capacity(seq_len);
        for t in 0..seq_len {
            let x_t = self.embed_step(&tokens, t);
            let (h_new, cache) = self.cell.forward_step(&x_t, &h)?;
            caches.push(cache);
            h = h_new;
        }
        let logits = self.logits_from_hidden(&h)?;
        let (mut grad_logits, loss) = softmax_cross_entropy(&logits, y);
        let scale = 1.0 / batch.max(1) as f32;
        for (r, &label) in y.iter().enumerate() {
            grad_logits[(r, label)] -= 1.0;
        }
        grad_logits.scale_assign(scale);
        // Output layer gradients.
        let backend = self.cell.backend.as_dyn();
        backend.transpose_matmul_into(&h, &grad_logits, &mut self.grad_out_w)?;
        grad_logits.column_sums_into(&mut self.grad_out_b);
        // BPTT.
        let mut dh = backend.matmul_transpose(&grad_logits, &self.out_w)?;
        for (t, cache) in caches.iter().enumerate().rev() {
            let (dh_prev, dx) = self.cell.backward_step(&dh, cache)?;
            for (b, seq) in tokens.iter().enumerate() {
                let token = seq[t];
                let grow = self.grad_embedding.row_mut(token);
                for (g, &d) in grow.iter_mut().zip(dx.row(b)) {
                    *g += d;
                }
            }
            dh = dh_prev;
        }
        Ok(loss)
    }

    fn visit_all(&self, visitor: &mut dyn FnMut(&Matrix)) {
        visitor(&self.embedding);
        self.cell.visit_parameters(visitor);
        visitor(&self.out_w);
        visitor(&self.out_b);
    }

    fn apply_all(&mut self, update: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        update(&mut self.embedding, &self.grad_embedding);
        self.cell.apply_update(update);
        update(&mut self.out_w, &self.grad_out_w);
        update(&mut self.out_b, &self.grad_out_b);
    }
}

impl Model for CharRnn {
    fn num_parameters(&self) -> usize {
        self.vocab * self.embed_dim
            + self.cell.num_parameters()
            + self.cell.hidden_size() * self.vocab
            + self.vocab
    }

    fn parameters(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_parameters());
        self.visit_all(&mut |m| out.extend_from_slice(m.as_slice()));
        out
    }

    fn set_parameters(&mut self, params: &[f32]) -> Result<(), NnError> {
        let expected = self.num_parameters();
        if params.len() != expected {
            return Err(NnError::ParameterCount {
                expected,
                actual: params.len(),
            });
        }
        let mut offset = 0;
        let mut load = |m: &mut Matrix| {
            let len = m.len();
            m.as_mut_slice()
                .copy_from_slice(&params[offset..offset + len]);
            offset += len;
        };
        load(&mut self.embedding);
        self.cell.load_parameters(&mut load);
        load(&mut self.out_w);
        load(&mut self.out_b);
        debug_assert_eq!(offset, expected);
        Ok(())
    }

    fn set_matmul_backend(&mut self, backend: MatmulBackendKind) {
        self.cell.set_matmul_backend(backend);
    }

    fn train_batch(&mut self, x: &Matrix, y: &[usize], opt: &SgdConfig) -> Result<f32, NnError> {
        let loss = self.forward_backward(x, y)?;
        let lr = opt.learning_rate();
        let mut offset = 0;
        self.apply_all(&mut |param, grad| {
            let p = param.as_mut_slice();
            for (i, (w, &g)) in p.iter_mut().zip(grad.as_slice()).enumerate() {
                if !opt.is_trainable(offset + i) {
                    continue;
                }
                let pull = opt.regularization_pull(offset + i, *w);
                *w -= lr * (g + pull);
            }
            offset += grad.len();
        });
        Ok(loss)
    }

    fn loss_and_gradient(&mut self, x: &Matrix, y: &[usize]) -> Result<(f32, Vec<f32>), NnError> {
        let loss = self.forward_backward(x, y)?;
        let mut grads = Vec::with_capacity(self.num_parameters());
        self.apply_all(&mut |_, grad| grads.extend_from_slice(grad.as_slice()));
        Ok((loss, grads))
    }

    fn evaluate(&self, x: &Matrix, y: &[usize]) -> Result<Evaluation, NnError> {
        let tokens = self.validate_batch(x, y)?;
        if y.is_empty() {
            return Ok(Evaluation::default());
        }
        let h = self.final_hidden(&tokens)?;
        let logits = self.logits_from_hidden(&h)?;
        let (probs, loss) = softmax_cross_entropy(&logits, y);
        let mut correct = 0;
        for (r, &label) in y.iter().enumerate() {
            if argmax(probs.row(r)) == label {
                correct += 1;
            }
        }
        Ok(Evaluation {
            loss,
            accuracy: correct as f32 / y.len() as f32,
            correct,
            total: y.len(),
        })
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        let tokens: Result<Vec<_>, _> = (0..x.rows()).map(|r| self.tokens_of_row(x, r)).collect();
        let tokens = tokens?;
        if tokens.is_empty() {
            return Ok(Vec::new());
        }
        let h = self.final_hidden(&tokens)?;
        let logits = self.logits_from_hidden(&h)?;
        Ok((0..logits.rows()).map(|r| argmax(logits.row(r))).collect())
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for CharRnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CharRnn")
            .field("vocab", &self.vocab)
            .field("embed_dim", &self.embed_dim)
            .field("hidden", &self.cell.hidden_size())
            .field("num_parameters", &self.num_parameters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_model(seed: u64) -> CharRnn {
        CharRnn::new(&mut StdRng::seed_from_u64(seed), 6, 3, 5)
    }

    /// A tiny deterministic language: token t is always followed by
    /// (t + 1) mod vocab.
    fn cyclic_batch(vocab: usize, seq_len: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for start in 0..vocab {
            let seq: Vec<f32> = (0..seq_len).map(|t| ((start + t) % vocab) as f32).collect();
            labels.push((start + seq_len) % vocab);
            rows.push(seq);
        }
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        (Matrix::from_rows(&refs).unwrap(), labels)
    }

    #[test]
    fn parameter_roundtrip() {
        let model = toy_model(0);
        let params = model.parameters();
        assert_eq!(params.len(), model.num_parameters());
        let mut other = toy_model(1);
        other.set_parameters(&params).unwrap();
        assert_eq!(other.parameters(), params);
    }

    #[test]
    fn set_parameters_rejects_wrong_length() {
        let mut model = toy_model(0);
        assert!(matches!(
            model.set_parameters(&[1.0]),
            Err(NnError::ParameterCount { .. })
        ));
    }

    #[test]
    fn learns_cyclic_language() {
        let mut model = toy_model(3);
        let (x, y) = cyclic_batch(6, 4);
        let initial = model.evaluate(&x, &y).unwrap();
        let opt = SgdConfig::new(0.5);
        for _ in 0..300 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        let eval = model.evaluate(&x, &y).unwrap();
        assert!(
            eval.accuracy > 0.9,
            "accuracy stayed at {} (loss {} -> {})",
            eval.accuracy,
            initial.loss,
            eval.loss
        );
    }

    #[test]
    fn rejects_token_out_of_range() {
        let mut model = toy_model(0);
        let x = Matrix::from_rows(&[&[99.0, 0.0]]).unwrap();
        assert!(matches!(
            model.train_batch(&x, &[0], &SgdConfig::new(0.1)),
            Err(NnError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_label_out_of_range() {
        let mut model = toy_model(0);
        let x = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        assert!(matches!(
            model.train_batch(&x, &[6], &SgdConfig::new(0.1)),
            Err(NnError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_batch_mismatch() {
        let mut model = toy_model(0);
        let x = Matrix::zeros(2, 3);
        assert!(matches!(
            model.train_batch(&x, &[0], &SgdConfig::new(0.1)),
            Err(NnError::BatchMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_empty_is_default() {
        let model = toy_model(0);
        let eval = model.evaluate(&Matrix::zeros(0, 3), &[]).unwrap();
        assert_eq!(eval, Evaluation::default());
    }

    #[test]
    fn predict_matches_evaluate_correct_count() {
        let mut model = toy_model(3);
        let (x, y) = cyclic_batch(6, 4);
        let opt = SgdConfig::new(0.5);
        for _ in 0..100 {
            model.train_batch(&x, &y, &opt).unwrap();
        }
        let eval = model.evaluate(&x, &y).unwrap();
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, l)| p == l).count();
        assert_eq!(correct, eval.correct);
    }

    #[test]
    fn gru_cell_dimensions() {
        let cell = GruCell::new(&mut StdRng::seed_from_u64(0), 4, 7);
        assert_eq!(cell.input_size(), 4);
        assert_eq!(cell.hidden_size(), 7);
        assert_eq!(cell.num_parameters(), 3 * 4 * 7 + 3 * 7 * 7 + 3 * 7);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = toy_model(5);
        let b = a.clone();
        let (x, y) = cyclic_batch(6, 3);
        a.train_batch(&x, &y, &SgdConfig::new(0.5)).unwrap();
        assert_ne!(a.parameters(), b.parameters());
    }
}
