//! The object-safe [`Model`] abstraction shared by every learning algorithm
//! in the workspace.

use dagfl_tensor::{MatmulBackendKind, Matrix};

use crate::{EvalScratch, NnError, SgdConfig};

/// Loss and accuracy of a model on a labelled batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Evaluation {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Fraction of correctly predicted samples in `[0, 1]`.
    pub accuracy: f32,
    /// Number of correctly predicted samples.
    pub correct: usize,
    /// Number of samples evaluated.
    pub total: usize,
}

impl Evaluation {
    /// Combines two evaluations into one over the union of their samples.
    ///
    /// Losses are weighted by sample counts.
    pub fn merge(self, other: Evaluation) -> Evaluation {
        let total = self.total + other.total;
        if total == 0 {
            return Evaluation::default();
        }
        let correct = self.correct + other.correct;
        let loss = (self.loss * self.total as f32 + other.loss * other.total as f32) / total as f32;
        Evaluation {
            loss,
            accuracy: correct as f32 / total as f32,
            correct,
            total,
        }
    }
}

/// A trainable classifier with a flat parameter vector.
///
/// This is the interface through which the Specializing DAG, FedAvg and
/// FedProx all manipulate models: parameters can be read and replaced as a
/// flat `Vec<f32>` (which makes model averaging a vector mean), batches can
/// be trained with SGD (optionally with the FedProx proximal term, see
/// [`SgdConfig`]) and performance can be evaluated on labelled data.
///
/// Inputs are always a [`Matrix`] whose rows are samples; the meaning of the
/// columns is model-specific (pixel values for [`Sequential`] image models,
/// token ids for [`CharRnn`]).
///
/// [`Sequential`]: crate::Sequential
/// [`CharRnn`]: crate::CharRnn
pub trait Model: Send {
    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize;

    /// The parameters flattened into a single vector, in a stable order.
    fn parameters(&self) -> Vec<f32>;

    /// Replaces all parameters from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParameterCount`] if `params.len()` differs from
    /// [`Model::num_parameters`].
    fn set_parameters(&mut self, params: &[f32]) -> Result<(), NnError>;

    /// Performs one SGD step on the batch and returns the pre-update loss.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch shape does not match the model or a
    /// label is out of range.
    fn train_batch(&mut self, x: &Matrix, y: &[usize], opt: &SgdConfig) -> Result<f32, NnError>;

    /// Computes the loss and its gradient with respect to the parameters
    /// without updating the model.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch shape does not match the model.
    fn loss_and_gradient(&mut self, x: &Matrix, y: &[usize]) -> Result<(f32, Vec<f32>), NnError>;

    /// Evaluates mean loss and accuracy on the batch without training.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch shape does not match the model.
    fn evaluate(&self, x: &Matrix, y: &[usize]) -> Result<Evaluation, NnError>;

    /// Evaluates like [`Model::evaluate`], threading reusable
    /// [`EvalScratch`] buffers through the forward pass.
    ///
    /// Results are identical to [`Model::evaluate`]; the difference is
    /// purely allocation behaviour on the hot path (candidate-model
    /// scoring during tip selection evaluates thousands of models on the
    /// same test batch). The default implementation ignores the scratch
    /// and delegates; models with a buffer-reusing inference path
    /// override it.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch shape does not match the model.
    fn evaluate_with_scratch(
        &self,
        x: &Matrix,
        y: &[usize],
        scratch: &mut EvalScratch,
    ) -> Result<Evaluation, NnError> {
        let _ = scratch;
        self.evaluate(x, y)
    }

    /// Evaluates a *flat parameter vector* on the batch without loading
    /// it into the model: the forward pass reads weights directly from
    /// `params` (in [`Model::parameters`] order), so scoring a candidate
    /// skips the `set_parameters` copy entirely. The model's own
    /// parameters are untouched and results are bit-identical to
    /// `set_parameters(params)` + [`Model::evaluate_with_scratch`].
    ///
    /// Returns `None` when the model has no zero-copy path (the caller
    /// falls back to loading the parameters); `Some(Err(_))` for shape
    /// or parameter-count mismatches.
    fn evaluate_flat_params(
        &self,
        params: &[f32],
        x: &Matrix,
        y: &[usize],
        scratch: &mut EvalScratch,
    ) -> Option<Result<Evaluation, NnError>> {
        let _ = (params, x, y, scratch);
        None
    }

    /// Selects the [`MatmulBackend`](dagfl_tensor::MatmulBackend) the
    /// model's matrix products run on.
    ///
    /// Every backend is bit-identical (pinned by property tests against
    /// the naive oracle), so switching only changes speed, never results.
    /// The default implementation ignores the selection — correct for
    /// models without matmuls.
    fn set_matmul_backend(&mut self, backend: MatmulBackendKind) {
        let _ = backend;
    }

    /// Predicts the class for every row of `x`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input width does not match the model.
    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, NnError>;

    /// Clones the model into a new box.
    fn boxed_clone(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_weights_losses_by_sample_count() {
        let a = Evaluation {
            loss: 1.0,
            accuracy: 1.0,
            correct: 2,
            total: 2,
        };
        let b = Evaluation {
            loss: 3.0,
            accuracy: 0.0,
            correct: 0,
            total: 6,
        };
        let m = a.merge(b);
        assert_eq!(m.total, 8);
        assert_eq!(m.correct, 2);
        assert!((m.accuracy - 0.25).abs() < 1e-6);
        assert!((m.loss - 2.5).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Evaluation {
            loss: 1.5,
            accuracy: 0.5,
            correct: 1,
            total: 2,
        };
        let m = a.merge(Evaluation::default());
        assert_eq!(m, a);
    }

    #[test]
    fn merge_two_empties_is_default() {
        assert_eq!(
            Evaluation::default().merge(Evaluation::default()),
            Evaluation::default()
        );
    }
}
