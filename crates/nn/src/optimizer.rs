//! SGD configuration, including the FedProx proximal term.

use std::sync::Arc;

/// Configuration for a single mini-batch SGD step.
///
/// The plain update is `w ← w − lr · ∇L(w)`. When a proximal term is
/// configured (FedProx, Li et al.), the effective gradient becomes
/// `∇L(w) + μ · (w − w_ref)`, pulling local training towards the global
/// reference model `w_ref`.
///
/// # Example
///
/// ```
/// use dagfl_nn::SgdConfig;
/// use std::sync::Arc;
///
/// let plain = SgdConfig::new(0.05);
/// let global = Arc::new(vec![0.0_f32; 10]);
/// let prox = SgdConfig::new(0.05).with_proximal(0.1, global);
/// assert!(plain.proximal().is_none());
/// assert!(prox.proximal().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SgdConfig {
    learning_rate: f32,
    proximal: Option<Proximal>,
    frozen_prefix: usize,
    weight_decay: f32,
}

/// The FedProx proximal term: strength `mu` and the reference parameters.
#[derive(Debug, Clone)]
pub struct Proximal {
    mu: f32,
    reference: Arc<Vec<f32>>,
}

impl Proximal {
    /// The proximal strength μ.
    pub fn mu(&self) -> f32 {
        self.mu
    }

    /// The reference (global) parameter vector the update is pulled towards.
    pub fn reference(&self) -> &[f32] {
        &self.reference
    }
}

impl SgdConfig {
    /// Creates a plain SGD configuration with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not finite and positive.
    pub fn new(learning_rate: f32) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be finite and positive, got {learning_rate}"
        );
        Self {
            learning_rate,
            proximal: None,
            frozen_prefix: 0,
            weight_decay: 0.0,
        }
    }

    /// Adds L2 weight decay: the effective gradient gains `decay * w`.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is negative or not finite.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        assert!(
            decay.is_finite() && decay >= 0.0,
            "weight decay must be finite and non-negative, got {decay}"
        );
        self.weight_decay = decay;
        self
    }

    /// The L2 weight-decay coefficient.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// Adds a FedProx proximal term pulling towards `reference` with
    /// strength `mu`.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is negative or not finite.
    pub fn with_proximal(mut self, mu: f32, reference: Arc<Vec<f32>>) -> Self {
        assert!(
            mu.is_finite() && mu >= 0.0,
            "proximal mu must be finite and non-negative, got {mu}"
        );
        self.proximal = Some(Proximal { mu, reference });
        self
    }

    /// Freezes the first `n` parameters (in flat-vector order): their
    /// gradients are ignored during updates.
    ///
    /// This enables the partial-layer personalisation the paper names as
    /// future work (§6): early (shared) layers can be pinned while later
    /// layers specialise. The flat parameter order of [`Sequential`] is
    /// layer-by-layer, so freezing a prefix freezes whole leading layers.
    ///
    /// [`Sequential`]: crate::Sequential
    pub fn with_frozen_prefix(mut self, n: usize) -> Self {
        self.frozen_prefix = n;
        self
    }

    /// Number of frozen leading parameters.
    pub fn frozen_prefix(&self) -> usize {
        self.frozen_prefix
    }

    /// Whether the parameter at flat index `offset` may be updated.
    pub fn is_trainable(&self, offset: usize) -> bool {
        offset >= self.frozen_prefix
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// The proximal term, if configured.
    pub fn proximal(&self) -> Option<&Proximal> {
        self.proximal.as_ref()
    }

    /// The effective gradient contribution of the proximal term for the
    /// parameter at flat index `offset`, given its current value.
    ///
    /// Returns `0.0` when no proximal term is configured or the offset is
    /// outside the reference vector (e.g. architectures diverged).
    pub fn proximal_pull(&self, offset: usize, current: f32) -> f32 {
        match &self.proximal {
            Some(p) => p
                .reference
                .get(offset)
                .map_or(0.0, |&r| p.mu * (current - r)),
            None => 0.0,
        }
    }

    /// The total regularisation gradient (proximal pull + weight decay)
    /// for the parameter at flat index `offset`.
    pub fn regularization_pull(&self, offset: usize, current: f32) -> f32 {
        self.proximal_pull(offset, current) + self.weight_decay * current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_config_has_no_pull() {
        let cfg = SgdConfig::new(0.1);
        assert_eq!(cfg.proximal_pull(0, 5.0), 0.0);
        assert_eq!(cfg.learning_rate(), 0.1);
    }

    #[test]
    fn proximal_pull_is_mu_times_distance() {
        let reference = Arc::new(vec![1.0, 2.0]);
        let cfg = SgdConfig::new(0.1).with_proximal(0.5, reference);
        assert!((cfg.proximal_pull(0, 3.0) - 1.0).abs() < 1e-6);
        assert!((cfg.proximal_pull(1, 2.0) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn proximal_pull_out_of_range_is_zero() {
        let cfg = SgdConfig::new(0.1).with_proximal(0.5, Arc::new(vec![1.0]));
        assert_eq!(cfg.proximal_pull(10, 3.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_learning_rate_panics() {
        SgdConfig::new(0.0);
    }

    #[test]
    #[should_panic(expected = "proximal mu")]
    fn negative_mu_panics() {
        SgdConfig::new(0.1).with_proximal(-1.0, Arc::new(vec![]));
    }

    #[test]
    fn weight_decay_adds_l2_pull() {
        let cfg = SgdConfig::new(0.1).with_weight_decay(0.01);
        assert!((cfg.regularization_pull(0, 2.0) - 0.02).abs() < 1e-8);
        assert_eq!(cfg.weight_decay(), 0.01);
    }

    #[test]
    fn regularization_combines_prox_and_decay() {
        let cfg = SgdConfig::new(0.1)
            .with_weight_decay(0.1)
            .with_proximal(0.5, Arc::new(vec![1.0]));
        // prox: 0.5 * (3 - 1) = 1.0; decay: 0.1 * 3 = 0.3.
        assert!((cfg.regularization_pull(0, 3.0) - 1.3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "weight decay")]
    fn negative_weight_decay_panics() {
        SgdConfig::new(0.1).with_weight_decay(-0.1);
    }

    #[test]
    fn frozen_prefix_gates_trainability() {
        let cfg = SgdConfig::new(0.1).with_frozen_prefix(5);
        assert_eq!(cfg.frozen_prefix(), 5);
        assert!(!cfg.is_trainable(0));
        assert!(!cfg.is_trainable(4));
        assert!(cfg.is_trainable(5));
    }

    #[test]
    fn default_has_no_frozen_prefix() {
        let cfg = SgdConfig::new(0.1);
        assert_eq!(cfg.frozen_prefix(), 0);
        assert!(cfg.is_trainable(0));
    }

    #[test]
    fn proximal_accessors() {
        let reference = Arc::new(vec![1.0, 2.0]);
        let cfg = SgdConfig::new(0.1).with_proximal(0.25, reference);
        let p = cfg.proximal().unwrap();
        assert_eq!(p.mu(), 0.25);
        assert_eq!(p.reference(), &[1.0, 2.0]);
    }
}
