//! Reusable scratch buffers for the inference-only evaluation path.

use dagfl_tensor::Matrix;

/// Ping-pong activation buffers threaded through
/// [`Model::evaluate_with_scratch`](crate::Model::evaluate_with_scratch).
///
/// The training forward pass allocates a fresh activation matrix per
/// layer; the evaluation hot path (the accuracy-biased walk scores every
/// candidate model on the same test batch) instead alternates between the
/// two matrices held here, so a full forward pass performs **zero**
/// allocations once the buffers have grown to the model's widest layer.
/// One `EvalScratch` per evaluator is enough — buffers are reshaped on
/// every use and never carry state between calls.
///
/// # Example
///
/// ```
/// use dagfl_nn::{Dense, EvalScratch, Model, Relu, Sequential};
/// use dagfl_tensor::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = Sequential::new(vec![
///     Box::new(Dense::new(&mut rng, 4, 8)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(&mut rng, 8, 3)),
/// ]);
/// let x = Matrix::from_fn(5, 4, |r, c| (r + c) as f32 * 0.1);
/// let y = vec![0, 1, 2, 0, 1];
/// let mut scratch = EvalScratch::new();
/// let fast = model.evaluate_with_scratch(&x, &y, &mut scratch).unwrap();
/// let slow = model.evaluate(&x, &y).unwrap();
/// assert_eq!(fast, slow);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    a: Matrix,
    b: Matrix,
}

impl EvalScratch {
    /// Creates empty scratch buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Both buffers as disjoint mutable borrows, for ping-ponging
    /// activations through a layer stack.
    pub fn buffers(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.a, &mut self.b)
    }
}
