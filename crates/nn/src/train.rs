//! Reusable scratch buffers for the training forward/backward pass.

use dagfl_tensor::Matrix;

/// Ping-pong activation and gradient buffers threaded through
/// [`Sequential`](crate::Sequential)'s training step.
///
/// The training counterpart of [`EvalScratch`](crate::EvalScratch): the
/// forward pass alternates layer activations between the two activation
/// buffers and the backward pass alternates layer gradients between the
/// two gradient buffers, while parameter gradients accumulate into the
/// persistent per-layer buffers each layer owns. Once every buffer has
/// grown to the model's widest layer, a steady-state training step
/// performs **zero** heap allocations — the property the scale runs
/// (10k+ streamed clients, training dominating wall clock) rely on.
///
/// Buffers are reshaped on every use and never carry state between
/// steps; one `TrainScratch` per model is enough and [`Sequential`]
/// embeds one.
///
/// [`Sequential`]: crate::Sequential
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    act_a: Matrix,
    act_b: Matrix,
    grad_a: Matrix,
    grad_b: Matrix,
}

impl TrainScratch {
    /// Creates empty scratch buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// All four buffers as disjoint mutable borrows:
    /// `(activation_a, activation_b, gradient_a, gradient_b)`.
    pub fn parts(&mut self) -> (&mut Matrix, &mut Matrix, &mut Matrix, &mut Matrix) {
        (
            &mut self.act_a,
            &mut self.act_b,
            &mut self.grad_a,
            &mut self.grad_b,
        )
    }

    /// The data pointers of the four buffers, in [`TrainScratch::parts`]
    /// order — lets tests assert that steady-state training keeps
    /// reusing the same allocations.
    pub fn buffer_ptrs(&self) -> [*const f32; 4] {
        [
            self.act_a.as_slice().as_ptr(),
            self.act_b.as_slice().as_ptr(),
            self.grad_a.as_slice().as_ptr(),
            self.grad_b.as_slice().as_ptr(),
        ]
    }
}
