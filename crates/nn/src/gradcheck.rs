//! Numerical gradient checking for [`Model`] implementations.
//!
//! Every differentiable component in this crate is validated by comparing
//! its analytic gradient against central finite differences. The helpers
//! here are public so downstream crates adding custom models can reuse the
//! same machinery.

use dagfl_tensor::Matrix;

use crate::{Model, NnError};

/// Computes the numerical gradient of `model`'s loss on `(x, y)` by central
/// differences with step `eps`.
///
/// This is O(#parameters) forward passes — use tiny models only.
///
/// # Errors
///
/// Propagates any model evaluation error.
pub fn numerical_gradient(
    model: &mut dyn Model,
    x: &Matrix,
    y: &[usize],
    eps: f32,
) -> Result<Vec<f32>, NnError> {
    let base = model.parameters();
    let mut grad = vec![0.0f32; base.len()];
    let mut probe = base.clone();
    for i in 0..base.len() {
        probe[i] = base[i] + eps;
        model.set_parameters(&probe)?;
        let plus = model.evaluate(x, y)?.loss;
        probe[i] = base[i] - eps;
        model.set_parameters(&probe)?;
        let minus = model.evaluate(x, y)?.loss;
        probe[i] = base[i];
        grad[i] = (plus - minus) / (2.0 * eps);
    }
    model.set_parameters(&base)?;
    Ok(grad)
}

/// The maximum relative error between two gradient vectors, using the
/// standard `|a - b| / max(|a|, |b|, floor)` metric.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn max_relative_error(analytic: &[f32], numeric: &[f32], floor: f32) -> f32 {
    assert_eq!(analytic.len(), numeric.len(), "gradient lengths differ");
    analytic
        .iter()
        .zip(numeric)
        .map(|(&a, &n)| (a - n).abs() / a.abs().max(n.abs()).max(floor))
        .fold(0.0, f32::max)
}

/// Asserts that a model's analytic gradient matches finite differences on
/// the given batch.
///
/// # Panics
///
/// Panics if the relative error exceeds `tolerance` or evaluation fails.
pub fn assert_gradients_match(
    model: &mut dyn Model,
    x: &Matrix,
    y: &[usize],
    eps: f32,
    tolerance: f32,
) {
    let (_, analytic) = model
        .loss_and_gradient(x, y)
        .expect("analytic gradient failed");
    let numeric = numerical_gradient(model, x, y, eps).expect("numeric gradient failed");
    let err = max_relative_error(&analytic, &numeric, 1e-2);
    assert!(
        err < tolerance,
        "gradient mismatch: max relative error {err} exceeds tolerance {tolerance}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CharRnn, Conv2d, Dense, ImageShape, MaxPool2d, Relu, Sequential, Sigmoid, Tanh};
    use dagfl_tensor::MatmulBackendKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs the gradient check once per matmul backend: the analytic
    /// gradients must survive finite differences on the naive loops AND
    /// on the tiled kernels (the numeric gradient restores the original
    /// parameters, so the second pass starts from the same point).
    fn assert_gradients_match_on_both_backends(
        model: &mut dyn Model,
        x: &Matrix,
        y: &[usize],
        eps: f32,
        tolerance: f32,
    ) {
        for kind in [MatmulBackendKind::Naive, MatmulBackendKind::Tiled] {
            model.set_matmul_backend(kind);
            assert_gradients_match(model, x, y, eps, tolerance);
        }
    }

    fn batch(features: usize, classes: usize) -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(4, features, |r, c| {
            ((r * features + c) % 7) as f32 * 0.31 - 1.0
        });
        let y = (0..4).map(|r| r % classes).collect();
        (x, y)
    }

    #[test]
    fn dense_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new(vec![Box::new(Dense::new(&mut rng, 3, 4))]);
        let (x, y) = batch(3, 4);
        assert_gradients_match_on_both_backends(&mut model, &x, &y, 1e-2, 0.05);
    }

    #[test]
    fn mlp_relu_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(&mut rng, 4, 6)),
            Box::new(Relu::new()),
            Box::new(Dense::new(&mut rng, 6, 3)),
        ]);
        let (x, y) = batch(4, 3);
        // A small step keeps the finite differences away from the ReLU
        // kink (a pre-activation within eps of zero breaks the estimate).
        assert_gradients_match_on_both_backends(&mut model, &x, &y, 1e-3, 0.08);
    }

    #[test]
    fn mlp_tanh_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(&mut rng, 4, 5)),
            Box::new(Tanh::new()),
            Box::new(Dense::new(&mut rng, 5, 3)),
        ]);
        let (x, y) = batch(4, 3);
        assert_gradients_match_on_both_backends(&mut model, &x, &y, 1e-2, 0.08);
    }

    #[test]
    fn mlp_sigmoid_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(&mut rng, 4, 5)),
            Box::new(Sigmoid::new()),
            Box::new(Dense::new(&mut rng, 5, 2)),
        ]);
        let (x, y) = batch(4, 2);
        assert_gradients_match_on_both_backends(&mut model, &x, &y, 1e-2, 0.08);
    }

    #[test]
    fn conv_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(4);
        let shape = ImageShape::new(1, 4, 4);
        let conv = Conv2d::new(&mut rng, shape, 2, 3, 1, 1);
        let flat = conv.out_shape().len();
        let mut model = Sequential::new(vec![
            Box::new(conv),
            Box::new(Dense::new(&mut rng, flat, 2)),
        ]);
        let (x, y) = batch(16, 2);
        assert_gradients_match_on_both_backends(&mut model, &x, &y, 1e-2, 0.08);
    }

    #[test]
    fn conv_pool_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(5);
        let shape = ImageShape::new(1, 4, 4);
        let conv = Conv2d::new(&mut rng, shape, 2, 3, 1, 1);
        let pool = MaxPool2d::new(conv.out_shape(), 2, 2);
        let flat = pool.out_shape().len();
        let mut model = Sequential::new(vec![
            Box::new(conv),
            Box::new(Relu::new()),
            Box::new(pool),
            Box::new(Dense::new(&mut rng, flat, 2)),
        ]);
        // Tie-free input: identical pixel values inside a pooling window
        // make the argmax non-differentiable and break finite differences.
        let mut state = 0x9e3779b9u32;
        let x = Matrix::from_fn(4, 16, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
        });
        let y = vec![0, 1, 0, 1];
        // Max-pool argmax switches make numeric gradients noisier.
        assert_gradients_match_on_both_backends(&mut model, &x, &y, 1e-3, 0.15);
    }

    #[test]
    fn char_rnn_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = CharRnn::new(&mut rng, 5, 3, 4);
        let x = Matrix::from_fn(3, 4, |r, t| ((r + 2 * t) % 5) as f32);
        let y = vec![0, 2, 4];
        assert_gradients_match_on_both_backends(&mut model, &x, &y, 1e-2, 0.1);
    }

    #[test]
    fn max_relative_error_zero_for_identical() {
        let g = vec![1.0, -2.0, 0.0];
        assert_eq!(max_relative_error(&g, &g, 1e-3), 0.0);
    }

    #[test]
    fn max_relative_error_detects_mismatch() {
        let a = vec![1.0];
        let b = vec![2.0];
        assert!(max_relative_error(&a, &b, 1e-3) > 0.4);
    }
}
