//! 2-D convolution and max-pooling layers.
//!
//! Feature maps are stored row-per-sample with `[channel][height][width]`
//! flattening, so a batch of images is an ordinary [`Matrix`] and
//! convolutional stacks compose with [`Dense`](crate::Dense) layers without
//! explicit flatten layers. Convolution is implemented via im2col so the
//! inner loop is a single matrix product.

use dagfl_tensor::{he_uniform, MatmulBackendKind, Matrix};
use rand::Rng;

use crate::{Layer, NnError};

/// The shape of one image/feature-map sample: channels × height × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageShape {
    /// Number of channels.
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl ImageShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "image dimensions must be positive"
        );
        Self {
            channels,
            height,
            width,
        }
    }

    /// Flattened sample length `channels * height * width`.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Whether the shape holds no pixels (never true for constructed shapes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A 2-D convolution with square kernel, configurable stride and symmetric
/// zero padding.
#[derive(Clone)]
pub struct Conv2d {
    in_shape: ImageShape,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `in_channels * kernel * kernel` rows, `out_channels` columns.
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    cached_cols: Option<Matrix>,
    cached_batch: usize,
    backend: MatmulBackendKind,
}

impl Conv2d {
    /// Creates a convolution layer with He-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if the kernel, stride or padding produce an empty output map.
    pub fn new<R: Rng>(
        rng: &mut R,
        in_shape: ImageShape,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        assert!(
            in_shape.height + 2 * padding >= kernel && in_shape.width + 2 * padding >= kernel,
            "kernel larger than padded input"
        );
        let fan_in = in_shape.channels * kernel * kernel;
        let weight = he_uniform(rng, fan_in, out_channels);
        Self {
            in_shape,
            out_channels,
            kernel,
            stride,
            padding,
            weight,
            bias: Matrix::zeros(1, out_channels),
            grad_weight: Matrix::zeros(fan_in, out_channels),
            grad_bias: Matrix::zeros(1, out_channels),
            cached_cols: None,
            cached_batch: 0,
            backend: MatmulBackendKind::default(),
        }
    }

    /// Convenience constructor with stride 1 and "same" padding
    /// (`kernel / 2`), matching the LEAF CNN configuration.
    pub fn same<R: Rng>(
        rng: &mut R,
        in_shape: ImageShape,
        out_channels: usize,
        kernel: usize,
    ) -> Self {
        Self::new(rng, in_shape, out_channels, kernel, 1, kernel / 2)
    }

    /// The output feature-map shape.
    pub fn out_shape(&self) -> ImageShape {
        ImageShape {
            channels: self.out_channels,
            height: (self.in_shape.height + 2 * self.padding - self.kernel) / self.stride + 1,
            width: (self.in_shape.width + 2 * self.padding - self.kernel) / self.stride + 1,
        }
    }

    /// The input feature-map shape.
    pub fn in_shape(&self) -> ImageShape {
        self.in_shape
    }

    /// Lowers a batch into the im2col matrix
    /// (`batch * out_h * out_w` rows, `in_c * k * k` columns).
    fn im2col(&self, input: &Matrix) -> Matrix {
        let out = self.out_shape();
        let (ic, ih, iw) = (
            self.in_shape.channels,
            self.in_shape.height,
            self.in_shape.width,
        );
        let k = self.kernel;
        let mut cols = Matrix::zeros(input.rows() * out.height * out.width, ic * k * k);
        for b in 0..input.rows() {
            let sample = input.row(b);
            for oh in 0..out.height {
                for ow in 0..out.width {
                    let row_idx = (b * out.height + oh) * out.width + ow;
                    let row = cols.row_mut(row_idx);
                    for c in 0..ic {
                        for kh in 0..k {
                            let h = (oh * self.stride + kh) as isize - self.padding as isize;
                            if h < 0 || h as usize >= ih {
                                continue;
                            }
                            for kw in 0..k {
                                let w = (ow * self.stride + kw) as isize - self.padding as isize;
                                if w < 0 || w as usize >= iw {
                                    continue;
                                }
                                row[(c * k + kh) * k + kw] =
                                    sample[(c * ih + h as usize) * iw + w as usize];
                            }
                        }
                    }
                }
            }
        }
        cols
    }

    /// Scatters gradient columns back to input-shaped gradients (col2im).
    fn col2im(&self, grad_cols: &Matrix, batch: usize) -> Matrix {
        let out = self.out_shape();
        let (ic, ih, iw) = (
            self.in_shape.channels,
            self.in_shape.height,
            self.in_shape.width,
        );
        let k = self.kernel;
        let mut grad_input = Matrix::zeros(batch, self.in_shape.len());
        for b in 0..batch {
            let sample = grad_input.row_mut(b);
            for oh in 0..out.height {
                for ow in 0..out.width {
                    let row = grad_cols.row((b * out.height + oh) * out.width + ow);
                    for c in 0..ic {
                        for kh in 0..k {
                            let h = (oh * self.stride + kh) as isize - self.padding as isize;
                            if h < 0 || h as usize >= ih {
                                continue;
                            }
                            for kw in 0..k {
                                let w = (ow * self.stride + kw) as isize - self.padding as isize;
                                if w < 0 || w as usize >= iw {
                                    continue;
                                }
                                sample[(c * ih + h as usize) * iw + w as usize] +=
                                    row[(c * k + kh) * k + kw];
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn check_input(&self, input: &Matrix) -> Result<(), NnError> {
        if input.cols() != self.in_shape.len() {
            return Err(NnError::Shape(dagfl_tensor::ShapeError::new(
                "conv2d_forward",
                (input.rows(), input.cols()),
                (1, self.in_shape.len()),
            )));
        }
        Ok(())
    }

    /// Computes the forward pass given the already lowered column matrix.
    fn forward_from_cols(&self, cols: &Matrix, batch: usize) -> Result<Matrix, NnError> {
        let out = self.out_shape();
        let mut big = self.backend.as_dyn().matmul(cols, &self.weight)?;
        big.add_row_broadcast(self.bias.as_slice())?;
        // Rearrange (batch*oh*ow, out_c) -> (batch, out_c*oh*ow).
        let hw = out.height * out.width;
        let mut result = Matrix::zeros(batch, out.len());
        for b in 0..batch {
            let dst = result.row_mut(b);
            for pos in 0..hw {
                let src = big.row(b * hw + pos);
                for (c, &v) in src.iter().enumerate() {
                    dst[c * hw + pos] = v;
                }
            }
        }
        Ok(result)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        self.check_input(input)?;
        let cols = self.im2col(input);
        let out = self.forward_from_cols(&cols, input.rows())?;
        self.cached_cols = Some(cols);
        self.cached_batch = input.rows();
        Ok(out)
    }

    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
        self.check_input(input)?;
        let cols = self.im2col(input);
        self.forward_from_cols(&cols, input.rows())
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let cols = self
            .cached_cols
            .as_ref()
            .expect("backward called before forward");
        let batch = self.cached_batch;
        let out = self.out_shape();
        let hw = out.height * out.width;
        // Rearrange (batch, out_c*oh*ow) -> (batch*oh*ow, out_c).
        let mut grad_big = Matrix::zeros(batch * hw, self.out_channels);
        for b in 0..batch {
            let src = grad_output.row(b);
            for pos in 0..hw {
                let dst = grad_big.row_mut(b * hw + pos);
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = src[c * hw + pos];
                }
            }
        }
        let backend = self.backend.as_dyn();
        backend.transpose_matmul_into(cols, &grad_big, &mut self.grad_weight)?;
        grad_big.column_sums_into(&mut self.grad_bias);
        let grad_cols = backend.matmul_transpose(&grad_big, &self.weight)?;
        Ok(self.col2im(&grad_cols, batch))
    }

    fn set_backend(&mut self, backend: MatmulBackendKind) {
        self.backend = backend;
    }

    fn visit_parameters(&self, visitor: &mut dyn FnMut(&Matrix)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn apply_update(&mut self, update: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        update(&mut self.weight, &self.grad_weight);
        update(&mut self.bias, &self.grad_bias);
    }

    fn load_parameters(&mut self, source: &mut dyn FnMut(&mut Matrix)) {
        source(&mut self.weight);
        source(&mut self.bias);
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conv2d")
            .field("in_shape", &self.in_shape)
            .field("out_channels", &self.out_channels)
            .field("kernel", &self.kernel)
            .field("stride", &self.stride)
            .field("padding", &self.padding)
            .finish()
    }
}

/// Max pooling over square windows.
#[derive(Clone)]
pub struct MaxPool2d {
    in_shape: ImageShape,
    pool: usize,
    stride: usize,
    /// For each sample and output element, the flat input index of the max.
    cached_argmax: Option<Vec<Vec<usize>>>,
}

impl MaxPool2d {
    /// Creates a pooling layer with the given window and stride.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit into the input.
    pub fn new(in_shape: ImageShape, pool: usize, stride: usize) -> Self {
        assert!(pool > 0 && stride > 0, "pool and stride must be positive");
        assert!(
            in_shape.height >= pool && in_shape.width >= pool,
            "pool window larger than input"
        );
        Self {
            in_shape,
            pool,
            stride,
            cached_argmax: None,
        }
    }

    /// The output feature-map shape.
    pub fn out_shape(&self) -> ImageShape {
        ImageShape {
            channels: self.in_shape.channels,
            height: (self.in_shape.height - self.pool) / self.stride + 1,
            width: (self.in_shape.width - self.pool) / self.stride + 1,
        }
    }

    #[allow(clippy::needless_range_loop)] // b indexes input, result and argmax together
    fn pool_batch(&self, input: &Matrix) -> Result<(Matrix, Vec<Vec<usize>>), NnError> {
        if input.cols() != self.in_shape.len() {
            return Err(NnError::Shape(dagfl_tensor::ShapeError::new(
                "maxpool_forward",
                (input.rows(), input.cols()),
                (1, self.in_shape.len()),
            )));
        }
        let out = self.out_shape();
        let (ih, iw) = (self.in_shape.height, self.in_shape.width);
        let mut result = Matrix::zeros(input.rows(), out.len());
        let mut argmax = vec![vec![0usize; out.len()]; input.rows()];
        for b in 0..input.rows() {
            let sample = input.row(b);
            let dst = result.row_mut(b);
            for c in 0..out.channels {
                for oh in 0..out.height {
                    for ow in 0..out.width {
                        let mut best_idx = 0;
                        let mut best = f32::NEG_INFINITY;
                        for ph in 0..self.pool {
                            for pw in 0..self.pool {
                                let h = oh * self.stride + ph;
                                let w = ow * self.stride + pw;
                                let idx = (c * ih + h) * iw + w;
                                if sample[idx] > best {
                                    best = sample[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = (c * out.height + oh) * out.width + ow;
                        dst[out_idx] = best;
                        argmax[b][out_idx] = best_idx;
                    }
                }
            }
        }
        Ok((result, argmax))
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        let (out, argmax) = self.pool_batch(input)?;
        self.cached_argmax = Some(argmax);
        Ok(out)
    }

    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
        Ok(self.pool_batch(input)?.0)
    }

    #[allow(clippy::needless_range_loop)] // b indexes grad_output, grad_input and argmax together
    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let argmax = self
            .cached_argmax
            .as_ref()
            .expect("backward called before forward");
        let mut grad_input = Matrix::zeros(grad_output.rows(), self.in_shape.len());
        for b in 0..grad_output.rows() {
            let src = grad_output.row(b);
            let dst = grad_input.row_mut(b);
            for (out_idx, &in_idx) in argmax[b].iter().enumerate() {
                dst[in_idx] += src[out_idx];
            }
        }
        Ok(grad_input)
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for MaxPool2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaxPool2d")
            .field("in_shape", &self.in_shape)
            .field("pool", &self.pool)
            .field("stride", &self.stride)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn image_shape_len() {
        assert_eq!(ImageShape::new(3, 4, 5).len(), 60);
        assert!(!ImageShape::new(1, 1, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn image_shape_rejects_zero() {
        ImageShape::new(0, 4, 5);
    }

    #[test]
    fn conv_output_shape_valid_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(&mut rng, ImageShape::new(1, 5, 5), 2, 3, 1, 0);
        assert_eq!(conv.out_shape(), ImageShape::new(2, 3, 3));
    }

    #[test]
    fn conv_output_shape_same_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::same(&mut rng, ImageShape::new(3, 8, 8), 16, 5);
        assert_eq!(conv.out_shape(), ImageShape::new(16, 8, 8));
    }

    #[test]
    fn conv_identity_kernel_reproduces_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut rng, ImageShape::new(1, 4, 4), 1, 1, 1, 0);
        // 1x1 kernel weight = 1, bias = 0: convolution is the identity map.
        let mut first = true;
        conv.load_parameters(&mut |m| {
            m[(0, 0)] = if first { 1.0 } else { 0.0 };
            first = false;
        });
        let x = Matrix::from_fn(2, 16, |r, c| (r * 16 + c) as f32);
        let y = conv.forward(&x).unwrap();
        assert!(y.max_abs_diff(&x).unwrap() < 1e-6);
    }

    #[test]
    fn conv_known_sum_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut rng, ImageShape::new(1, 3, 3), 1, 3, 1, 0);
        // All-ones kernel, zero bias: output = sum of the input.
        let mut idx = 0;
        conv.load_parameters(&mut |m| {
            m.map_in_place(|_| if idx == 0 { 1.0 } else { 0.0 });
            idx += 1;
        });
        let x = Matrix::from_fn(1, 9, |_, c| c as f32);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 1));
        assert!((y[(0, 0)] - 36.0).abs() < 1e-5);
    }

    #[test]
    fn conv_forward_and_inference_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::same(&mut rng, ImageShape::new(2, 6, 6), 4, 3);
        let x = Matrix::from_fn(3, 72, |r, c| ((r * 72 + c) % 13) as f32 * 0.1);
        let a = conv.forward(&x).unwrap();
        let b = conv.forward_inference(&x).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn conv_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(&mut rng, ImageShape::new(2, 5, 5), 3, 3, 1, 1);
        let x = Matrix::from_fn(2, 50, |_, c| c as f32 * 0.01);
        let y = conv.forward(&x).unwrap();
        let grad = Matrix::filled(y.rows(), y.cols(), 1.0);
        let gi = conv.backward(&grad).unwrap();
        assert_eq!(gi.shape(), x.shape());
        conv.apply_update(&mut |p, g| assert_eq!(p.shape(), g.shape()));
    }

    #[test]
    fn conv_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(&mut rng, ImageShape::new(1, 4, 4), 1, 3, 1, 0);
        assert!(conv.forward(&Matrix::zeros(1, 15)).is_err());
    }

    #[test]
    fn maxpool_known_values() {
        let mut pool = MaxPool2d::new(ImageShape::new(1, 4, 4), 2, 2);
        let x = Matrix::from_fn(1, 16, |_, c| c as f32);
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 4));
        assert_eq!(y.row(0), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(ImageShape::new(1, 2, 2), 2, 2);
        let x = Matrix::from_rows(&[&[1.0, 9.0, 3.0, 4.0]]).unwrap();
        pool.forward(&x).unwrap();
        let grad = Matrix::filled(1, 1, 5.0);
        let gi = pool.backward(&grad).unwrap();
        assert_eq!(gi.row(0), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_multi_channel_independence() {
        let mut pool = MaxPool2d::new(ImageShape::new(2, 2, 2), 2, 2);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0]]).unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.row(0), &[4.0, 40.0]);
    }

    #[test]
    fn maxpool_has_no_parameters() {
        let pool = MaxPool2d::new(ImageShape::new(1, 4, 4), 2, 2);
        assert_eq!(pool.num_parameters(), 0);
    }

    #[test]
    fn conv_pool_stack_composes() {
        use crate::{Model, Sequential, SgdConfig};
        let mut rng = StdRng::seed_from_u64(9);
        let in_shape = ImageShape::new(1, 8, 8);
        let conv = Conv2d::same(&mut rng, in_shape, 4, 3);
        let pool = MaxPool2d::new(conv.out_shape(), 2, 2);
        let flat = pool.out_shape().len();
        let mut model = Sequential::new(vec![
            Box::new(conv),
            Box::new(crate::Relu::new()),
            Box::new(pool),
            Box::new(crate::Dense::new(&mut rng, flat, 3)),
        ]);
        let x = Matrix::from_fn(6, 64, |r, c| ((r + c) % 5) as f32 * 0.2);
        let y = vec![0, 1, 2, 0, 1, 2];
        let loss = model.train_batch(&x, &y, &SgdConfig::new(0.05)).unwrap();
        assert!(loss.is_finite());
    }
}
