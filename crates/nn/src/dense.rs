//! Fully connected layer.

use dagfl_tensor::{he_uniform, MatmulBackendKind, Matrix};
use rand::Rng;

use crate::{Layer, NnError};

/// A fully connected (affine) layer: `y = x W + b`.
///
/// Weights are stored as `in_features x out_features` so the forward pass is
/// a single row-major matrix product; initialisation is He-uniform, matching
/// the ReLU stacks used by the paper's CNN/MLP models. The three training
/// matmuls (forward, grad-weight, grad-input) run on the layer's selected
/// [`MatmulBackend`](dagfl_tensor::MatmulBackend).
#[derive(Clone)]
pub struct Dense {
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    cached_input: Option<Matrix>,
    backend: MatmulBackendKind,
}

impl Dense {
    /// Creates a dense layer with He-uniform weights and zero bias.
    pub fn new<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        Self {
            weight: he_uniform(rng, in_features, out_features),
            bias: Matrix::zeros(1, out_features),
            grad_weight: Matrix::zeros(in_features, out_features),
            grad_bias: Matrix::zeros(1, out_features),
            cached_input: None,
            backend: MatmulBackendKind::default(),
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.rows()
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix (`in_features x out_features`).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias row vector (`1 x out_features`).
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    fn affine(&self, input: &Matrix) -> Result<Matrix, NnError> {
        let mut out = input.matmul(&self.weight)?;
        out.add_row_broadcast(self.bias.as_slice())?;
        Ok(out)
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "Dense"
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::default();
        self.forward_train_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_train_into(&mut self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        self.backend
            .as_dyn()
            .matmul_into(input, &self.weight, out)?;
        out.add_row_broadcast(self.bias.as_slice())?;
        self.cached_input
            .get_or_insert_with(Matrix::default)
            .copy_from(input);
        Ok(())
    }

    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
        self.affine(input)
    }

    fn forward_inference_into(&self, input: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        input.matmul_into(&self.weight, out)?;
        out.add_row_broadcast(self.bias.as_slice())?;
        Ok(())
    }

    fn forward_inference_params(
        &self,
        params: &mut &[f32],
        input: &Matrix,
        out: &mut Matrix,
    ) -> Option<Result<(), NnError>> {
        // Layout per `visit_parameters`: weights (in x out), then bias.
        let (in_f, out_f) = (self.in_features(), self.out_features());
        if params.len() < in_f * out_f + out_f {
            // The caller pre-validates the total count; a short slice
            // here means an inconsistent model, so fall back.
            return None;
        }
        let (weight, rest) = params.split_at(in_f * out_f);
        let (bias, rest) = rest.split_at(out_f);
        *params = rest;
        Some(
            input
                .matmul_slice_into(weight, out_f, out)
                .and_then(|()| out.add_row_broadcast(bias))
                .map_err(NnError::from),
        )
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let mut grad_input = Matrix::default();
        self.backward_into(grad_output, &mut grad_input)?;
        Ok(grad_input)
    }

    fn backward_into(
        &mut self,
        grad_output: &Matrix,
        grad_input: &mut Matrix,
    ) -> Result<(), NnError> {
        let backend = self.backend.as_dyn();
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = x^T g ; db = column sums of g ; dx = g W^T
        backend.transpose_matmul_into(input, grad_output, &mut self.grad_weight)?;
        grad_output.column_sums_into(&mut self.grad_bias);
        backend.matmul_transpose_into(grad_output, &self.weight, grad_input)?;
        Ok(())
    }

    fn set_backend(&mut self, backend: MatmulBackendKind) {
        self.backend = backend;
    }

    fn visit_parameters(&self, visitor: &mut dyn FnMut(&Matrix)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn apply_update(&mut self, update: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        update(&mut self.weight, &self.grad_weight);
        update(&mut self.bias, &self.grad_bias);
    }

    fn load_parameters(&mut self, source: &mut dyn FnMut(&mut Matrix)) {
        source(&mut self.weight);
        source(&mut self.bias);
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for Dense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dense")
            .field("in_features", &self.in_features())
            .field("out_features", &self.out_features())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_applies_affine_map() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(&mut rng, 2, 2);
        // Overwrite with known weights.
        let mut idx = 0;
        let vals = [[1.0f32, 2.0], [3.0, 4.0]];
        layer.load_parameters(&mut |m| {
            if idx == 0 {
                for r in 0..2 {
                    for c in 0..2 {
                        m[(r, c)] = vals[r][c];
                    }
                }
            } else {
                m[(0, 0)] = 10.0;
                m[(0, 1)] = 20.0;
            }
            idx += 1;
        });
        let x = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.row(0), &[14.0, 26.0]);
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(&mut rng, 5, 3);
        let x = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32 * 0.1);
        let train = layer.forward(&x).unwrap();
        let infer = layer.forward_inference(&x).unwrap();
        assert_eq!(train, infer);
    }

    #[test]
    fn backward_shapes_are_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(&mut rng, 5, 3);
        let x = Matrix::from_fn(4, 5, |_, _| 1.0);
        layer.forward(&x).unwrap();
        let grad = Matrix::from_fn(4, 3, |_, _| 1.0);
        let grad_input = layer.backward(&grad).unwrap();
        assert_eq!(grad_input.shape(), (4, 5));
        layer.apply_update(&mut |p, g| assert_eq!(p.shape(), g.shape()));
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(&mut rng, 2, 2);
        let x = Matrix::zeros(3, 2);
        layer.forward(&x).unwrap();
        let grad = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        layer.backward(&grad).unwrap();
        let mut seen = Vec::new();
        layer.apply_update(&mut |_, g| seen.push(g.clone()));
        // Second parameter is the bias.
        assert_eq!(seen[1].row(0), &[9.0, 12.0]);
    }

    #[test]
    fn num_parameters_counts_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(&mut rng, 7, 3);
        assert_eq!(layer.num_parameters(), 7 * 3 + 3);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(&mut rng, 7, 3);
        assert!(layer.forward(&Matrix::zeros(1, 6)).is_err());
    }
}
