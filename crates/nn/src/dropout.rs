//! Inverted dropout regularisation.

use dagfl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Layer, NnError};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1 / (1 - rate)`, so
/// inference needs no rescaling (and [`Layer::forward_inference`] is the
/// identity).
///
/// The layer owns its RNG (seeded at construction) so that training runs
/// stay deterministic.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f32,
    rng: StdRng,
    cached_mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        Self {
            rate,
            rng: StdRng::seed_from_u64(seed),
            cached_mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        if self.rate == 0.0 {
            self.cached_mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask = Matrix::from_fn(input.rows(), input.cols(), |_, _| {
            if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        let out = input.hadamard(&mask)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn forward_inference(&self, input: &Matrix) -> Result<Matrix, NnError> {
        Ok(input.clone())
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        match &self.cached_mask {
            Some(mask) => Ok(grad_output.hadamard(mask)?),
            None => Ok(grad_output.clone()),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let d = Dropout::new(0.5, 0);
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(d.forward_inference(&x).unwrap(), x);
    }

    #[test]
    fn zero_rate_is_identity_in_training_too() {
        let mut d = Dropout::new(0.0, 0);
        let x = Matrix::filled(2, 2, 3.0);
        assert_eq!(d.forward(&x).unwrap(), x);
    }

    #[test]
    fn training_zeroes_roughly_rate_fraction() {
        let mut d = Dropout::new(0.5, 1);
        let x = Matrix::filled(50, 50, 1.0);
        let y = d.forward(&x).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / y.len() as f32;
        assert!((frac - 0.5).abs() < 0.05, "zero fraction {frac}");
    }

    #[test]
    fn survivors_are_scaled_to_preserve_expectation() {
        let mut d = Dropout::new(0.25, 2);
        let x = Matrix::filled(60, 60, 1.0);
        let y = d.forward(&x).unwrap();
        let mean: f32 = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} drifted");
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 1.0 / 0.75).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Matrix::filled(10, 10, 1.0);
        let y = d.forward(&x).unwrap();
        let grad = Matrix::filled(10, 10, 1.0);
        let gi = d.backward(&grad).unwrap();
        // Gradient flows exactly where activations survived.
        for (a, b) in y.as_slice().iter().zip(gi.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn has_no_parameters() {
        assert_eq!(Dropout::new(0.3, 0).num_parameters(), 0);
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rate_one_panics() {
        Dropout::new(1.0, 0);
    }

    #[test]
    fn composes_in_a_model() {
        use crate::{Dense, Model, Sequential, SgdConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(&mut rng, 4, 8)),
            Box::new(Dropout::new(0.2, 7)),
            Box::new(Dense::new(&mut rng, 8, 2)),
        ]);
        let x = Matrix::from_fn(6, 4, |r, c| ((r + c) % 3) as f32);
        let y = vec![0, 1, 0, 1, 0, 1];
        let loss = model.train_batch(&x, &y, &SgdConfig::new(0.1)).unwrap();
        assert!(loss.is_finite());
        // Inference path must be deterministic.
        let a = model.predict(&x).unwrap();
        let b = model.predict(&x).unwrap();
        assert_eq!(a, b);
    }
}
