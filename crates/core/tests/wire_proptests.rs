//! Property tests for the networked wire format and the replica layer
//! it feeds: arbitrary messages survive the encode/decode round trip
//! bit-for-bit (NaN payloads included), corrupted frames are rejected
//! rather than decoded as garbage, and a replica converges to the same
//! tangle digest no matter the order gossip arrives in.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use dagfl_core::wire::{decode, encode, read_message, write_message, MAX_FRAME, WIRE_VERSION};
use dagfl_core::{
    Envelope, GossipMessage, ModelPayload, PeerInfo, Replica, TxMessage, WireError, WireMessage,
    GENESIS_NET_ID,
};

/// Draws one `TxMessage` with arbitrary ids, parents and weight bit
/// patterns — including NaNs, infinities and negative zero, which must
/// survive the trip bitwise even though they break `==`.
fn arb_tx() -> impl Strategy<Value = TxMessage> {
    (
        (any::<u64>(), vec(any::<u64>(), 0..5)),
        (any::<bool>(), any::<u32>(), any::<u32>()),
        vec(any::<u32>(), 0..24),
    )
        .prop_map(
            |((id, parents), (has_issuer, issuer, round), bits)| TxMessage {
                id,
                parents,
                params: Arc::new(bits.into_iter().map(f32::from_bits).collect()),
                issuer: has_issuer.then_some(issuer),
                round,
            },
        )
}

/// Draws one message of every wire kind, degenerate shapes included
/// (empty snapshots, empty have-lists, empty addresses).
fn arb_message() -> impl Strategy<Value = WireMessage> {
    (
        (0u8..8, any::<u32>(), vec(any::<u64>(), 0..12)),
        vec(arb_tx(), 0..4),
        vec((any::<u32>(), 0usize..20), 0..4),
    )
        .prop_map(|((kind, client, have), transactions, peers)| match kind {
            0 => WireMessage::Hello { client },
            1 => WireMessage::Transaction(transactions.into_iter().next().unwrap_or_else(|| {
                TxMessage {
                    id: u64::from(client),
                    parents: have,
                    params: Arc::new(Vec::new()),
                    issuer: None,
                    round: 0,
                }
            })),
            2 => WireMessage::SnapshotRequest { have },
            3 => WireMessage::Snapshot { transactions },
            4 => WireMessage::Join {
                client,
                addr: "x".repeat(have.len()),
            },
            5 => WireMessage::PeerList {
                peers: peers
                    .into_iter()
                    .map(|(client, len)| PeerInfo {
                        client,
                        addr: "a".repeat(len),
                    })
                    .collect(),
            },
            6 => WireMessage::Leave { client },
            _ => WireMessage::Done { client },
        })
}

/// Frames are canonical: decoding and re-encoding reproduces the exact
/// bytes, so equality of values and equality of frames coincide (this
/// is how NaN-carrying payloads are compared without `==`).
fn assert_bitwise_round_trip(msg: &WireMessage) {
    let frame = encode(msg);
    let back = decode(&frame).expect("well-formed frame must decode");
    assert_eq!(encode(&back), frame, "{msg:?}");
}

proptest! {
    #[test]
    fn any_message_round_trips_bitwise(msg in arb_message()) {
        assert_bitwise_round_trip(&msg);
    }

    /// Fully arbitrary byte strings — not derived from any encoded
    /// message — must be *rejected*, never panic the decoder or the
    /// stream reader (a hostile or corrupted peer controls these bytes).
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
        let mut stream = bytes.as_slice();
        while let Ok(_msg) = read_message(&mut stream) {}
    }

    #[test]
    fn framed_streams_round_trip_back_to_back(msgs in vec(arb_message(), 0..6)) {
        let mut buf = Vec::new();
        for msg in &msgs {
            write_message(&mut buf, msg).unwrap();
        }
        let mut stream = buf.as_slice();
        for msg in &msgs {
            let back = read_message(&mut stream).unwrap();
            prop_assert_eq!(encode(&back), encode(msg));
        }
        prop_assert!(matches!(
            read_message(&mut stream),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn every_strict_prefix_is_rejected(msg in arb_message(), fraction in 0.0f64..1.0) {
        let frame = encode(&msg);
        let cut = ((frame.len() as f64) * fraction) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode(&frame[..cut]).is_err(), "accepted a {}-byte prefix", cut);
    }

    #[test]
    fn any_other_version_byte_is_rejected(msg in arb_message(), version in any::<u8>()) {
        let mut frame = encode(&msg);
        frame[4] = version;
        if version == WIRE_VERSION {
            prop_assert!(decode(&frame).is_ok());
        } else {
            prop_assert_eq!(
                decode(&frame),
                Err(WireError::VersionMismatch {
                    expected: WIRE_VERSION,
                    found: version,
                })
            );
        }
    }

    #[test]
    fn appended_garbage_is_rejected(msg in arb_message(), tail in vec(any::<u8>(), 1..8)) {
        let mut frame = encode(&msg);
        frame.extend_from_slice(&tail);
        prop_assert_eq!(decode(&frame), Err(WireError::TrailingBytes));
    }

    #[test]
    fn corrupt_length_prefix_never_decodes_as_the_message(
        msg in arb_message(),
        delta in 1u32..1024,
    ) {
        let mut frame = encode(&msg);
        let true_len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let lied = true_len.wrapping_add(delta);
        frame[..4].copy_from_slice(&lied.to_le_bytes());
        let outcome = decode(&frame);
        prop_assert!(
            matches!(
                outcome,
                Err(WireError::Truncated) | Err(WireError::Oversized(_))
            ),
            "length lie {} -> {:?}",
            lied,
            outcome
        );
        if (lied as usize) > MAX_FRAME {
            prop_assert!(matches!(outcome, Err(WireError::Oversized(_))));
        }
    }
}

/// Builds a line tangle plus some fan-out: every transaction's parents
/// are earlier transactions (or genesis), so the set is attachable in
/// at least one order.
fn lineage(count: usize, fanout_seed: u64) -> Vec<TxMessage> {
    (0..count)
        .map(|i| {
            let id = (i as u64) + 1;
            let parent = if i == 0 {
                GENESIS_NET_ID
            } else {
                // A deterministic "random" earlier parent (possibly
                // genesis: the modulus keeps it strictly below `id`).
                fanout_seed.wrapping_mul(id) % id
            };
            TxMessage {
                id,
                parents: vec![parent],
                params: Arc::new(vec![id as f32, fanout_seed as f32]),
                issuer: Some(i as u32),
                round: i as u32,
            }
        })
        .collect()
}

proptest! {
    /// Satellite invariant: delivery order never matters. A replica fed
    /// the same transactions in any permutation — children before
    /// parents included, exercising the solidification buffer — lands
    /// on the identical order-independent digest.
    #[test]
    fn replica_digest_is_delivery_order_independent(
        count in 1usize..12,
        fanout_seed in any::<u64>(),
        swaps in vec((0usize..12, 0usize..12), 0..16),
    ) {
        let genesis = ModelPayload::new(vec![0.0, 0.0]);
        let messages = lineage(count, fanout_seed);

        // Reference: in-order delivery, one envelope per apply call.
        let mut reference = Replica::new(genesis.clone());
        for (i, msg) in messages.iter().enumerate() {
            reference.apply(vec![Envelope {
                at: i as f64,
                message: GossipMessage::Transaction(msg.clone()),
            }]);
        }
        prop_assert_eq!(reference.buffered(), 0);

        // Shuffled: apply the generated swaps, deliver as one batch.
        let mut shuffled = messages.clone();
        for &(a, b) in &swaps {
            let (a, b) = (a % count, b % count);
            shuffled.swap(a, b);
        }
        let mut replica = Replica::new(genesis);
        replica.apply(
            shuffled
                .into_iter()
                .map(|m| Envelope {
                    at: 0.0,
                    message: GossipMessage::Transaction(m),
                })
                .collect(),
        );
        prop_assert_eq!(replica.buffered(), 0, "a solid set must fully solidify");
        prop_assert_eq!(replica.digest(), reference.digest());

        // And a late joiner catching up from a snapshot agrees too.
        let mut late = Replica::new(ModelPayload::new(vec![0.0, 0.0]));
        let have: HashSet<u64> = late.network_ids().iter().copied().collect();
        late.apply(vec![Envelope {
            at: 0.0,
            message: GossipMessage::Snapshot(reference.snapshot_messages(&have)),
        }]);
        prop_assert_eq!(late.digest(), reference.digest());
    }
}
