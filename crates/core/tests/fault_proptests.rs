//! Property tests for the fault-injection seam: an *arbitrary* valid
//! [`FaultPlan`] — any mix of drops, duplicates, reorders, latency
//! spikes, partitions and crashes — must never deadlock or panic the
//! asynchronous simulation, the replicas must converge to one digest
//! after anti-entropy reconciliation, and the same seed must reproduce
//! the same faulted run exactly.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;

use dagfl_core::{
    AsyncConfig, AsyncSimulation, CrashWindow, DagConfig, DelayModel, FaultPlan, ModelFactory,
    PartitionWindow,
};
use dagfl_datasets::{fmnist_clustered, FmnistConfig};
use dagfl_nn::{Dense, Model, Sequential};

const CLIENTS: usize = 4;

fn tiny_factory(features: usize) -> ModelFactory {
    Arc::new(move |rng: &mut StdRng| {
        Box::new(Sequential::new(vec![Box::new(Dense::new(
            rng, features, 10,
        ))])) as Box<dyn Model>
    })
}

fn faulted_sim(seed: u64, plan: FaultPlan) -> AsyncSimulation {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: CLIENTS,
        samples_per_client: 20,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let config = AsyncConfig {
        dag: DagConfig {
            local_batches: 1,
            seed,
            ..DagConfig::default()
        },
        total_activations: 16,
        mean_interarrival: 1.0,
        delay: DelayModel::constant(1.0),
        gossip_fanout: 2,
        ..AsyncConfig::default()
    };
    AsyncSimulation::try_new_with_faults(config, dataset, tiny_factory(features), plan)
        .expect("generated plans are valid")
}

/// Draws an arbitrary valid fault plan: probabilities across their full
/// useful range, up to two partition windows (possibly overlapping,
/// possibly degenerate `start == heal`) and up to two crash windows
/// (possibly never restarting).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0.0f64..0.5, 0.0f64..0.4),
        (0.0f64..0.4, 0.0f64..0.4, 0.0f64..4.0),
        vec((0.0f64..16.0, 0.0f64..10.0, 1usize..CLIENTS), 0..3),
        vec(
            (0usize..CLIENTS, 0.0f64..16.0, 0.0f64..8.0, any::<bool>()),
            0..3,
        ),
    )
        .prop_map(
            |((drop, duplicate), (reorder, extra_delay, delay_boost), partitions, crashes)| {
                FaultPlan {
                    drop,
                    duplicate,
                    reorder,
                    extra_delay,
                    delay_boost,
                    partitions: partitions
                        .into_iter()
                        .map(|(start, len, split)| PartitionWindow {
                            start,
                            heal: start + len,
                            split,
                        })
                        .collect(),
                    crashes: crashes
                        .into_iter()
                        .map(|(peer, at, len, forever)| CrashWindow {
                            peer,
                            at,
                            restart: if forever { f64::INFINITY } else { at + len },
                        })
                        .collect(),
                }
            },
        )
}

/// Everything observable about one faulted run, for exact comparison.
fn run_fingerprint(seed: u64, plan: FaultPlan) -> (usize, usize, usize, usize, Vec<u64>) {
    let mut sim = faulted_sim(seed, plan);
    sim.run().expect("faulted run completes");
    sim.reconcile_replicas();
    let m = sim.metrics();
    let digests = (0..CLIENTS).map(|c| sim.replica_digest(c)).collect();
    (
        m.delivered,
        m.dropped,
        m.duplicated,
        m.transactions,
        digests,
    )
}

proptest! {
    // Each case trains a (tiny) model for 16 activations; a handful of
    // cases already explores drops, duplicates, reorders, partitions
    // and crashes jointly without making CI crawl.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// No fault schedule may wedge the event loop: the run completes,
    /// and after reconciliation every replica holds the same tangle.
    #[test]
    fn any_fault_schedule_completes_and_converges(
        plan in arb_plan(),
        seed in 0u64..1_000,
    ) {
        let mut sim = faulted_sim(seed, plan);
        sim.run().expect("faulted run completes");
        sim.reconcile_replicas();
        let digest = sim.replica_digest(0);
        for client in 1..CLIENTS {
            prop_assert_eq!(sim.replica_digest(client), digest);
        }
    }

    /// The fault stream is derived from the master seed alone, so the
    /// same seed and plan reproduce the run bit-for-bit: same delivery
    /// counters, same tangle, same per-replica digests.
    #[test]
    fn same_seed_and_plan_reproduce_the_faulted_run(plan in arb_plan()) {
        prop_assert_eq!(
            run_fingerprint(7, plan.clone()),
            run_fingerprint(7, plan)
        );
    }
}
