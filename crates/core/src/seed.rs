//! Deterministic derivation of independent RNG stream seeds.
//!
//! Layered experiment infrastructure keeps stacking parallelism: rounds
//! fan clients out over threads, and the sweep engine fans whole
//! scenarios out over a worker pool. Every layer needs its own RNG
//! stream, and the streams must depend only on *data* (a master seed
//! plus a stable stream index) — never on scheduling — or results stop
//! being reproducible. [`derive_seed`] is the one canonical mixer for
//! that job.

/// Derives an independent stream seed from a master seed and a stream
/// index.
///
/// The mix is a SplitMix64 finalizer over `master + f(stream)`: cheap,
/// stateless, and avalanche-complete, so adjacent stream indices (0, 1,
/// 2, ...) produce statistically unrelated seeds instead of the nearly
/// identical internal states that `master + stream` would give a
/// counter-based generator. The function is pure — callers may evaluate
/// it in any order, on any thread, and always obtain the same seed for
/// the same `(master, stream)` pair.
///
/// # Example
///
/// ```
/// use dagfl_core::derive_seed;
///
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// // Pure: the same coordinates always give the same seed.
/// assert_eq!(a, derive_seed(42, 0));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // SplitMix64 (Steele, Lea & Flood 2014): the golden-gamma increment
    // separates streams, the finalizer mixes master and stream bits.
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_and_order_independent() {
        let forward: Vec<u64> = (0..8).map(|s| derive_seed(7, s)).collect();
        let mut backward: Vec<u64> = (0..8).rev().map(|s| derive_seed(7, s)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn adjacent_streams_and_masters_differ() {
        for s in 0..16u64 {
            assert_ne!(derive_seed(42, s), derive_seed(42, s + 1), "stream {s}");
            assert_ne!(derive_seed(s, 0), derive_seed(s + 1, 0), "master {s}");
        }
    }

    #[test]
    fn zero_inputs_do_not_collapse() {
        // A naive xor/add mixer maps (0, 0) to 0; the finalizer must not.
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
    }

    #[test]
    fn seeds_spread_across_the_low_bits() {
        // Derived seeds feed seed_from_u64; their low bits must vary.
        let distinct: std::collections::BTreeSet<u64> =
            (0..64).map(|s| derive_seed(1, s) & 0xFF).collect();
        assert!(
            distinct.len() > 32,
            "only {} distinct low bytes",
            distinct.len()
        );
    }
}
