//! Per-round and specialization metrics.

use std::time::Duration;

use dagfl_graphs::Graph;

use crate::ModelTangle;

/// Builds the derived client graph `G_clients` (§4.3) from a tangle: the
/// edge weight between two clients is the number of direct approvals
/// between their transactions, in either direction. Genesis approvals and
/// self-approvals are skipped.
pub fn client_graph_of(tangle: &ModelTangle, num_clients: usize) -> Graph {
    let mut graph = Graph::new(num_clients);
    for tx in tangle.iter() {
        let Some(a) = tx.issuer() else { continue };
        for &parent in tx.parents() {
            let Ok(parent_tx) = tangle.get(parent) else {
                continue;
            };
            let Some(b) = parent_tx.issuer() else {
                continue;
            };
            if a != b {
                graph.add_edge(a as usize, b as usize, 1.0);
            }
        }
    }
    graph
}

/// The approval pureness (Table 2) of a tangle: the fraction of approval
/// edges whose endpoints were published by clients of the same
/// ground-truth cluster. Returns 1.0 when no qualifying approvals exist.
pub fn approval_pureness_of(tangle: &ModelTangle, clusters: &[usize]) -> f64 {
    let mut total = 0usize;
    let mut pure = 0usize;
    for tx in tangle.iter() {
        let Some(a) = tx.issuer() else { continue };
        for &parent in tx.parents() {
            let Ok(parent_tx) = tangle.get(parent) else {
                continue;
            };
            let Some(b) = parent_tx.issuer() else {
                continue;
            };
            total += 1;
            if clusters[a as usize] == clusters[b as usize] {
                pure += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        pure as f64 / total as f64
    }
}

/// Aggregated metrics of one simulation round.
#[derive(Debug, Clone)]
pub struct RoundMetrics {
    /// Round index (0-based).
    pub round: usize,
    /// Ids of the clients active in this round.
    pub active_clients: Vec<u32>,
    /// How many of them published a transaction.
    pub published: usize,
    /// Post-training accuracy of each active client on its local test data
    /// (the quantity plotted in Figures 6–10).
    pub accuracies: Vec<f32>,
    /// Post-training loss of each active client.
    pub losses: Vec<f32>,
    /// Reference (averaged-parents) accuracy of each active client before
    /// training.
    pub reference_accuracies: Vec<f32>,
    /// Mean wall-clock duration of tip selection per active client
    /// (Figure 15).
    pub mean_walk_duration: Duration,
    /// Total candidate evaluations across all active clients' walks.
    pub candidates_evaluated: usize,
    /// Total walk steps across all active clients.
    pub walk_steps: usize,
    /// Candidate evaluations that ran a real forward pass this round
    /// (walks and publish gates of all active clients).
    pub fresh_evaluations: usize,
    /// Candidate evaluations answered from per-client accuracy caches.
    pub cached_evaluations: usize,
}

impl RoundMetrics {
    /// Mean post-training accuracy over the active clients.
    pub fn mean_accuracy(&self) -> f32 {
        mean(&self.accuracies)
    }

    /// Mean post-training loss over the active clients.
    pub fn mean_loss(&self) -> f32 {
        mean(&self.losses)
    }

    /// Mean reference accuracy over the active clients.
    pub fn mean_reference_accuracy(&self) -> f32 {
        mean(&self.reference_accuracies)
    }

    /// Fraction of candidate evaluations that were fresh (forward
    /// passes) rather than cache hits; `0.0` when nothing was evaluated.
    pub fn fresh_eval_ratio(&self) -> f64 {
        crate::EvalCounters {
            fresh: self.fresh_evaluations,
            cached: self.cached_evaluations,
        }
        .fresh_ratio()
    }
}

fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// The §4.3 specialization metrics of the derived client graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecializationMetrics {
    /// Newman modularity of the Louvain partition of `G_clients`.
    pub modularity: f64,
    /// Number of Louvain partitions (Figure 5b).
    pub partitions: usize,
    /// Misclassification fraction against the ground-truth clusters
    /// (Figure 5c).
    pub misclassification: f64,
    /// Approval pureness: fraction of approvals that stay within one
    /// ground-truth cluster (Table 2).
    pub approval_pureness: f64,
    /// The Louvain community label per client (for Figure 14-style
    /// analyses).
    pub partition: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(accs: Vec<f32>, losses: Vec<f32>) -> RoundMetrics {
        RoundMetrics {
            round: 0,
            active_clients: vec![],
            published: 0,
            accuracies: accs,
            losses,
            reference_accuracies: vec![],
            mean_walk_duration: Duration::ZERO,
            candidates_evaluated: 0,
            walk_steps: 0,
            fresh_evaluations: 0,
            cached_evaluations: 0,
        }
    }

    #[test]
    fn means_are_computed() {
        let m = metrics(vec![0.5, 1.0], vec![2.0, 4.0]);
        assert!((m.mean_accuracy() - 0.75).abs() < 1e-6);
        assert!((m.mean_loss() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_means_are_zero() {
        let m = metrics(vec![], vec![]);
        assert_eq!(m.mean_accuracy(), 0.0);
        assert_eq!(m.mean_loss(), 0.0);
        assert_eq!(m.mean_reference_accuracy(), 0.0);
        assert_eq!(m.fresh_eval_ratio(), 0.0);
    }

    #[test]
    fn fresh_eval_ratio_is_a_fraction() {
        let mut m = metrics(vec![], vec![]);
        m.fresh_evaluations = 3;
        m.cached_evaluations = 9;
        assert!((m.fresh_eval_ratio() - 0.25).abs() < 1e-12);
    }
}
