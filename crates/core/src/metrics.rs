//! Per-round and specialization metrics.

use std::time::Duration;

use dagfl_graphs::Graph;
use dagfl_tangle::{TangleRead, TxId};

use crate::ModelPayload;

/// Builds the derived client graph `G_clients` (§4.3) from a tangle: the
/// edge weight between two clients is the number of direct approvals
/// between their transactions, in either direction. Genesis approvals and
/// self-approvals are skipped.
///
/// Generic over the storage backend; for the simulators' hot paths the
/// graph is maintained incrementally (see [`ClientGraphTracker`]) and this
/// full re-scan doubles as the regression oracle.
pub fn client_graph_of<T: TangleRead<ModelPayload>>(tangle: &T, num_clients: usize) -> Graph {
    let mut graph = Graph::new(num_clients);
    let mut parents = Vec::new();
    for index in 0..tangle.len() as u64 {
        let id = TxId::from_index(index);
        let Ok(Some(a)) = tangle.issuer_of(id) else {
            continue;
        };
        if tangle.parents_into(id, &mut parents).is_err() {
            continue;
        }
        for &parent in &parents {
            let Ok(Some(b)) = tangle.issuer_of(parent) else {
                continue;
            };
            if a != b {
                graph.add_edge(a as usize, b as usize, 1.0);
            }
        }
    }
    graph
}

/// The approval pureness (Table 2) of a tangle: the fraction of approval
/// edges whose endpoints were published by clients of the same
/// ground-truth cluster. Returns 1.0 when no qualifying approvals exist.
pub fn approval_pureness_of<T: TangleRead<ModelPayload>>(tangle: &T, clusters: &[usize]) -> f64 {
    let mut total = 0usize;
    let mut pure = 0usize;
    let mut parents = Vec::new();
    for index in 0..tangle.len() as u64 {
        let id = TxId::from_index(index);
        let Ok(Some(a)) = tangle.issuer_of(id) else {
            continue;
        };
        if tangle.parents_into(id, &mut parents).is_err() {
            continue;
        }
        for &parent in &parents {
            let Ok(Some(b)) = tangle.issuer_of(parent) else {
                continue;
            };
            total += 1;
            if clusters[a as usize] == clusters[b as usize] {
                pure += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        pure as f64 / total as f64
    }
}

/// FNV-1a over a sequence of little-endian `u64` words.
fn fnv_mix(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h = (*h ^ u64::from(byte)).wrapping_mul(0x1000_0000_01b3);
    }
}

/// A deterministic digest of a tangle's full contents — parameter bits,
/// issuers, rounds and the approval structure — for cheap equality
/// checks between runs (e.g. `--jobs 1` vs `--jobs N`, or any two
/// worker counts of the async event loop).
///
/// The digest is *content-addressed*: each transaction hashes to an
/// FNV-1a over its own payload/issuer/round plus an order-independent
/// combination of its parents' content hashes, and the per-transaction
/// hashes are summed with wrapping addition. Dense ids never enter the
/// hash, so the digest is independent of the storage backend, the
/// iteration order *and the insertion order* — any two
/// dependency-respecting interleavings of the same transactions agree
/// (up to hash collisions).
pub fn tangle_digest<T: TangleRead<ModelPayload>>(tangle: &T) -> u64 {
    let len = tangle.len();
    // Pass 1: per-transaction content hashes (payload, issuer, round).
    let mut content = vec![0u64; len];
    for index in 0..len as u64 {
        let id = TxId::from_index(index);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        if let Ok(payload) = tangle.payload_of(id) {
            for &p in payload.params() {
                fnv_mix(&mut h, u64::from(p.to_bits()));
            }
        }
        if let Ok(issuer) = tangle.issuer_of(id) {
            fnv_mix(&mut h, issuer.map_or(u64::MAX, u64::from));
        }
        if let Ok(round) = tangle.round_of(id) {
            fnv_mix(&mut h, u64::from(round));
        }
        content[index as usize] = h;
    }
    // Pass 2: fold in the approval structure. Parents always precede
    // children (the `TangleRead` contract), so their content hashes are
    // ready; combining them by wrapping sum keeps the digest independent
    // of parent order within a transaction.
    let mut digest = 0u64;
    let mut parents = Vec::new();
    for index in 0..len as u64 {
        let id = TxId::from_index(index);
        let mut h = content[index as usize];
        if tangle.parents_into(id, &mut parents).is_ok() {
            fnv_mix(&mut h, parents.len() as u64);
            let mut combined = 0u64;
            for parent in &parents {
                combined = combined.wrapping_add(content[parent.index() as usize]);
            }
            fnv_mix(&mut h, combined);
        }
        digest = digest.wrapping_add(h);
    }
    digest
}

/// Incrementally-maintained client graph and pureness counters: the
/// adjacency that [`client_graph_of`] and [`approval_pureness_of`] derive
/// by re-scanning the whole tangle, updated in `O(parents)` per published
/// transaction instead.
///
/// Both simulators record every attached transaction here at publish
/// time; the full re-scans stay available as regression oracles.
#[derive(Debug, Clone)]
pub struct ClientGraphTracker {
    graph: Graph,
    clusters: Vec<usize>,
    approvals: usize,
    pure_approvals: usize,
}

impl ClientGraphTracker {
    /// An empty tracker for `clusters.len()` clients with the given
    /// ground-truth cluster labels.
    pub fn new(clusters: Vec<usize>) -> Self {
        Self {
            graph: Graph::new(clusters.len()),
            clusters,
            approvals: 0,
            pure_approvals: 0,
        }
    }

    /// Records one published transaction: `issuer` approving the
    /// transactions issued by `parent_issuers` (use `None` for the
    /// genesis, which carries no issuer).
    pub fn record(&mut self, issuer: u32, parent_issuers: &[Option<u32>]) {
        for parent in parent_issuers.iter().flatten() {
            self.approvals += 1;
            if self.clusters[issuer as usize] == self.clusters[*parent as usize] {
                self.pure_approvals += 1;
            }
            if *parent != issuer {
                self.graph.add_edge(issuer as usize, *parent as usize, 1.0);
            }
        }
    }

    /// The derived client graph accumulated so far.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The approval pureness accumulated so far (1.0 when no qualifying
    /// approvals exist, matching [`approval_pureness_of`]).
    pub fn approval_pureness(&self) -> f64 {
        if self.approvals == 0 {
            1.0
        } else {
            self.pure_approvals as f64 / self.approvals as f64
        }
    }
}

/// Aggregated metrics of one simulation round.
#[derive(Debug, Clone)]
pub struct RoundMetrics {
    /// Round index (0-based).
    pub round: usize,
    /// Ids of the clients active in this round.
    pub active_clients: Vec<u32>,
    /// How many of them published a transaction.
    pub published: usize,
    /// Post-training accuracy of each active client on its local test data
    /// (the quantity plotted in Figures 6–10).
    pub accuracies: Vec<f32>,
    /// Post-training loss of each active client.
    pub losses: Vec<f32>,
    /// Reference (averaged-parents) accuracy of each active client before
    /// training.
    pub reference_accuracies: Vec<f32>,
    /// Mean wall-clock duration of tip selection per active client
    /// (Figure 15).
    pub mean_walk_duration: Duration,
    /// Total candidate evaluations across all active clients' walks.
    pub candidates_evaluated: usize,
    /// Total walk steps across all active clients.
    pub walk_steps: usize,
    /// Candidate evaluations that ran a real forward pass this round
    /// (walks and publish gates of all active clients).
    pub fresh_evaluations: usize,
    /// Candidate evaluations answered from per-client accuracy caches.
    pub cached_evaluations: usize,
}

impl RoundMetrics {
    /// Mean post-training accuracy over the active clients.
    pub fn mean_accuracy(&self) -> f32 {
        mean(&self.accuracies)
    }

    /// Mean post-training loss over the active clients.
    pub fn mean_loss(&self) -> f32 {
        mean(&self.losses)
    }

    /// Mean reference accuracy over the active clients.
    pub fn mean_reference_accuracy(&self) -> f32 {
        mean(&self.reference_accuracies)
    }

    /// Fraction of candidate evaluations that were fresh (forward
    /// passes) rather than cache hits; `0.0` when nothing was evaluated.
    pub fn fresh_eval_ratio(&self) -> f64 {
        crate::EvalCounters {
            fresh: self.fresh_evaluations,
            cached: self.cached_evaluations,
        }
        .fresh_ratio()
    }
}

fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// The §4.3 specialization metrics of the derived client graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecializationMetrics {
    /// Newman modularity of the Louvain partition of `G_clients`.
    pub modularity: f64,
    /// Number of Louvain partitions (Figure 5b).
    pub partitions: usize,
    /// Misclassification fraction against the ground-truth clusters
    /// (Figure 5c).
    pub misclassification: f64,
    /// Approval pureness: fraction of approvals that stay within one
    /// ground-truth cluster (Table 2).
    pub approval_pureness: f64,
    /// The Louvain community label per client (for Figure 14-style
    /// analyses).
    pub partition: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(accs: Vec<f32>, losses: Vec<f32>) -> RoundMetrics {
        RoundMetrics {
            round: 0,
            active_clients: vec![],
            published: 0,
            accuracies: accs,
            losses,
            reference_accuracies: vec![],
            mean_walk_duration: Duration::ZERO,
            candidates_evaluated: 0,
            walk_steps: 0,
            fresh_evaluations: 0,
            cached_evaluations: 0,
        }
    }

    #[test]
    fn means_are_computed() {
        let m = metrics(vec![0.5, 1.0], vec![2.0, 4.0]);
        assert!((m.mean_accuracy() - 0.75).abs() < 1e-6);
        assert!((m.mean_loss() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_means_are_zero() {
        let m = metrics(vec![], vec![]);
        assert_eq!(m.mean_accuracy(), 0.0);
        assert_eq!(m.mean_loss(), 0.0);
        assert_eq!(m.mean_reference_accuracy(), 0.0);
        assert_eq!(m.fresh_eval_ratio(), 0.0);
    }

    #[test]
    fn fresh_eval_ratio_is_a_fraction() {
        let mut m = metrics(vec![], vec![]);
        m.fresh_evaluations = 3;
        m.cached_evaluations = 9;
        assert!((m.fresh_eval_ratio() - 0.25).abs() < 1e-12);
    }
}
