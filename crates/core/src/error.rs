//! The crate-wide error type, unifying model and ledger failures.

use std::error::Error;
use std::fmt;

use dagfl_nn::NnError;
use dagfl_tangle::TangleError;

/// Errors produced by the Specializing-DAG simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model operation failed.
    Nn(NnError),
    /// A tangle operation failed.
    Tangle(TangleError),
    /// The configuration is inconsistent with the dataset.
    Config(String),
    /// A single configuration field failed validation.
    InvalidField {
        /// Dotted path of the offending field (e.g. `delay.slow_fraction`).
        field: &'static str,
        /// The rejected value, formatted for display.
        value: String,
        /// Human-readable constraint the value violated.
        constraint: &'static str,
    },
    /// A networked-transport operation failed (socket or wire format).
    Network(crate::WireError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "model error: {e}"),
            CoreError::Tangle(e) => write!(f, "tangle error: {e}"),
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
            CoreError::InvalidField {
                field,
                value,
                constraint,
            } => {
                write!(f, "invalid value `{value}` for `{field}`: {constraint}")
            }
            CoreError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Tangle(e) => Some(e),
            CoreError::Network(e) => Some(e),
            CoreError::Config(_) | CoreError::InvalidField { .. } => None,
        }
    }
}

impl CoreError {
    /// Shorthand for an [`CoreError::InvalidField`] validation error.
    pub(crate) fn invalid_field(
        field: &'static str,
        value: impl fmt::Display,
        constraint: &'static str,
    ) -> Self {
        CoreError::InvalidField {
            field,
            value: value.to_string(),
            constraint,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<TangleError> for CoreError {
    fn from(e: TangleError) -> Self {
        CoreError::Tangle(e)
    }
}

impl From<crate::WireError> for CoreError {
    fn from(e: crate::WireError) -> Self {
        CoreError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e: CoreError = NnError::ParameterCount {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(Error::source(&e).is_some());
        let e: CoreError = TangleError::MissingParents.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CoreError::Config("bad".into())).is_none());
    }

    #[test]
    fn display_is_informative() {
        let e = CoreError::Config("clients_per_round exceeds clients".into());
        assert!(e.to_string().contains("clients_per_round"));
    }

    #[test]
    fn invalid_field_names_field_value_and_constraint() {
        let e = CoreError::invalid_field("delay.jitter", -0.5, "must be non-negative and finite");
        let msg = e.to_string();
        assert!(msg.contains("delay.jitter"), "{msg}");
        assert!(msg.contains("-0.5"), "{msg}");
        assert!(msg.contains("non-negative"), "{msg}");
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
