//! Network and compute heterogeneity models for the asynchronous
//! execution mode.
//!
//! A real peer-to-peer deployment has neither uniform links nor uniform
//! hardware: publications reach different peers after different delays,
//! and slow devices both train longer and activate less often. The
//! round simulator abstracts all of this away; the asynchronous
//! simulator ([`AsyncSimulation`](crate::AsyncSimulation)) models it
//! explicitly through two pluggable pieces:
//!
//! * [`DelayModel`] — samples the propagation delay of one publication
//!   over one link (publisher → receiver), and
//! * [`ComputeProfile`] — assigns every client a compute-speed factor
//!   that scales both its Poisson activation rate and its training
//!   duration.

use rand::Rng;

use crate::CoreError;

/// Per-link propagation delay of a published transaction.
///
/// A *link* is one `(publisher, receiver)` pair; the model is sampled
/// once per publication per receiver, so two receivers of the same
/// transaction generally see it at different logical times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Every link delivers after exactly `delay` logical time units.
    /// `Constant { delay: 0.0 }` is the instantaneous broadcast of the
    /// original event-queue prototype: a publication is visible to
    /// every client from the moment it is published.
    Constant {
        /// The fixed propagation delay.
        delay: f64,
    },
    /// Uniform jitter around a base latency: each link sample is drawn
    /// from `base + U(0, jitter)`.
    UniformJitter {
        /// Minimum propagation delay.
        base: f64,
        /// Width of the uniform jitter band added on top of `base`.
        jitter: f64,
    },
    /// Heterogeneous slow/fast cohorts: each client is assigned to the
    /// slow cohort with probability `slow_fraction` (sampled once per
    /// simulation from the master seed). A link is slow when *either*
    /// endpoint is slow — its base delay is `slow` instead of `fast` —
    /// and every sample adds `U(0, jitter)` on top.
    Cohorts {
        /// Probability that a client lands in the slow cohort.
        slow_fraction: f64,
        /// Base delay of links between two fast-cohort clients.
        fast: f64,
        /// Base delay of links touching at least one slow client.
        slow: f64,
        /// Width of the uniform jitter band added to every sample.
        jitter: f64,
    },
}

impl DelayModel {
    /// A constant per-link delay (`0.0` = instantaneous broadcast).
    pub fn constant(delay: f64) -> Self {
        DelayModel::Constant { delay }
    }

    /// Checks every parameter (non-negative and finite; fractions in
    /// `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidField`] naming the offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        let check = |v: f64, field: &'static str| {
            if v >= 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(CoreError::invalid_field(
                    field,
                    v,
                    "must be non-negative and finite",
                ))
            }
        };
        match *self {
            DelayModel::Constant { delay } => check(delay, "delay.delay"),
            DelayModel::UniformJitter { base, jitter } => {
                check(base, "delay.base")?;
                check(jitter, "delay.jitter")
            }
            DelayModel::Cohorts {
                slow_fraction,
                fast,
                slow,
                jitter,
            } => {
                if !(0.0..=1.0).contains(&slow_fraction) {
                    return Err(CoreError::invalid_field(
                        "delay.slow_fraction",
                        slow_fraction,
                        "must be in [0, 1]",
                    ));
                }
                check(fast, "delay.fast")?;
                check(slow, "delay.slow")?;
                check(jitter, "delay.jitter")
            }
        }
    }

    /// The slow-cohort fraction of this model (`0.0` for the variants
    /// without cohorts).
    pub fn slow_fraction(&self) -> f64 {
        match *self {
            DelayModel::Cohorts { slow_fraction, .. } => slow_fraction,
            _ => 0.0,
        }
    }

    /// Assigns the network cohort of every client (`true` = slow).
    /// Only the [`DelayModel::Cohorts`] variant produces slow clients.
    pub(crate) fn assign_cohorts<R: Rng>(&self, num_clients: usize, rng: &mut R) -> Vec<bool> {
        match *self {
            DelayModel::Cohorts { slow_fraction, .. } => (0..num_clients)
                .map(|_| rng.gen::<f64>() < slow_fraction)
                .collect(),
            _ => vec![false; num_clients],
        }
    }

    /// Samples the delay of one publication over one link.
    pub(crate) fn sample<R: Rng>(
        &self,
        publisher_slow: bool,
        receiver_slow: bool,
        rng: &mut R,
    ) -> f64 {
        match *self {
            DelayModel::Constant { delay } => delay,
            DelayModel::UniformJitter { base, jitter } => base + sample_jitter(jitter, rng),
            DelayModel::Cohorts {
                fast, slow, jitter, ..
            } => {
                let base = if publisher_slow || receiver_slow {
                    slow
                } else {
                    fast
                };
                base + sample_jitter(jitter, rng)
            }
        }
    }
}

impl Default for DelayModel {
    /// A constant two-time-unit delay, matching the historical
    /// `visibility_delay` default of the event-queue prototype.
    fn default() -> Self {
        DelayModel::Constant { delay: 2.0 }
    }
}

fn sample_jitter<R: Rng>(jitter: f64, rng: &mut R) -> f64 {
    if jitter > 0.0 {
        rng.gen_range(0.0..jitter)
    } else {
        0.0
    }
}

/// Per-client compute-speed factors.
///
/// A client with speed `s` activates with Poisson rate `s /
/// mean_interarrival` (it trains as often as its resources permit,
/// §5.3.3) and finishes one local-training pass after `train_time / s`
/// logical time units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ComputeProfile {
    /// Every client runs at speed 1.0 (the round simulator's implicit
    /// assumption).
    #[default]
    Uniform,
    /// A fraction of clients runs `slowdown`× slower than the rest:
    /// they activate less often and hold their selected tips longer
    /// while training — the regime in which stale-tip handling starts
    /// to matter. The compute cohort is sampled independently of any
    /// network cohort.
    TwoSpeed {
        /// Probability that a client lands in the slow cohort.
        slow_fraction: f64,
        /// How many times slower the slow cohort is (≥ 1.0).
        slowdown: f64,
    },
    /// The network slow cohort of [`DelayModel::Cohorts`] is also
    /// compute-slow: exactly the clients with slow links run
    /// `slowdown`× slower. This is the realistic straggler regime —
    /// cheap devices tend to have both poor connectivity and poor
    /// compute — and what `dagfl async --delay-model cohorts
    /// --slowdown ...` constructs. Under a delay model without
    /// cohorts, every client runs at speed 1.0.
    MatchNetworkCohort {
        /// How many times slower the slow cohort is (≥ 1.0).
        slowdown: f64,
    },
}

impl ComputeProfile {
    /// Checks every parameter (fractions in `[0, 1]`, slowdown ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidField`] naming the offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        match *self {
            ComputeProfile::Uniform => Ok(()),
            ComputeProfile::TwoSpeed {
                slow_fraction,
                slowdown,
            } => {
                if !(0.0..=1.0).contains(&slow_fraction) {
                    return Err(CoreError::invalid_field(
                        "compute.slow_fraction",
                        slow_fraction,
                        "must be in [0, 1]",
                    ));
                }
                check_slowdown(slowdown)
            }
            ComputeProfile::MatchNetworkCohort { slowdown } => check_slowdown(slowdown),
        }
    }

    /// The expected mean speed over all clients, given the network
    /// cohort's slow fraction (used to put execution modes on equal
    /// expected logical-time budgets).
    pub fn expected_mean_speed(&self, network_slow_fraction: f64) -> f64 {
        match *self {
            ComputeProfile::Uniform => 1.0,
            ComputeProfile::TwoSpeed {
                slow_fraction,
                slowdown,
            } => 1.0 - slow_fraction + slow_fraction / slowdown,
            ComputeProfile::MatchNetworkCohort { slowdown } => {
                1.0 - network_slow_fraction + network_slow_fraction / slowdown
            }
        }
    }

    /// The speed factor of every client; `network_cohort` is the slow
    /// flag per client sampled from the delay model.
    pub(crate) fn speeds<R: Rng>(&self, network_cohort: &[bool], rng: &mut R) -> Vec<f64> {
        match *self {
            ComputeProfile::Uniform => vec![1.0; network_cohort.len()],
            ComputeProfile::TwoSpeed {
                slow_fraction,
                slowdown,
            } => (0..network_cohort.len())
                .map(|_| {
                    if rng.gen::<f64>() < slow_fraction {
                        1.0 / slowdown
                    } else {
                        1.0
                    }
                })
                .collect(),
            ComputeProfile::MatchNetworkCohort { slowdown } => network_cohort
                .iter()
                .map(|&slow| if slow { 1.0 / slowdown } else { 1.0 })
                .collect(),
        }
    }
}

fn check_slowdown(slowdown: f64) -> Result<(), CoreError> {
    if slowdown >= 1.0 && slowdown.is_finite() {
        Ok(())
    } else {
        Err(CoreError::invalid_field(
            "compute.slowdown",
            slowdown,
            "must be >= 1.0 and finite",
        ))
    }
}

/// What to do when a client finishes training and discovers that a tip
/// it selected has been superseded (approved by somebody else) while it
/// was training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaleTipPolicy {
    /// Publish against the originally selected parents anyway. This is
    /// the tangle's native answer — approving a non-tip merely widens
    /// the DAG — and the historical behaviour.
    #[default]
    PublishAnyway,
    /// Re-run tip selection against the client's *current* view and
    /// re-validate: publish onto the fresh parents only if the trained
    /// model still beats the fresh averaged reference on local test
    /// data.
    Reselect,
    /// Drop the publication entirely (the conservative reading:
    /// training raced, so its result is discarded).
    Discard,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_model_ignores_cohorts_and_rng() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = DelayModel::constant(3.0);
        assert_eq!(m.sample(false, false, &mut rng), 3.0);
        assert_eq!(m.sample(true, true, &mut rng), 3.0);
        assert!(m.assign_cohorts(5, &mut rng).iter().all(|&s| !s));
    }

    #[test]
    fn jitter_samples_stay_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::UniformJitter {
            base: 1.0,
            jitter: 2.0,
        };
        for _ in 0..100 {
            let d = m.sample(false, false, &mut rng);
            assert!((1.0..3.0).contains(&d), "sample {d} out of band");
        }
    }

    #[test]
    fn zero_jitter_is_exact_base() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::UniformJitter {
            base: 0.5,
            jitter: 0.0,
        };
        assert_eq!(m.sample(false, false, &mut rng), 0.5);
    }

    #[test]
    fn cohort_links_are_slow_when_either_endpoint_is() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DelayModel::Cohorts {
            slow_fraction: 0.5,
            fast: 1.0,
            slow: 10.0,
            jitter: 0.0,
        };
        assert_eq!(m.sample(false, false, &mut rng), 1.0);
        assert_eq!(m.sample(true, false, &mut rng), 10.0);
        assert_eq!(m.sample(false, true, &mut rng), 10.0);
        assert_eq!(m.sample(true, true, &mut rng), 10.0);
    }

    #[test]
    fn cohort_assignment_matches_fraction_roughly() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = DelayModel::Cohorts {
            slow_fraction: 0.5,
            fast: 1.0,
            slow: 2.0,
            jitter: 0.0,
        };
        let cohorts = m.assign_cohorts(400, &mut rng);
        let slow = cohorts.iter().filter(|&&s| s).count();
        assert!((120..280).contains(&slow), "got {slow} slow of 400");
    }

    #[test]
    fn two_speed_profile_produces_both_speeds() {
        let mut rng = StdRng::seed_from_u64(5);
        let speeds = ComputeProfile::TwoSpeed {
            slow_fraction: 0.5,
            slowdown: 4.0,
        }
        .speeds(&[false; 200], &mut rng);
        assert!(speeds.contains(&1.0));
        assert!(speeds.contains(&0.25));
    }

    #[test]
    fn uniform_profile_is_all_ones() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(ComputeProfile::Uniform
            .speeds(&[false; 10], &mut rng)
            .iter()
            .all(|&s| s == 1.0));
    }

    #[test]
    fn match_network_cohort_mirrors_the_slow_flags() {
        let mut rng = StdRng::seed_from_u64(7);
        let cohort = [true, false, true, false];
        let speeds = ComputeProfile::MatchNetworkCohort { slowdown: 4.0 }.speeds(&cohort, &mut rng);
        assert_eq!(speeds, vec![0.25, 1.0, 0.25, 1.0]);
    }

    #[test]
    fn expected_mean_speed_accounts_for_the_cohort() {
        assert_eq!(ComputeProfile::Uniform.expected_mean_speed(0.3), 1.0);
        let two = ComputeProfile::TwoSpeed {
            slow_fraction: 0.5,
            slowdown: 4.0,
        };
        assert!((two.expected_mean_speed(0.0) - 0.625).abs() < 1e-12);
        let matched = ComputeProfile::MatchNetworkCohort { slowdown: 4.0 };
        assert!((matched.expected_mean_speed(0.3) - 0.775).abs() < 1e-12);
        assert_eq!(DelayModel::constant(1.0).slow_fraction(), 0.0);
        let cohorts = DelayModel::Cohorts {
            slow_fraction: 0.3,
            fast: 1.0,
            slow: 8.0,
            jitter: 0.0,
        };
        assert_eq!(cohorts.slow_fraction(), 0.3);
    }

    #[test]
    fn negative_delay_is_rejected() {
        let err = DelayModel::constant(-1.0).validate().unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
    }

    #[test]
    fn out_of_range_fraction_is_rejected() {
        let err = DelayModel::Cohorts {
            slow_fraction: 1.5,
            fast: 1.0,
            slow: 2.0,
            jitter: 0.0,
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("slow_fraction"), "{err}");
    }

    #[test]
    fn sub_unit_slowdown_is_rejected() {
        let err = ComputeProfile::TwoSpeed {
            slow_fraction: 0.5,
            slowdown: 0.5,
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("slowdown"), "{err}");
        assert!(ComputeProfile::Uniform.validate().is_ok());
        assert!(DelayModel::constant(2.0).validate().is_ok());
    }

    #[test]
    fn default_matches_historical_visibility_delay() {
        assert_eq!(DelayModel::default(), DelayModel::Constant { delay: 2.0 });
        assert_eq!(ComputeProfile::default(), ComputeProfile::Uniform);
        assert_eq!(StaleTipPolicy::default(), StaleTipPolicy::PublishAnyway);
    }
}
