//! Simulation configuration, including the paper's Table 1 hyperparameters.

use crate::CoreError;

/// How candidate accuracies are normalised inside the biased walk (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Eq. 1: `normalized = accuracy − max(accuracies)`.
    #[default]
    Simple,
    /// Eq. 3: `normalized* = (accuracy − max) / (max − min)` — scales the
    /// bias to the current accuracy spread, improving specialization when
    /// accuracy differences are small.
    Dynamic,
}

/// The tip-selection strategy a client uses during the random walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TipSelector {
    /// The paper's accuracy-aware bias: weights are
    /// `exp(alpha * normalized_accuracy_on_local_test_data)`.
    Accuracy {
        /// Randomness/determinism trade-off (Figure 5/6: 10 is a good
        /// balance for FMNIST-clustered).
        alpha: f32,
        /// Accuracy normalization variant.
        normalization: Normalization,
    },
    /// Unbiased uniform choice (the paper's "random tip selector"
    /// baseline).
    Random,
    /// Classic IOTA MCMC over cumulative weights (Figure 3 mechanics);
    /// included as an ablation.
    CumulativeWeight {
        /// Randomness/determinism trade-off on cumulative weights.
        alpha: f32,
    },
}

impl Default for TipSelector {
    fn default() -> Self {
        TipSelector::Accuracy {
            alpha: 10.0,
            normalization: Normalization::Simple,
        }
    }
}

/// The condition under which a trained model is published (§4.1: "clients
/// only publish their model update if the training resulted in a model
/// that performs better on the test data than the current consensus
/// model").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishGate {
    /// Publish if the trained model beats the *average* of the parents —
    /// the model training started from ("if the training improved the
    /// model", Figure 1). The paper's rule and the default.
    #[default]
    AveragedReference,
    /// Publish if the trained model beats the *best* of the two approved
    /// parents — a stricter reading of "the current consensus model" that
    /// refuses to publish models which only improved relative to a bad
    /// (e.g. attacker-contaminated) average. Recommended together with
    /// [`DagConfig::walk_stop_margin`] when random-weight flooding is a
    /// concern.
    BestParent,
    /// Always publish (ablation; degrades poisoning robustness and floods
    /// the DAG with sideways updates).
    Always,
}

/// Local-training hyperparameters (one row of the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyperparameters {
    /// Training rounds.
    pub rounds: usize,
    /// Clients sampled per round.
    pub clients_per_round: usize,
    /// Local epochs over the fixed batch budget.
    pub local_epochs: usize,
    /// Mini-batches per local epoch (fixed to equalise work per client).
    pub local_batches: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl Hyperparameters {
    /// Table 1, FMNIST-clustered column: 100 rounds, 10 clients/round,
    /// 1 epoch × 10 batches × 10 samples, SGD(0.05).
    pub fn fmnist() -> Self {
        Self {
            rounds: 100,
            clients_per_round: 10,
            local_epochs: 1,
            local_batches: 10,
            batch_size: 10,
            learning_rate: 0.05,
        }
    }

    /// Table 1, Poets column: 100 rounds, 10 clients/round,
    /// 1 epoch × 35 batches × 10 samples, SGD(0.8).
    pub fn poets() -> Self {
        Self {
            rounds: 100,
            clients_per_round: 10,
            local_epochs: 1,
            local_batches: 35,
            batch_size: 10,
            learning_rate: 0.8,
        }
    }

    /// Table 1, CIFAR-100 column: 100 rounds, 10 clients/round,
    /// 5 epochs × 45 batches × 10 samples, SGD(0.01).
    pub fn cifar() -> Self {
        Self {
            rounds: 100,
            clients_per_round: 10,
            local_epochs: 5,
            local_batches: 45,
            batch_size: 10,
            learning_rate: 0.01,
        }
    }
}

/// Full configuration of a Specializing-DAG simulation.
///
/// # Example
///
/// ```
/// use dagfl_core::{DagConfig, Hyperparameters, Normalization, TipSelector};
///
/// // Start from a Table 1 row and override what the experiment needs.
/// let config = DagConfig {
///     rounds: 50,
///     tip_selector: TipSelector::Accuracy {
///         alpha: 10.0,
///         normalization: Normalization::Dynamic,
///     },
///     ..DagConfig::from_hyperparameters(Hyperparameters::fmnist())
/// }
/// .with_seed(7);
/// assert_eq!(config.rounds, 50);
/// assert_eq!(config.seed, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagConfig {
    /// Training rounds to simulate.
    pub rounds: usize,
    /// Clients sampled uniformly (without replacement) each round.
    pub clients_per_round: usize,
    /// Local epochs per selected client.
    pub local_epochs: usize,
    /// Mini-batches per local epoch.
    pub local_batches: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Tip-selection strategy.
    pub tip_selector: TipSelector,
    /// Walk-start depth band from the tips (Popov proposes 15–25).
    pub walk_depth: (u32, u32),
    /// Accuracy-cliff guard for the biased walk: when set, a walk refuses
    /// to step towards approvers that *all* score at least this margin
    /// below the current transaction, approving the current transaction
    /// instead. `None` (default) is the paper's pure tip selection; a
    /// margin around 0.2–0.3 hardens the walk against random-weight
    /// flooding (§4.4). Only affects the accuracy selector.
    pub walk_stop_margin: Option<f32>,
    /// When a trained model qualifies for publication.
    pub publish_gate: PublishGate,
    /// Freeze the first `n` model parameters during local training —
    /// partial-layer personalisation, the paper's future-work direction
    /// (§6). `0` trains everything.
    pub frozen_prefix: usize,
    /// Probability that a client's publication is lost before reaching
    /// the network (failure injection; `0.0` = reliable network).
    pub publication_dropout: f32,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Whether active clients run concurrently on scoped threads.
    pub parallel: bool,
}

impl Default for DagConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            clients_per_round: 10,
            local_epochs: 1,
            local_batches: 10,
            batch_size: 10,
            learning_rate: 0.05,
            tip_selector: TipSelector::default(),
            walk_depth: (15, 25),
            walk_stop_margin: None,
            publish_gate: PublishGate::default(),
            frozen_prefix: 0,
            publication_dropout: 0.0,
            seed: 42,
            parallel: true,
        }
    }
}

impl DagConfig {
    /// Builds a config from a Table 1 hyperparameter row, keeping the
    /// remaining fields at their defaults.
    pub fn from_hyperparameters(h: Hyperparameters) -> Self {
        Self {
            rounds: h.rounds,
            clients_per_round: h.clients_per_round,
            local_epochs: h.local_epochs,
            local_batches: h.local_batches,
            batch_size: h.batch_size,
            learning_rate: h.learning_rate,
            ..Self::default()
        }
    }

    /// Sets the tip selector (builder style).
    pub fn with_tip_selector(mut self, selector: TipSelector) -> Self {
        self.tip_selector = selector;
        self
    }

    /// Sets the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks every field for internal consistency, so programmatic users
    /// get the same range errors the CLI reports (instead of later
    /// panics deep inside the simulator).
    ///
    /// The one check this cannot perform is against the dataset
    /// (`clients_per_round <= num_clients`); that stays with the
    /// simulator constructors and the scenario layer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidField`] naming the first offending
    /// field.
    ///
    /// # Example
    ///
    /// ```
    /// use dagfl_core::DagConfig;
    ///
    /// assert!(DagConfig::default().validate().is_ok());
    /// let bad = DagConfig {
    ///     learning_rate: -0.1,
    ///     ..DagConfig::default()
    /// };
    /// assert!(bad.validate().unwrap_err().to_string().contains("learning_rate"));
    /// ```
    pub fn validate(&self) -> Result<(), CoreError> {
        let positive = |v: usize, field: &'static str| {
            if v == 0 {
                Err(CoreError::invalid_field(field, v, "must be at least 1"))
            } else {
                Ok(())
            }
        };
        positive(self.rounds, "rounds")?;
        positive(self.clients_per_round, "clients_per_round")?;
        positive(self.local_epochs, "local_epochs")?;
        positive(self.local_batches, "local_batches")?;
        positive(self.batch_size, "batch_size")?;
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(CoreError::invalid_field(
                "learning_rate",
                self.learning_rate,
                "must be positive and finite",
            ));
        }
        let alpha = match self.tip_selector {
            TipSelector::Accuracy { alpha, .. } | TipSelector::CumulativeWeight { alpha } => alpha,
            TipSelector::Random => 0.0,
        };
        if !(alpha.is_finite() && alpha >= 0.0) {
            return Err(CoreError::invalid_field(
                "alpha",
                alpha,
                "must be non-negative and finite",
            ));
        }
        if self.walk_depth.0 > self.walk_depth.1 {
            return Err(CoreError::invalid_field(
                "walk_depth",
                format!("({}, {})", self.walk_depth.0, self.walk_depth.1),
                "minimum depth must not exceed maximum depth",
            ));
        }
        if let Some(margin) = self.walk_stop_margin {
            if !(margin.is_finite() && margin > 0.0) {
                return Err(CoreError::invalid_field(
                    "walk_stop_margin",
                    margin,
                    "must be positive and finite (use None to disable)",
                ));
            }
        }
        if !(self.publication_dropout.is_finite()
            && (0.0..=1.0).contains(&self.publication_dropout))
        {
            return Err(CoreError::invalid_field(
                "publication_dropout",
                self.publication_dropout,
                "must be in [0, 1]",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_fmnist_row() {
        let cfg = DagConfig::default();
        let h = Hyperparameters::fmnist();
        assert_eq!(cfg.rounds, h.rounds);
        assert_eq!(cfg.clients_per_round, h.clients_per_round);
        assert_eq!(cfg.local_batches, h.local_batches);
        assert_eq!(cfg.batch_size, h.batch_size);
        assert_eq!(cfg.learning_rate, h.learning_rate);
        assert_eq!(cfg.walk_depth, (15, 25));
    }

    #[test]
    fn table1_rows_are_faithful() {
        let poets = Hyperparameters::poets();
        assert_eq!(poets.local_batches, 35);
        assert_eq!(poets.learning_rate, 0.8);
        let cifar = Hyperparameters::cifar();
        assert_eq!(cifar.local_epochs, 5);
        assert_eq!(cifar.local_batches, 45);
        assert_eq!(cifar.learning_rate, 0.01);
    }

    #[test]
    fn from_hyperparameters_copies_all_fields() {
        let cfg = DagConfig::from_hyperparameters(Hyperparameters::cifar());
        assert_eq!(cfg.local_epochs, 5);
        assert_eq!(cfg.learning_rate, 0.01);
    }

    #[test]
    fn builder_methods_apply() {
        let cfg = DagConfig::default()
            .with_seed(7)
            .with_tip_selector(TipSelector::Random);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.tip_selector, TipSelector::Random);
    }

    #[test]
    fn validate_accepts_defaults_and_table1_rows() {
        assert!(DagConfig::default().validate().is_ok());
        for h in [
            Hyperparameters::fmnist(),
            Hyperparameters::poets(),
            Hyperparameters::cifar(),
        ] {
            assert!(DagConfig::from_hyperparameters(h).validate().is_ok());
        }
    }

    #[test]
    fn validate_rejects_each_out_of_range_field() {
        let cases: Vec<(DagConfig, &str)> = vec![
            (
                DagConfig {
                    rounds: 0,
                    ..DagConfig::default()
                },
                "rounds",
            ),
            (
                DagConfig {
                    clients_per_round: 0,
                    ..DagConfig::default()
                },
                "clients_per_round",
            ),
            (
                DagConfig {
                    batch_size: 0,
                    ..DagConfig::default()
                },
                "batch_size",
            ),
            (
                DagConfig {
                    learning_rate: f32::NAN,
                    ..DagConfig::default()
                },
                "learning_rate",
            ),
            (
                DagConfig {
                    tip_selector: TipSelector::Accuracy {
                        alpha: -1.0,
                        normalization: Normalization::Simple,
                    },
                    ..DagConfig::default()
                },
                "alpha",
            ),
            (
                DagConfig {
                    walk_depth: (25, 15),
                    ..DagConfig::default()
                },
                "walk_depth",
            ),
            (
                DagConfig {
                    walk_stop_margin: Some(-0.2),
                    ..DagConfig::default()
                },
                "walk_stop_margin",
            ),
            (
                DagConfig {
                    publication_dropout: 1.5,
                    ..DagConfig::default()
                },
                "publication_dropout",
            ),
        ];
        for (config, field) in cases {
            let err = config.validate().expect_err(field);
            assert!(err.to_string().contains(field), "{field}: {err}");
        }
    }

    #[test]
    fn default_selector_is_accuracy_alpha_10() {
        match TipSelector::default() {
            TipSelector::Accuracy {
                alpha,
                normalization,
            } => {
                assert_eq!(alpha, 10.0);
                assert_eq!(normalization, Normalization::Simple);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }
}
