//! Deterministic fault injection for the transport seam.
//!
//! [`FaultyTransport`] is a [`Transport`] decorator: it wraps any inner
//! transport, intercepts every envelope the inner transport schedules,
//! and applies a scripted [`FaultPlan`] — per-link drop / duplicate /
//! reorder / extra-delay probabilities, partition windows with heal
//! times, and peer crash/restart windows. The point is to exercise the
//! failure paths (solidification under loss, duplicate suppression,
//! partition heal, crash rejoin) *deterministically*: all fault
//! sampling comes from the decorator's own RNG stream, derived from
//! the master seed with [`derive_seed`] under a fixed stream id, so
//!
//! * identical seeds reproduce identical fault schedules (and hence
//!   identical run reports), and
//! * the simulation's own RNG stream is never touched — wrapping a
//!   transport with an *inert* plan, or not wrapping at all, yields
//!   bit-identical simulations.
//!
//! Decorator ordering: the inner transport first samples its ordinary
//! per-link delays (consuming the *caller's* RNG exactly as it would
//! unwrapped), then the decorator drains those envelopes and pushes
//! the survivors into its own queues. Latency accounting therefore
//! still reflects the inner delay model; the fault counters
//! (`dropped`, `duplicated`) are the decorator's own.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{derive_seed, CoreError, Envelope, GossipMessage, Transport, TransportStats};

/// The RNG stream id of the fault injector (see [`derive_seed`]): one
/// fixed, documented constant so fault schedules depend only on the
/// master seed.
pub const FAULT_STREAM: u64 = 0xFA17;

/// A scripted network partition: while `start <= t < heal`, peers with
/// index below `split` cannot reach peers at or above it (and vice
/// versa). Messages sent across the cut during the window are not
/// lost — they are held and arrive at `heal`, modelling the queue
/// flush of a reconnecting link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    /// Logical time the partition opens.
    pub start: f64,
    /// Logical time the partition heals (exclusive end of the window).
    pub heal: f64,
    /// The cut: peers `0..split` on one side, `split..n` on the other.
    pub split: usize,
}

impl PartitionWindow {
    /// `true` when a message sent at `t` from `from` to `to` crosses
    /// the cut while it is open.
    fn severs(&self, t: f64, from: usize, to: usize) -> bool {
        t >= self.start && t < self.heal && (from < self.split) != (to < self.split)
    }
}

/// A scripted peer outage: while `at <= t < restart` the peer neither
/// sends nor receives — everything addressed to or from it in that
/// window is dropped (use `f64::INFINITY` for a crash with no
/// restart). The peer's replica survives; catching up after the
/// restart is the receiver's job (snapshot delta, or
/// [`AsyncSimulation::reconcile_replicas`](crate::AsyncSimulation::reconcile_replicas)
/// in the loopback harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// The crashed peer.
    pub peer: usize,
    /// Logical time of the crash.
    pub at: f64,
    /// Logical time of the restart (may be `f64::INFINITY`).
    pub restart: f64,
}

impl CrashWindow {
    fn covers(&self, peer: usize, t: f64) -> bool {
        peer == self.peer && t >= self.at && t < self.restart
    }
}

/// A complete fault schedule for one run.
///
/// The probabilistic faults apply independently per scheduled envelope
/// (per link, per message); the scripted windows apply by logical
/// time. The default plan is inert: every probability zero, no
/// windows — see [`FaultPlan::is_inert`].
///
/// # Example
///
/// ```
/// use dagfl_core::FaultPlan;
///
/// let plan = FaultPlan {
///     drop: 0.1,
///     duplicate: 0.05,
///     ..FaultPlan::default()
/// };
/// plan.validate().unwrap();
/// assert!(!plan.is_inert());
/// assert!(FaultPlan::default().is_inert());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that a scheduled envelope is silently lost.
    pub drop: f64,
    /// Probability that an envelope is delivered twice (the extra copy
    /// arrives up to [`FaultPlan::delay_boost`] later).
    pub duplicate: f64,
    /// Probability that an envelope is held back behind everything
    /// currently in flight to its receiver (plus up to `delay_boost`),
    /// so later sends overtake it — a true reordering.
    pub reorder: f64,
    /// Probability that an envelope suffers an extra latency spike of
    /// up to `delay_boost` (jitter without reordering guarantees).
    pub extra_delay: f64,
    /// Magnitude (in logical time) of the delay-based faults: reorder
    /// hold-back, duplicate offset and extra-delay spikes each add
    /// `U(0, delay_boost)`.
    pub delay_boost: f64,
    /// Scripted partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Scripted peer outages.
    pub crashes: Vec<CrashWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            extra_delay: 0.0,
            delay_boost: 1.0,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// `true` when the plan can never alter a delivery — the gate for
    /// skipping the decorator entirely, which keeps fault-free runs
    /// structurally identical to pre-fault builds.
    pub fn is_inert(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.extra_delay == 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// Checks every field: probabilities in `[0, 1]`, a finite
    /// non-negative `delay_boost`, partition windows with
    /// `start <= heal`, crash windows with `at <= restart` (`restart`
    /// may be infinite).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidField`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        for (name, p) in [
            ("faults.drop", self.drop),
            ("faults.duplicate", self.duplicate),
            ("faults.reorder", self.reorder),
            ("faults.extra_delay", self.extra_delay),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(CoreError::invalid_field(name, p, "must be in [0, 1]"));
            }
        }
        if !(self.delay_boost.is_finite() && self.delay_boost >= 0.0) {
            return Err(CoreError::invalid_field(
                "faults.delay_boost",
                self.delay_boost,
                "must be non-negative and finite",
            ));
        }
        for w in &self.partitions {
            if !(w.start.is_finite() && w.heal.is_finite() && w.start >= 0.0 && w.start <= w.heal) {
                return Err(CoreError::invalid_field(
                    "faults.partition",
                    w.start,
                    "window needs finite 0 <= start <= heal",
                ));
            }
        }
        for c in &self.crashes {
            if !(c.at.is_finite() && c.at >= 0.0 && c.restart >= c.at) {
                return Err(CoreError::invalid_field(
                    "faults.crash",
                    c.at,
                    "window needs finite 0 <= at <= restart",
                ));
            }
        }
        Ok(())
    }

    fn crashed(&self, peer: usize, t: f64) -> bool {
        self.crashes.iter().any(|c| c.covers(peer, t))
    }

    /// The latest heal time of any window severing `from -> to` at
    /// send time `t` (`None` when the link is up).
    fn held_until(&self, t: f64, from: usize, to: usize) -> Option<f64> {
        self.partitions
            .iter()
            .filter(|w| w.severs(t, from, to))
            .map(|w| w.heal)
            .fold(None, |acc: Option<f64>, heal| {
                Some(acc.map_or(heal, |a| a.max(heal)))
            })
    }
}

/// A [`Transport`] decorator that injects the faults of a
/// [`FaultPlan`] into every scheduled delivery, sampling from its own
/// seed-derived RNG stream.
///
/// # Example
///
/// ```
/// use dagfl_core::{DelayModel, FaultPlan, FaultyTransport, GossipMessage, LoopbackTransport,
///                  Transport, TxMessage};
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::sync::Arc;
///
/// let plan = FaultPlan { drop: 1.0, ..FaultPlan::default() };
/// let inner = LoopbackTransport::new(DelayModel::constant(0.0), vec![false; 2]);
/// let mut transport = FaultyTransport::new(inner, plan, 42);
/// let mut rng = StdRng::seed_from_u64(7);
/// let msg = GossipMessage::Transaction(TxMessage {
///     id: 1, parents: vec![0], params: Arc::new(vec![0.0]), issuer: Some(0), round: 0,
/// });
/// transport.broadcast(0, 0.0, msg, &mut rng).unwrap();
/// assert!(transport.receive(1, 100.0).is_empty(), "drop = 1.0 loses everything");
/// assert_eq!(transport.stats().dropped, 1);
/// ```
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    rng: StdRng,
    queues: Vec<Vec<Envelope>>,
    stats: TransportStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, sampling the plan's faults from the RNG stream
    /// `derive_seed(master_seed, FAULT_STREAM)`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(inner: T, plan: FaultPlan, master_seed: u64) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        let n = inner.num_peers();
        Self {
            inner,
            plan,
            rng: StdRng::seed_from_u64(derive_seed(master_seed, FAULT_STREAM)),
            queues: (0..n).map(|_| Vec::new()).collect(),
            stats: TransportStats::default(),
        }
    }

    /// The fault schedule this decorator runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Runs one drained envelope through the fault pipeline and queues
    /// the surviving copies. Order matters and is part of the
    /// determinism contract: sender crash, drop, partition hold,
    /// reorder/extra-delay, duplicate, receiver crash.
    fn inject(&mut self, from: usize, to: usize, now: f64, mut env: Envelope) {
        if self.plan.crashed(from, now) {
            self.stats.dropped += 1;
            return;
        }
        if self.plan.drop > 0.0 && self.rng.gen_bool(self.plan.drop) {
            self.stats.dropped += 1;
            return;
        }
        if let Some(heal) = self.plan.held_until(now, from, to) {
            env.at = env.at.max(heal);
        }
        if self.plan.reorder > 0.0 && self.rng.gen_bool(self.plan.reorder) {
            let tail = self.queues[to].iter().map(|e| e.at).fold(env.at, f64::max);
            env.at = tail + self.boost();
        } else if self.plan.extra_delay > 0.0 && self.rng.gen_bool(self.plan.extra_delay) {
            env.at += self.boost();
        }
        let mut copies = vec![env];
        if self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate) {
            let mut dup = copies[0].clone();
            dup.at += self.boost();
            self.stats.duplicated += 1;
            copies.push(dup);
        }
        for copy in copies {
            if self.plan.crashed(to, copy.at) {
                self.stats.dropped += 1;
            } else {
                self.queues[to].push(copy);
            }
        }
    }

    fn boost(&mut self) -> f64 {
        if self.plan.delay_boost > 0.0 {
            self.rng.gen_range(0.0..self.plan.delay_boost)
        } else {
            0.0
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn num_peers(&self) -> usize {
        self.inner.num_peers()
    }

    fn broadcast(
        &mut self,
        from: usize,
        now: f64,
        message: GossipMessage,
        rng: &mut StdRng,
    ) -> Result<(), CoreError> {
        // The inner transport consumes the caller's RNG exactly as it
        // would unwrapped (delay sampling in ascending peer order);
        // the decorator then drains what it scheduled. Draining after
        // every broadcast keeps the inner queues empty, so each drain
        // yields precisely this broadcast's envelopes.
        self.inner.broadcast(from, now, message, rng)?;
        for to in 0..self.queues.len() {
            if to == from {
                continue;
            }
            for env in self.inner.receive(to, f64::INFINITY) {
                self.inject(from, to, now, env);
            }
        }
        Ok(())
    }

    fn receive(&mut self, peer: usize, now: f64) -> Vec<Envelope> {
        let queue = std::mem::take(&mut self.queues[peer]);
        let (due, keep): (Vec<Envelope>, Vec<Envelope>) =
            queue.into_iter().partition(|e| e.at <= now);
        self.queues[peer] = keep;
        self.stats.delivered += due.len();
        due
    }

    fn in_flight(&self, peer: usize) -> &[Envelope] {
        &self.queues[peer]
    }

    fn stats(&self) -> TransportStats {
        // Latency accounting comes from the inner delay sampling; the
        // inner `delivered` counter is an artefact of the eager drain
        // and is replaced by the decorator's own.
        let inner = self.inner.stats();
        TransportStats {
            latency_sum: inner.latency_sum,
            latency_count: inner.latency_count,
            latency_max: inner.latency_max,
            delivered: self.stats.delivered,
            dropped: self.stats.dropped + inner.dropped,
            duplicated: self.stats.duplicated + inner.duplicated,
            reconnects: self.stats.reconnects + inner.reconnects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayModel, LoopbackTransport, TxMessage};
    use std::sync::Arc;

    fn tx(id: u64) -> GossipMessage {
        GossipMessage::Transaction(TxMessage {
            id,
            parents: vec![0],
            params: Arc::new(vec![id as f32]),
            issuer: Some(0),
            round: 0,
        })
    }

    fn wrap(plan: FaultPlan, n: usize, delay: f64) -> FaultyTransport<LoopbackTransport> {
        let inner = LoopbackTransport::new(DelayModel::constant(delay), vec![false; n]);
        FaultyTransport::new(inner, plan, 42)
    }

    #[test]
    fn inert_plan_passes_everything_through() {
        let mut t = wrap(FaultPlan::default(), 3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        t.broadcast(0, 0.0, tx(1), &mut rng).unwrap();
        assert_eq!(t.in_flight(1).len(), 1);
        assert_eq!(t.receive(1, 1.0).len(), 1);
        assert_eq!(t.receive(2, 1.0).len(), 1);
        let s = t.stats();
        assert_eq!((s.delivered, s.dropped, s.duplicated), (2, 0, 0));
        assert_eq!(s.latency_count, 2, "inner latency accounting survives");
    }

    #[test]
    fn drop_one_loses_everything_and_counts() {
        let mut t = wrap(
            FaultPlan {
                drop: 1.0,
                ..FaultPlan::default()
            },
            4,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        t.broadcast(0, 0.0, tx(1), &mut rng).unwrap();
        for p in 1..4 {
            assert!(t.receive(p, 100.0).is_empty());
        }
        assert_eq!(t.stats().dropped, 3);
        assert!(t.stats().has_faults());
    }

    #[test]
    fn duplicate_one_delivers_twice() {
        let mut t = wrap(
            FaultPlan {
                duplicate: 1.0,
                delay_boost: 0.0,
                ..FaultPlan::default()
            },
            2,
            1.0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        t.broadcast(0, 0.0, tx(1), &mut rng).unwrap();
        assert_eq!(t.receive(1, 10.0).len(), 2);
        assert_eq!(t.stats().duplicated, 1);
        assert_eq!(t.stats().delivered, 2);
    }

    #[test]
    fn partition_holds_cross_cut_messages_until_heal() {
        let plan = FaultPlan {
            partitions: vec![PartitionWindow {
                start: 0.0,
                heal: 50.0,
                split: 1,
            }],
            ..FaultPlan::default()
        };
        let mut t = wrap(plan, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        // Peer 0 is alone on side A; 1 and 2 are on side B.
        t.broadcast(0, 0.0, tx(1), &mut rng).unwrap();
        t.broadcast(1, 0.0, tx(2), &mut rng).unwrap();
        assert!(t.receive(1, 10.0).is_empty(), "cross-cut held");
        assert_eq!(t.receive(2, 10.0).len(), 1, "same-side delivers");
        assert_eq!(t.receive(1, 50.0).len(), 1, "arrives at heal");
        assert_eq!(t.receive(0, 50.0).len(), 1);
        assert_eq!(t.stats().dropped, 0, "partitions hold, never drop");
    }

    #[test]
    fn crashed_sender_reaches_nobody_crashed_receiver_hears_nothing() {
        let plan = FaultPlan {
            crashes: vec![CrashWindow {
                peer: 1,
                at: 0.0,
                restart: 100.0,
            }],
            ..FaultPlan::default()
        };
        let mut t = wrap(plan, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        t.broadcast(1, 0.0, tx(1), &mut rng).unwrap(); // crashed sender
        t.broadcast(0, 0.0, tx(2), &mut rng).unwrap(); // 1 is down, 2 is up
        assert!(t.receive(0, 10.0).is_empty());
        assert!(t.receive(1, 10.0).is_empty());
        assert_eq!(t.receive(2, 10.0).len(), 1);
        assert_eq!(t.stats().dropped, 3);
        // After restart the peer participates again.
        t.broadcast(0, 100.0, tx(3), &mut rng).unwrap();
        assert_eq!(t.receive(1, 101.0).len(), 1);
    }

    #[test]
    fn reorder_holds_an_envelope_behind_later_sends() {
        let plan = FaultPlan {
            reorder: 1.0,
            delay_boost: 0.5,
            ..FaultPlan::default()
        };
        let mut t = wrap(plan, 2, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        t.broadcast(0, 0.0, tx(1), &mut rng).unwrap();
        let first = t.in_flight(1)[0].at;
        t.broadcast(0, 0.1, tx(2), &mut rng).unwrap();
        let second = t.in_flight(1)[1].at;
        assert!(
            second > first,
            "reordered envelope lands behind the queue tail ({second} <= {first})"
        );
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let run = || {
            let mut t = wrap(
                FaultPlan {
                    drop: 0.3,
                    duplicate: 0.3,
                    extra_delay: 0.3,
                    ..FaultPlan::default()
                },
                4,
                1.0,
            );
            let mut rng = StdRng::seed_from_u64(5);
            for i in 0..20 {
                t.broadcast((i % 4) as usize, i as f64, tx(i + 1), &mut rng)
                    .unwrap();
            }
            let arrivals: Vec<Vec<f64>> = (0..4)
                .map(|p| t.in_flight(p).iter().map(|e| e.at).collect())
                .collect();
            (arrivals, t.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plan_validation_rejects_bad_fields() {
        let bad = FaultPlan {
            drop: 1.5,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            delay_boost: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            partitions: vec![PartitionWindow {
                start: 5.0,
                heal: 1.0,
                split: 1,
            }],
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            crashes: vec![CrashWindow {
                peer: 0,
                at: 5.0,
                restart: 1.0,
            }],
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        // Infinite restart (crash forever) is legal.
        let ok = FaultPlan {
            crashes: vec![CrashWindow {
                peer: 0,
                at: 5.0,
                restart: f64::INFINITY,
            }],
            ..FaultPlan::default()
        };
        assert!(ok.validate().is_ok());
    }
}
