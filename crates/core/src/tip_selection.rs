//! The paper's accuracy-aware walk bias (§4.2).

use dagfl_tangle::{TangleRead, TxId, WalkBias};
use dagfl_tensor::Matrix;

use crate::{ModelEvaluator, ModelPayload, Normalization};

/// Accuracy-aware transition weights for the biased random walk.
///
/// At every step of the walk, all candidate models (the approvers of the
/// current transaction) are scored as one slate on the *client's local
/// test data*; the transition weight of candidate `i` is
///
/// ```text
/// normalized_i = accuracy_i − max(accuracies)               (Eq. 1, Simple)
/// normalized*_i = normalized_i / (max − min)                (Eq. 3, Dynamic)
/// weight_i = exp(alpha · normalized_i)                      (Eq. 2)
/// ```
///
/// The bias borrows the client's [`ModelEvaluator`], which owns the
/// scratch model, the reusable forward-pass buffers and the
/// generation-stamped per-transaction accuracy cache — see the evaluator
/// docs for when cached accuracies are invalidated.
pub struct AccuracyBias<'a> {
    evaluator: &'a mut ModelEvaluator,
    test_x: &'a Matrix,
    test_y: &'a [usize],
    alpha: f32,
    normalization: Normalization,
    stop_margin: Option<f32>,
}

impl<'a> AccuracyBias<'a> {
    /// Creates a bias scoring candidates with `evaluator` on the given
    /// local test data.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn new(
        evaluator: &'a mut ModelEvaluator,
        test_x: &'a Matrix,
        test_y: &'a [usize],
        alpha: f32,
        normalization: Normalization,
    ) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and non-negative, got {alpha}"
        );
        Self {
            evaluator,
            test_x,
            test_y,
            alpha,
            normalization,
            stop_margin: None,
        }
    }

    /// Enables the accuracy-cliff guard: the walk terminates at the
    /// current transaction when *every* approver scores at least `margin`
    /// below it on the local test data.
    ///
    /// This refuses forced steps into flooded regions of the DAG (a
    /// random-weight attacker's transactions have near-chance accuracy) at
    /// the cost of sometimes approving non-tip transactions.
    pub fn with_stop_margin(mut self, margin: f32) -> Self {
        assert!(
            margin.is_finite() && margin > 0.0,
            "stop margin must be finite and positive, got {margin}"
        );
        self.stop_margin = Some(margin);
        self
    }

    /// Applies Eq. 1–3 to raw accuracies. An empty slate yields an empty
    /// weight vector (instead of folding to `max = -inf` and exponentiating
    /// infinities).
    fn normalize(accuracies: &[f32], alpha: f32, normalization: Normalization) -> Vec<f32> {
        if accuracies.is_empty() {
            return Vec::new();
        }
        let max = accuracies.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let min = accuracies.iter().copied().fold(f32::INFINITY, f32::min);
        accuracies
            .iter()
            .map(|&acc| {
                let normalized = match normalization {
                    Normalization::Simple => acc - max,
                    Normalization::Dynamic => {
                        let spread = max - min;
                        if spread > 0.0 {
                            (acc - max) / spread
                        } else {
                            0.0
                        }
                    }
                };
                (alpha * normalized).exp()
            })
            .collect()
    }
}

impl<T: TangleRead<ModelPayload>> WalkBias<ModelPayload, T> for AccuracyBias<'_> {
    fn weights(&mut self, tangle: &T, _current: TxId, candidates: &[TxId]) -> Vec<f32> {
        let accuracies = self
            .evaluator
            .score_slate(tangle, candidates, self.test_x, self.test_y);
        Self::normalize(&accuracies, self.alpha, self.normalization)
    }

    fn should_stop(&mut self, tangle: &T, current: TxId, candidates: &[TxId]) -> bool {
        let Some(margin) = self.stop_margin else {
            return false;
        };
        let current_acc = self
            .evaluator
            .score(tangle, current, self.test_x, self.test_y);
        candidates.iter().all(|&c| {
            self.evaluator.score(tangle, c, self.test_x, self.test_y) < current_acc - margin
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfl_nn::{Dense, Model, Sequential, SgdConfig};
    use dagfl_tangle::{RandomWalker, Tangle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Toy task: features, labels, "good" params, "bad" params, evaluator.
    type ToySetup = (Matrix, Vec<usize>, Vec<f32>, Vec<f32>, ModelEvaluator);

    /// A 2-feature, 2-class toy task plus a trained "good" model and an
    /// untrained "bad" model.
    fn toy_setup() -> ToySetup {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0], &[0.1, 0.9]]).unwrap();
        let y = vec![0, 0, 1, 1];
        let mut good = Sequential::new(vec![Box::new(Dense::new(&mut rng, 2, 2))]);
        let opt = SgdConfig::new(0.5);
        for _ in 0..200 {
            good.train_batch(&x, &y, &opt).unwrap();
        }
        let good_params = good.parameters();
        // The "bad" model predicts labels flipped.
        let mut bad = Sequential::new(vec![Box::new(Dense::new(&mut rng, 2, 2))]);
        let y_flipped = vec![1, 1, 0, 0];
        for _ in 0..200 {
            bad.train_batch(&x, &y_flipped, &opt).unwrap();
        }
        let bad_params = bad.parameters();
        let scratch: Box<dyn Model> =
            Box::new(Sequential::new(vec![Box::new(Dense::new(&mut rng, 2, 2))]));
        (x, y, good_params, bad_params, ModelEvaluator::new(scratch))
    }

    #[test]
    fn normalize_simple_matches_equations() {
        let w = AccuracyBias::normalize(&[0.5, 0.9], 10.0, Normalization::Simple);
        // Best candidate has normalized 0 -> weight 1.
        assert!((w[1] - 1.0).abs() < 1e-6);
        assert!((w[0] - (-4.0f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn normalize_empty_slate_is_empty() {
        // Regression: an empty slate used to fold to `max = -inf` and
        // feed `exp(alpha * -inf)` (and `-inf / 0` spreads) downstream.
        for normalization in [Normalization::Simple, Normalization::Dynamic] {
            let w = AccuracyBias::normalize(&[], 10.0, normalization);
            assert!(w.is_empty(), "{normalization:?} must yield no weights");
        }
    }

    #[test]
    fn normalize_dynamic_rescales_spread() {
        // Tiny spread: simple normalization barely discriminates, dynamic
        // stretches it to the full [-1, 0] range.
        let simple = AccuracyBias::normalize(&[0.500, 0.501], 10.0, Normalization::Simple);
        let dynamic = AccuracyBias::normalize(&[0.500, 0.501], 10.0, Normalization::Dynamic);
        let ratio_simple = simple[0] / simple[1];
        let ratio_dynamic = dynamic[0] / dynamic[1];
        assert!(ratio_simple > 0.95, "simple should barely discriminate");
        assert!(
            ratio_dynamic < 0.01,
            "dynamic should strongly discriminate, got {ratio_dynamic}"
        );
    }

    #[test]
    fn normalize_dynamic_equal_accuracies_is_uniform() {
        let w = AccuracyBias::normalize(&[0.5, 0.5, 0.5], 100.0, Normalization::Dynamic);
        for v in w {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_alpha_ignores_accuracy() {
        let w = AccuracyBias::normalize(&[0.1, 0.9], 0.0, Normalization::Simple);
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn walk_prefers_accurate_branch() {
        let (x, y, good_params, bad_params, mut evaluator) = toy_setup();
        // genesis -> {good tip, bad tip}
        let mut tangle: Tangle<ModelPayload> =
            Tangle::new(ModelPayload::new(vec![0.0; good_params.len()]));
        let g = tangle.genesis();
        let good_tip = tangle.attach(ModelPayload::new(good_params), &[g]).unwrap();
        let _bad_tip = tangle.attach(ModelPayload::new(bad_params), &[g]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut good_count = 0;
        for _ in 0..50 {
            let mut bias = AccuracyBias::new(&mut evaluator, &x, &y, 50.0, Normalization::Simple);
            let r = RandomWalker::new()
                .walk(&tangle, g, &mut bias, &mut rng)
                .unwrap();
            if r.tip == good_tip {
                good_count += 1;
            }
        }
        assert!(
            good_count >= 48,
            "biased walk chose the good tip only {good_count}/50 times"
        );
    }

    #[test]
    fn cache_avoids_reevaluation() {
        let (x, y, good_params, bad_params, mut evaluator) = toy_setup();
        let mut tangle: Tangle<ModelPayload> =
            Tangle::new(ModelPayload::new(vec![0.0; good_params.len()]));
        let g = tangle.genesis();
        tangle.attach(ModelPayload::new(good_params), &[g]).unwrap();
        tangle.attach(ModelPayload::new(bad_params), &[g]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // First walk: evaluates genesis children (2 fresh evaluations).
        let mut bias = AccuracyBias::new(&mut evaluator, &x, &y, 10.0, Normalization::Simple);
        RandomWalker::new()
            .walk(&tangle, g, &mut bias, &mut rng)
            .unwrap();
        assert_eq!(evaluator.counters().fresh, 2);
        // Second walk: everything cached.
        let mut bias = AccuracyBias::new(&mut evaluator, &x, &y, 10.0, Normalization::Simple);
        RandomWalker::new()
            .walk(&tangle, g, &mut bias, &mut rng)
            .unwrap();
        assert_eq!(evaluator.counters().fresh, 2, "no new fresh evaluations");
        assert_eq!(evaluator.counters().cached, 2);
    }

    #[test]
    fn incompatible_payload_scores_zero() {
        let (x, y, good_params, _, mut evaluator) = toy_setup();
        let mut tangle: Tangle<ModelPayload> =
            Tangle::new(ModelPayload::new(vec![0.0; good_params.len()]));
        let g = tangle.genesis();
        // A payload with the wrong parameter count.
        let weird = tangle
            .attach(ModelPayload::new(vec![1.0; 3]), &[g])
            .unwrap();
        let mut bias = AccuracyBias::new(&mut evaluator, &x, &y, 10.0, Normalization::Simple);
        let w = bias.weights(&tangle, g, &[weird]);
        assert_eq!(w.len(), 1);
        assert_eq!(evaluator.score(&tangle, weird, &x, &y), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn negative_alpha_panics() {
        let (x, y, _, _, mut evaluator) = toy_setup();
        AccuracyBias::new(&mut evaluator, &x, &y, -1.0, Normalization::Simple);
    }
}
