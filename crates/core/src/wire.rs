//! The networked mode's wire format: length-prefixed, versioned binary
//! frames over any `Read`/`Write` stream — std only, no serialization
//! dependency.
//!
//! Every frame is
//!
//! ```text
//! [ length: u32 LE ][ version: u8 ][ kind: u8 ][ body ... ]
//! ```
//!
//! where `length` covers everything after itself. Integers are
//! little-endian, floats are IEEE-754 bit patterns, strings are
//! u32-length-prefixed UTF-8, vectors are u32-count-prefixed. Decoding
//! rejects truncated frames, version mismatches, unknown kinds,
//! oversized lengths and trailing bytes, so a peer can never be pushed
//! into reading garbage as weights.

use std::io::{Read, Write};
use std::sync::Arc;

use crate::TxMessage;

/// Protocol version of this build; bumped on any frame-layout change.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame body (64 MiB) — a sanity valve against
/// corrupt length prefixes, not a protocol limit.
pub const MAX_FRAME: usize = 64 << 20;

/// A peer known to the tracker: client id plus gossip listen address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerInfo {
    /// The peer's client id.
    pub client: u32,
    /// The address its gossip listener is bound to.
    pub addr: String,
}

/// Everything peers and the tracker exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// First message on a gossip connection: who is calling.
    Hello {
        /// The connecting peer's client id.
        client: u32,
    },
    /// One published transaction.
    Transaction(TxMessage),
    /// "Send me everything I do not have" — `have` lists the network
    /// ids the requester already holds.
    SnapshotRequest {
        /// Network ids already held by the requester.
        have: Vec<u64>,
    },
    /// The answer to a snapshot request: missing transactions in
    /// topological order.
    Snapshot {
        /// The transactions the requester was missing.
        transactions: Vec<TxMessage>,
    },
    /// Tracker: a peer announces itself and its listen address.
    Join {
        /// The joining peer's client id.
        client: u32,
        /// Address other peers can dial for gossip.
        addr: String,
    },
    /// Tracker's reply to a join: everyone already registered.
    PeerList {
        /// The previously registered peers.
        peers: Vec<PeerInfo>,
    },
    /// Tracker: a peer is leaving the session.
    Leave {
        /// The departing peer's client id.
        client: u32,
    },
    /// Gossip: the sender has published its last transaction and will
    /// exit once everyone else is done too.
    Done {
        /// The finished peer's client id.
        client: u32,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_TRANSACTION: u8 = 2;
const KIND_SNAPSHOT_REQUEST: u8 = 3;
const KIND_SNAPSHOT: u8 = 4;
const KIND_JOIN: u8 = 5;
const KIND_PEER_LIST: u8 = 6;
const KIND_LEAVE: u8 = 7;
const KIND_DONE: u8 = 8;

/// Decoding/transport failures of the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame, or a body was shorter than its
    /// fields claim.
    Truncated,
    /// A frame decoded fine but left unread bytes in its body.
    TrailingBytes,
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version this build speaks.
        expected: u8,
        /// Version found in the frame.
        found: u8,
    },
    /// The frame kind byte is not one this build knows.
    UnknownKind(u8),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// A structurally invalid body (e.g. a non-UTF-8 string).
    Malformed(&'static str),
    /// An I/O error from the underlying stream.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::TrailingBytes => write!(f, "frame has trailing bytes"),
            WireError::VersionMismatch { expected, found } => {
                write!(f, "wire version mismatch: expected {expected}, got {found}")
            }
            WireError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            WireError::Oversized(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
            WireError::Io(why) => write!(f, "wire i/o: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.to_string())
        }
    }
}

/// Encodes a message as one complete frame (length prefix included).
pub fn encode(message: &WireMessage) -> Vec<u8> {
    let mut body = Vec::new();
    let kind = match message {
        WireMessage::Hello { client } => {
            put_u32(&mut body, *client);
            KIND_HELLO
        }
        WireMessage::Transaction(tx) => {
            put_tx(&mut body, tx);
            KIND_TRANSACTION
        }
        WireMessage::SnapshotRequest { have } => {
            put_u32(&mut body, have.len() as u32);
            for id in have {
                put_u64(&mut body, *id);
            }
            KIND_SNAPSHOT_REQUEST
        }
        WireMessage::Snapshot { transactions } => {
            put_u32(&mut body, transactions.len() as u32);
            for tx in transactions {
                put_tx(&mut body, tx);
            }
            KIND_SNAPSHOT
        }
        WireMessage::Join { client, addr } => {
            put_u32(&mut body, *client);
            put_str(&mut body, addr);
            KIND_JOIN
        }
        WireMessage::PeerList { peers } => {
            put_u32(&mut body, peers.len() as u32);
            for peer in peers {
                put_u32(&mut body, peer.client);
                put_str(&mut body, &peer.addr);
            }
            KIND_PEER_LIST
        }
        WireMessage::Leave { client } => {
            put_u32(&mut body, *client);
            KIND_LEAVE
        }
        WireMessage::Done { client } => {
            put_u32(&mut body, *client);
            KIND_DONE
        }
    };
    let mut frame = Vec::with_capacity(body.len() + 6);
    frame.extend_from_slice(&((body.len() as u32 + 2).to_le_bytes()));
    frame.push(WIRE_VERSION);
    frame.push(kind);
    frame.extend_from_slice(&body);
    frame
}

/// Decodes one complete frame (as produced by [`encode`]).
///
/// # Errors
///
/// Any [`WireError`] variant except `Io`.
pub fn decode(frame: &[u8]) -> Result<WireMessage, WireError> {
    if frame.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    if frame.len() < 4 + len {
        return Err(WireError::Truncated);
    }
    if frame.len() > 4 + len {
        return Err(WireError::TrailingBytes);
    }
    decode_payload(&frame[4..])
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// Returns [`WireError::Io`] on write failure.
pub fn write_message(w: &mut impl Write, message: &WireMessage) -> Result<(), WireError> {
    w.write_all(&encode(message))?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from a stream (blocking until complete).
///
/// # Errors
///
/// Any [`WireError`] variant; a clean EOF before the length prefix
/// reads as [`WireError::Truncated`].
pub fn read_message(r: &mut impl Read) -> Result<WireMessage, WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    if len < 2 {
        return Err(WireError::Truncated);
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    decode_payload(&payload)
}

/// Decodes version + kind + body (everything after the length prefix).
fn decode_payload(payload: &[u8]) -> Result<WireMessage, WireError> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch {
            expected: WIRE_VERSION,
            found: version,
        });
    }
    let kind = c.u8()?;
    let message = match kind {
        KIND_HELLO => WireMessage::Hello { client: c.u32()? },
        KIND_TRANSACTION => WireMessage::Transaction(c.tx()?),
        KIND_SNAPSHOT_REQUEST => {
            let count = c.counted(8)?;
            let mut have = Vec::with_capacity(count);
            for _ in 0..count {
                have.push(c.u64()?);
            }
            WireMessage::SnapshotRequest { have }
        }
        KIND_SNAPSHOT => {
            let count = c.counted(1)?;
            let mut transactions = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                transactions.push(c.tx()?);
            }
            WireMessage::Snapshot { transactions }
        }
        KIND_JOIN => WireMessage::Join {
            client: c.u32()?,
            addr: c.string()?,
        },
        KIND_PEER_LIST => {
            let count = c.counted(5)?;
            let mut peers = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                peers.push(PeerInfo {
                    client: c.u32()?,
                    addr: c.string()?,
                });
            }
            WireMessage::PeerList { peers }
        }
        KIND_LEAVE => WireMessage::Leave { client: c.u32()? },
        KIND_DONE => WireMessage::Done { client: c.u32()? },
        other => return Err(WireError::UnknownKind(other)),
    };
    if c.pos != c.buf.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(message)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_tx(buf: &mut Vec<u8>, tx: &TxMessage) {
    put_u64(buf, tx.id);
    put_u32(buf, tx.parents.len() as u32);
    for p in &tx.parents {
        put_u64(buf, *p);
    }
    match tx.issuer {
        Some(issuer) => {
            buf.push(1);
            put_u32(buf, issuer);
        }
        None => buf.push(0),
    }
    put_u32(buf, tx.round);
    put_u32(buf, tx.params.len() as u32);
    for w in tx.params.iter() {
        put_u32(buf, w.to_bits());
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a count whose elements occupy at least `min_size` bytes
    /// each, rejecting counts the remaining body cannot possibly hold
    /// (prevents huge pre-allocations from a corrupt prefix).
    fn counted(&mut self, min_size: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_size) > self.buf.len() - self.pos {
            return Err(WireError::Truncated);
        }
        Ok(count)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.counted(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    fn tx(&mut self) -> Result<TxMessage, WireError> {
        let id = self.u64()?;
        let parent_count = self.counted(8)?;
        let mut parents = Vec::with_capacity(parent_count);
        for _ in 0..parent_count {
            parents.push(self.u64()?);
        }
        let issuer = match self.u8()? {
            0 => None,
            1 => Some(self.u32()?),
            _ => return Err(WireError::Malformed("bad issuer tag")),
        };
        let round = self.u32()?;
        let param_count = self.counted(4)?;
        let mut params = Vec::with_capacity(param_count);
        for _ in 0..param_count {
            params.push(f32::from_bits(self.u32()?));
        }
        Ok(TxMessage {
            id,
            parents,
            params: Arc::new(params),
            issuer,
            round,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx() -> TxMessage {
        TxMessage {
            id: 0x0100_0000_0007,
            parents: vec![0, 0x0100_0000_0003],
            params: Arc::new(vec![1.5, -0.25, f32::MIN_POSITIVE]),
            issuer: Some(3),
            round: 42,
        }
    }

    fn all_kinds() -> Vec<WireMessage> {
        vec![
            WireMessage::Hello { client: 2 },
            WireMessage::Transaction(sample_tx()),
            WireMessage::SnapshotRequest {
                have: vec![0, 7, 9],
            },
            WireMessage::SnapshotRequest { have: vec![] },
            WireMessage::Snapshot {
                transactions: vec![sample_tx()],
            },
            WireMessage::Snapshot {
                transactions: vec![],
            },
            WireMessage::Join {
                client: 1,
                addr: "127.0.0.1:7878".into(),
            },
            WireMessage::PeerList {
                peers: vec![PeerInfo {
                    client: 0,
                    addr: "127.0.0.1:9000".into(),
                }],
            },
            WireMessage::PeerList { peers: vec![] },
            WireMessage::Leave { client: 1 },
            WireMessage::Done { client: 0 },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for msg in all_kinds() {
            let frame = encode(&msg);
            assert_eq!(decode(&frame).unwrap(), msg, "{msg:?}");
            let mut stream = frame.as_slice();
            assert_eq!(read_message(&mut stream).unwrap(), msg);
            assert!(stream.is_empty());
        }
    }

    #[test]
    fn stream_round_trips_back_to_back_frames() {
        let mut buf = Vec::new();
        for msg in all_kinds() {
            write_message(&mut buf, &msg).unwrap();
        }
        let mut stream = buf.as_slice();
        for msg in all_kinds() {
            assert_eq!(read_message(&mut stream).unwrap(), msg);
        }
        assert!(matches!(
            read_message(&mut stream),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let frame = encode(&WireMessage::Transaction(sample_tx()));
        for cut in 0..frame.len() {
            assert!(
                decode(&frame[..cut]).is_err(),
                "decode accepted a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut frame = encode(&WireMessage::Hello { client: 1 });
        frame[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode(&frame),
            Err(WireError::VersionMismatch {
                expected: WIRE_VERSION,
                found: WIRE_VERSION + 1,
            })
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut frame = encode(&WireMessage::Hello { client: 1 });
        frame[5] = 200;
        assert_eq!(decode(&frame), Err(WireError::UnknownKind(200)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode(&WireMessage::Done { client: 0 });
        let len = (frame.len() as u32 - 4 + 1).to_le_bytes();
        frame[..4].copy_from_slice(&len);
        frame.push(0xAB);
        assert_eq!(decode(&frame), Err(WireError::TrailingBytes));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut frame = encode(&WireMessage::Done { client: 0 });
        frame[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode(&frame), Err(WireError::Oversized(_))));
        let mut stream = frame.as_slice();
        assert!(matches!(
            read_message(&mut stream),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn corrupt_count_cannot_force_huge_allocation() {
        // A SnapshotRequest claiming 2^31 ids in a 10-byte body must
        // fail fast instead of allocating gigabytes.
        let mut frame = encode(&WireMessage::SnapshotRequest { have: vec![1] });
        // Overwrite the count field (starts right after version+kind).
        frame[6..10].copy_from_slice(&(1u32 << 31).to_le_bytes());
        assert!(decode(&frame).is_err());
    }

    #[test]
    fn nan_weights_round_trip_bitwise() {
        let tx = TxMessage {
            id: 1,
            parents: vec![0],
            params: Arc::new(vec![f32::NAN, f32::INFINITY, -0.0]),
            issuer: None,
            round: 0,
        };
        let frame = encode(&WireMessage::Transaction(tx.clone()));
        let WireMessage::Transaction(back) = decode(&frame).unwrap() else {
            panic!("wrong kind");
        };
        let bits: Vec<u32> = back.params.iter().map(|w| w.to_bits()).collect();
        let expected: Vec<u32> = tx.params.iter().map(|w| w.to_bits()).collect();
        assert_eq!(bits, expected);
    }

    #[test]
    fn errors_display_usefully() {
        for (err, needle) in [
            (WireError::Truncated, "truncated"),
            (WireError::TrailingBytes, "trailing"),
            (
                WireError::VersionMismatch {
                    expected: 1,
                    found: 2,
                },
                "version",
            ),
            (WireError::UnknownKind(9), "kind 9"),
            (WireError::Oversized(1 << 30), "exceeds"),
            (WireError::Malformed("bad"), "bad"),
            (WireError::Io("broken pipe".into()), "broken pipe"),
        ] {
            assert!(err.to_string().contains(needle), "{err:?}");
        }
    }
}
