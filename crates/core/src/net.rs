//! Real networking for the transport seam: a std-only [`TcpTransport`]
//! for gossip between peers, and the [`Tracker`] bootstrap service.
//!
//! Frames on every socket use the versioned wire format of
//! [`crate::wire`]. Each gossip connection starts with a
//! [`WireMessage::Hello`] identifying the caller; a late joiner then
//! sends a [`WireMessage::SnapshotRequest`] listing what it already
//! holds and receives the missing transactions in one
//! [`WireMessage::Snapshot`] batch. The tracker speaks a one-shot
//! request/response protocol: `Join` → `PeerList`, or `Leave`.
//!
//! Threading model: one detached accept thread per transport, one
//! detached reader thread per connection. Readers push decoded frames
//! into an in-process channel; all decoding results are consumed — and
//! all writes happen — on the owner's thread, so the event loop stays
//! single-threaded like the simulator's.

use std::collections::HashSet;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use rand::rngs::StdRng;

use crate::wire::{read_message, write_message};
use crate::{
    CoreError, Envelope, GossipMessage, PeerInfo, Transport, TransportStats, WireError, WireMessage,
};

/// One established gossip connection (the write half; the read half
/// lives in the reader thread).
struct PeerConn {
    stream: TcpStream,
    client: Option<u32>,
    alive: bool,
}

/// What reader threads push to the owning thread.
enum NetEvent {
    Message { conn: usize, msg: WireMessage },
    Closed { conn: usize },
}

/// Connection-level happenings a peer's event loop must react to
/// (everything that is not a gossiped transaction).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// A peer introduced itself on connection `conn`.
    Hello {
        /// Index of the connection.
        conn: usize,
        /// The remote peer's client id.
        client: u32,
    },
    /// The remote end of `conn` asks for everything not in `have`.
    SnapshotRequest {
        /// Index of the connection.
        conn: usize,
        /// Network ids the requester already holds.
        have: Vec<u64>,
    },
    /// A peer announced it has published its final transaction.
    Done {
        /// The finished peer's client id.
        client: u32,
    },
    /// A connection dropped (its peer exited or the link died).
    Disconnected {
        /// Index of the connection.
        conn: usize,
        /// The remote client id, if it ever said hello.
        client: Option<u32>,
    },
}

/// A gossip endpoint: listens for inbound peers, dials outbound ones,
/// and moves [`GossipMessage`]s as length-prefixed wire frames.
///
/// Unlike [`LoopbackTransport`](crate::LoopbackTransport) this
/// transport connects exactly one local client to the network, so the
/// peer indices of the [`Transport`] methods are ignored: `broadcast`
/// sends to every live connection and `receive` returns whatever has
/// arrived for the local client.
pub struct TcpTransport {
    client: u32,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<PeerConn>>>,
    events_rx: Receiver<NetEvent>,
    events_tx: Sender<NetEvent>,
    gossip: Vec<GossipMessage>,
    control: Vec<ControlEvent>,
    stats: TransportStats,
}

impl TcpTransport {
    /// Binds the gossip listener (use port 0 for an ephemeral port)
    /// and starts accepting inbound connections.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind.
    pub fn bind(listen: &str, client: u32) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<PeerConn>>> = Arc::new(Mutex::new(Vec::new()));
        let (events_tx, events_rx) = mpsc::channel();
        {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let events_tx = events_tx.clone();
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let _ = register(&conns, &events_tx, stream);
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        Ok(Self {
            client,
            local_addr,
            shutdown,
            conns,
            events_rx,
            events_tx,
            gossip: Vec::new(),
            control: Vec::new(),
            stats: TransportStats::default(),
        })
    }

    /// The local client id.
    pub fn client(&self) -> u32 {
        self.client
    }

    /// The address the gossip listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Dials a peer, introduces the local client with a `Hello`, and
    /// returns the connection index.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from connect.
    pub fn connect(&mut self, addr: &str) -> io::Result<usize> {
        let stream = TcpStream::connect(addr)?;
        let conn = register(&self.conns, &self.events_tx, stream)
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.send_to_conn(
            conn,
            &WireMessage::Hello {
                client: self.client,
            },
        )
        .map_err(|e| io::Error::other(e.to_string()))?;
        Ok(conn)
    }

    /// Writes one frame on one connection.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the connection is gone.
    pub fn send_to_conn(&mut self, conn: usize, message: &WireMessage) -> Result<(), WireError> {
        let result = {
            let mut conns = lock(&self.conns);
            let peer = conns
                .get_mut(conn)
                .filter(|p| p.alive)
                .ok_or_else(|| WireError::Io(format!("connection {conn} is closed")))?;
            let result = write_message(&mut peer.stream, message);
            if result.is_err() {
                peer.alive = false;
            }
            result
        };
        if result.is_err() {
            self.stats.dropped += 1;
        }
        result
    }

    /// Writes one frame on every live connection; returns how many
    /// received it. Write failures mark the connection dead instead of
    /// erroring — a departed peer must not abort the survivors — and
    /// count as dropped deliveries in [`Transport::stats`].
    pub fn broadcast_wire(&mut self, message: &WireMessage) -> usize {
        let frame = crate::wire::encode(message);
        let mut sent = 0;
        let mut failed = 0;
        {
            let mut conns = lock(&self.conns);
            for peer in conns.iter_mut().filter(|p| p.alive) {
                use std::io::Write;
                if peer
                    .stream
                    .write_all(&frame)
                    .and_then(|()| peer.stream.flush())
                    .is_ok()
                {
                    sent += 1;
                } else {
                    peer.alive = false;
                    failed += 1;
                }
            }
        }
        self.stats.dropped += failed;
        sent
    }

    /// The client ids of every live connection that has said hello.
    pub fn connected_clients(&self) -> Vec<u32> {
        lock(&self.conns)
            .iter()
            .filter(|p| p.alive)
            .filter_map(|p| p.client)
            .collect()
    }

    /// Indices of every live connection, for callers that address
    /// peers individually (partial-fanout gossip).
    pub fn live_connections(&self) -> Vec<usize> {
        lock(&self.conns)
            .iter()
            .enumerate()
            .filter(|(_, p)| p.alive)
            .map(|(i, _)| i)
            .collect()
    }

    /// Records one successful connection re-establishment in
    /// [`Transport::stats`].
    pub fn note_reconnect(&mut self) {
        self.stats.reconnects += 1;
    }

    /// Drains connection-level events (polls the reader threads
    /// first). Gossip payloads stay queued for [`Transport::receive`].
    pub fn take_control(&mut self) -> Vec<ControlEvent> {
        self.poll();
        std::mem::take(&mut self.control)
    }

    /// Moves everything the reader threads decoded since the last poll
    /// into the gossip/control queues.
    fn poll(&mut self) {
        while let Ok(event) = self.events_rx.try_recv() {
            match event {
                NetEvent::Message { conn, msg } => match msg {
                    WireMessage::Transaction(tx) => {
                        self.gossip.push(GossipMessage::Transaction(tx));
                    }
                    WireMessage::Snapshot { transactions } => {
                        self.gossip.push(GossipMessage::Snapshot(transactions));
                    }
                    WireMessage::Hello { client } => {
                        if let Some(peer) = lock(&self.conns).get_mut(conn) {
                            peer.client = Some(client);
                        }
                        self.control.push(ControlEvent::Hello { conn, client });
                    }
                    WireMessage::SnapshotRequest { have } => {
                        self.control
                            .push(ControlEvent::SnapshotRequest { conn, have });
                    }
                    WireMessage::Done { client } => {
                        self.control.push(ControlEvent::Done { client });
                    }
                    // Tracker-protocol frames have no business on a
                    // gossip connection; drop them.
                    WireMessage::Join { .. }
                    | WireMessage::PeerList { .. }
                    | WireMessage::Leave { .. } => {}
                },
                NetEvent::Closed { conn } => {
                    let client = {
                        let mut conns = lock(&self.conns);
                        conns.get_mut(conn).and_then(|p| {
                            p.alive = false;
                            p.client
                        })
                    };
                    self.control
                        .push(ControlEvent::Disconnected { conn, client });
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn num_peers(&self) -> usize {
        lock(&self.conns).iter().filter(|p| p.alive).count() + 1
    }

    fn broadcast(
        &mut self,
        _from: usize,
        _now: f64,
        message: GossipMessage,
        _rng: &mut StdRng,
    ) -> Result<(), CoreError> {
        let wire = match message {
            GossipMessage::Transaction(tx) => WireMessage::Transaction(tx),
            GossipMessage::Snapshot(transactions) => WireMessage::Snapshot { transactions },
        };
        self.broadcast_wire(&wire);
        Ok(())
    }

    fn receive(&mut self, _peer: usize, now: f64) -> Vec<Envelope> {
        self.poll();
        let out: Vec<Envelope> = self
            .gossip
            .drain(..)
            .map(|message| Envelope { at: now, message })
            .collect();
        self.stats.delivered += out.len();
        out
    }

    fn in_flight(&self, _peer: usize) -> &[Envelope] {
        // Messages on the network are invisible until they arrive.
        &[]
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept thread with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        for peer in lock(&self.conns).iter() {
            let _ = peer.stream.shutdown(Shutdown::Both);
        }
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("client", &self.client)
            .field("local_addr", &self.local_addr)
            .field("connections", &lock(&self.conns).len())
            .finish()
    }
}

/// Registers a stream: stores the write half, spawns the reader thread
/// on the read half, returns the connection index.
fn register(
    conns: &Arc<Mutex<Vec<PeerConn>>>,
    events_tx: &Sender<NetEvent>,
    stream: TcpStream,
) -> io::Result<usize> {
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let conn = {
        let mut guard = lock(conns);
        guard.push(PeerConn {
            stream,
            client: None,
            alive: true,
        });
        guard.len() - 1
    };
    let events_tx = events_tx.clone();
    thread::spawn(move || loop {
        match read_message(&mut reader) {
            Ok(msg) => {
                if events_tx.send(NetEvent::Message { conn, msg }).is_err() {
                    break;
                }
            }
            Err(_) => {
                let _ = events_tx.send(NetEvent::Closed { conn });
                break;
            }
        }
    });
    Ok(conn)
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What a tracker run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerSummary {
    /// Join requests served.
    pub joined: usize,
    /// Leave notices received.
    pub left: usize,
}

/// The bootstrap/discovery service of the networked mode.
///
/// Peers `Join` with their gossip address and get back the
/// [`PeerInfo`] list of everyone already registered; on exit they send
/// `Leave`. The tracker never touches model data — discovery only.
///
/// # Example
///
/// ```no_run
/// use dagfl_core::Tracker;
///
/// let mut tracker = Tracker::bind("127.0.0.1:7878").unwrap();
/// // Serve until 3 peers have joined and left again.
/// let summary = tracker.run(Some(3)).unwrap();
/// assert_eq!(summary.left, 3);
/// ```
#[derive(Debug)]
pub struct Tracker {
    listener: TcpListener,
    peers: Vec<PeerInfo>,
    joined: usize,
    left: usize,
}

impl Tracker {
    /// Binds the tracker listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            peers: Vec::new(),
            joined: 0,
            left: 0,
        })
    }

    /// The address the tracker is bound to.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The currently registered peers.
    pub fn peers(&self) -> &[PeerInfo] {
        &self.peers
    }

    /// Serves requests until `expect` peers have joined *and* left
    /// (forever when `None`).
    ///
    /// # Errors
    ///
    /// Propagates accept errors; malformed requests are dropped
    /// silently (a misbehaving peer must not kill discovery).
    pub fn run(&mut self, expect: Option<usize>) -> io::Result<TrackerSummary> {
        loop {
            let (stream, _) = self.listener.accept()?;
            self.serve_one(stream);
            if let Some(n) = expect {
                if self.joined >= n && self.left >= n {
                    return Ok(TrackerSummary {
                        joined: self.joined,
                        left: self.left,
                    });
                }
            }
        }
    }

    /// Handles one request/response exchange.
    fn serve_one(&mut self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
        match read_message(&mut stream) {
            Ok(WireMessage::Join { client, addr }) => {
                // Answer with everyone *else*, then register the joiner
                // (replacing a stale registration of the same client).
                let peers: Vec<PeerInfo> = self
                    .peers
                    .iter()
                    .filter(|p| p.client != client)
                    .cloned()
                    .collect();
                if write_message(&mut stream, &WireMessage::PeerList { peers }).is_ok() {
                    self.peers.retain(|p| p.client != client);
                    self.peers.push(PeerInfo { client, addr });
                    self.joined += 1;
                }
            }
            Ok(WireMessage::Leave { client }) => {
                self.peers.retain(|p| p.client != client);
                self.left += 1;
            }
            _ => {}
        }
    }
}

/// Registers with a tracker and returns the already-known peers.
///
/// # Errors
///
/// Returns [`WireError`] on socket failure or an unexpected reply.
pub fn tracker_join(tracker: &str, client: u32, listen: &str) -> Result<Vec<PeerInfo>, WireError> {
    let mut stream = TcpStream::connect(tracker).map_err(WireError::from)?;
    write_message(
        &mut stream,
        &WireMessage::Join {
            client,
            addr: listen.to_string(),
        },
    )?;
    match read_message(&mut stream)? {
        WireMessage::PeerList { peers } => Ok(peers),
        _ => Err(WireError::Malformed("tracker did not answer with PeerList")),
    }
}

/// Notifies a tracker that a peer is gone (best effort).
///
/// # Errors
///
/// Returns [`WireError`] on socket failure.
pub fn tracker_leave(tracker: &str, client: u32) -> Result<(), WireError> {
    let mut stream = TcpStream::connect(tracker).map_err(WireError::from)?;
    write_message(&mut stream, &WireMessage::Leave { client })
}

/// The set of network ids a replica holds, in `SnapshotRequest` form.
pub fn have_set(ids: &[u64]) -> HashSet<u64> {
    ids.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxMessage;
    use rand::SeedableRng;
    use std::sync::Arc as StdArc;

    fn wait_for<F: FnMut() -> bool>(mut f: F, what: &str) {
        for _ in 0..400 {
            if f() {
                return;
            }
            thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn hello_and_gossip_flow_between_two_transports() {
        let mut a = TcpTransport::bind("127.0.0.1:0", 0).unwrap();
        let mut b = TcpTransport::bind("127.0.0.1:0", 1).unwrap();
        b.connect(&a.local_addr().to_string()).unwrap();
        // A learns who called.
        wait_for(
            || {
                a.take_control()
                    .iter()
                    .any(|e| matches!(e, ControlEvent::Hello { client: 1, .. }))
                    || a.connected_clients().contains(&1)
            },
            "hello",
        );
        assert_eq!(a.connected_clients(), vec![1]);
        // B gossips a transaction; A receives it through the trait.
        let msg = GossipMessage::Transaction(TxMessage {
            id: 42,
            parents: vec![0],
            params: StdArc::new(vec![1.0, 2.0]),
            issuer: Some(1),
            round: 3,
        });
        let mut rng = StdRng::seed_from_u64(0);
        b.broadcast(0, 0.0, msg.clone(), &mut rng).unwrap();
        let mut got = Vec::new();
        wait_for(
            || {
                got.extend(a.receive(0, 7.5));
                !got.is_empty()
            },
            "gossip",
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, 7.5);
        assert_eq!(got[0].message, msg);
        assert!(a.in_flight(0).is_empty());
        assert_eq!(a.num_peers(), 2);
    }

    #[test]
    fn snapshot_request_reaches_the_other_side() {
        let mut a = TcpTransport::bind("127.0.0.1:0", 0).unwrap();
        let mut b = TcpTransport::bind("127.0.0.1:0", 1).unwrap();
        let conn = b.connect(&a.local_addr().to_string()).unwrap();
        b.send_to_conn(conn, &WireMessage::SnapshotRequest { have: vec![0, 9] })
            .unwrap();
        let mut seen = Vec::new();
        wait_for(
            || {
                seen.extend(a.take_control());
                seen.iter()
                    .any(|e| matches!(e, ControlEvent::SnapshotRequest { .. }))
            },
            "snapshot request",
        );
        let req = seen
            .iter()
            .find_map(|e| match e {
                ControlEvent::SnapshotRequest { have, .. } => Some(have.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(req, vec![0, 9]);
    }

    #[test]
    fn dropping_a_peer_surfaces_disconnect() {
        let mut a = TcpTransport::bind("127.0.0.1:0", 0).unwrap();
        {
            let mut b = TcpTransport::bind("127.0.0.1:0", 1).unwrap();
            b.connect(&a.local_addr().to_string()).unwrap();
            // connected_clients only reflects hellos after a poll, so
            // drain control events while waiting.
            wait_for(
                || {
                    let _ = a.take_control();
                    !a.connected_clients().is_empty()
                },
                "hello",
            );
        } // b drops: sockets shut down
        let mut seen = Vec::new();
        wait_for(
            || {
                seen.extend(a.take_control());
                seen.iter()
                    .any(|e| matches!(e, ControlEvent::Disconnected { .. }))
            },
            "disconnect",
        );
        assert!(a.connected_clients().is_empty());
    }

    #[test]
    fn tracker_registers_lists_and_forgets_peers() {
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let addr = tracker.local_addr().unwrap().to_string();
        let handle = {
            let mut tracker = tracker;
            thread::spawn(move || tracker.run(Some(2)).unwrap())
        };
        let first = tracker_join(&addr, 0, "127.0.0.1:9100").unwrap();
        assert!(first.is_empty(), "first peer sees an empty network");
        let second = tracker_join(&addr, 1, "127.0.0.1:9101").unwrap();
        assert_eq!(
            second,
            vec![PeerInfo {
                client: 0,
                addr: "127.0.0.1:9100".into()
            }]
        );
        tracker_leave(&addr, 0).unwrap();
        tracker_leave(&addr, 1).unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary, TrackerSummary { joined: 2, left: 2 });
    }

    #[test]
    fn rejoin_replaces_the_stale_registration() {
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let addr = tracker.local_addr().unwrap().to_string();
        let handle = {
            let mut tracker = tracker;
            thread::spawn(move || tracker.run(Some(3)).unwrap())
        };
        tracker_join(&addr, 0, "127.0.0.1:9100").unwrap();
        tracker_join(&addr, 1, "127.0.0.1:9101").unwrap();
        // Client 0 crashed and rejoins from a new port: it must not be
        // offered its own stale address, and 1 must not be duplicated.
        let rejoin = tracker_join(&addr, 0, "127.0.0.1:9102").unwrap();
        assert_eq!(rejoin.len(), 1);
        assert_eq!(rejoin[0].client, 1);
        tracker_leave(&addr, 0).unwrap();
        tracker_leave(&addr, 1).unwrap();
        // One extra leave unblocks run(Some(3)) deterministically.
        tracker_leave(&addr, 7).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn have_set_collects_ids() {
        let set = have_set(&[0, 3, 3, 9]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(&9));
    }

    #[test]
    fn tracker_expect_one_exits_after_a_single_peer() {
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let addr = tracker.local_addr().unwrap().to_string();
        let handle = {
            let mut tracker = tracker;
            thread::spawn(move || tracker.run(Some(1)).unwrap())
        };
        assert!(tracker_join(&addr, 0, "127.0.0.1:9100").unwrap().is_empty());
        tracker_leave(&addr, 0).unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary, TrackerSummary { joined: 1, left: 1 });
    }

    #[test]
    fn duplicate_join_registers_once_but_counts_toward_expect() {
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let addr = tracker.local_addr().unwrap().to_string();
        let handle = {
            let mut tracker = tracker;
            thread::spawn(move || tracker.run(Some(2)).unwrap())
        };
        tracker_join(&addr, 0, "127.0.0.1:9100").unwrap();
        // The same client joins again (e.g. a retry after a flaky
        // link): the registration is replaced, never duplicated, and
        // the joiner is not offered its own old address.
        let second = tracker_join(&addr, 0, "127.0.0.1:9200").unwrap();
        assert!(second.is_empty(), "a rejoiner must not see itself");
        tracker_leave(&addr, 0).unwrap();
        tracker_leave(&addr, 0).unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.joined, 2, "every join counts toward --expect");
        assert_eq!(summary.left, 2);
    }

    #[test]
    fn tcp_stats_count_deliveries_and_dead_connection_drops() {
        let mut a = TcpTransport::bind("127.0.0.1:0", 0).unwrap();
        let mut b = TcpTransport::bind("127.0.0.1:0", 1).unwrap();
        b.connect(&a.local_addr().to_string()).unwrap();
        wait_for(
            || {
                let _ = a.take_control();
                !a.connected_clients().is_empty()
            },
            "hello",
        );
        let mut rng = StdRng::seed_from_u64(0);
        let msg = GossipMessage::Transaction(TxMessage {
            id: 7,
            parents: vec![0],
            params: StdArc::new(vec![0.0]),
            issuer: Some(1),
            round: 0,
        });
        b.broadcast(0, 0.0, msg, &mut rng).unwrap();
        wait_for(|| !a.receive(0, 0.0).is_empty(), "gossip");
        assert_eq!(a.stats().delivered, 1);
        b.note_reconnect();
        assert_eq!(b.stats().reconnects, 1);
        // Kill the remote end; the next two writes flush into the dead
        // socket until the OS notices, after which sends count as
        // dropped.
        drop(a);
        wait_for(
            || {
                let _ = b.take_control();
                b.broadcast_wire(&WireMessage::Done { client: 1 });
                b.live_connections().is_empty()
            },
            "dead connection",
        );
        assert!(b.stats().dropped > 0 || b.live_connections().is_empty());
    }
}
